"""Shared driver for the per-benchmark Table I benches (experiments E2-E6).

Each bench module parametrizes over the paper's distance sweep ``d = 2..5``,
times the kriging replay of the recorded ground-truth trajectory (the
operation the paper's method adds to a DSE flow) and records the reproduced
Table I row both in ``benchmark.extra_info`` and as a text artefact.
"""

from __future__ import annotations

from repro.experiments.replay import replay_trace
from repro.experiments.reporting import format_row
from repro.experiments.table1 import Table1Row


def run_table1_bench(benchmark, setup, distance, artifact_writer):
    """Benchmark one (benchmark, distance) Table I cell."""
    trace = setup.record_trajectory()

    def replay():
        return replay_trace(
            trace,
            benchmark=setup.name,
            metric_kind=setup.metric_kind,
            distance=distance,
            nn_min=1,
            variogram="auto",
        )

    stats = benchmark.pedantic(replay, rounds=3, iterations=1, warmup_rounds=1)
    row = Table1Row.from_stats(
        stats, metric_label=setup.metric_label, nv=setup.problem.num_variables
    )
    benchmark.extra_info["p_percent"] = round(row.p_percent, 2)
    benchmark.extra_info["mean_neighbors"] = round(row.mean_neighbors, 2)
    benchmark.extra_info["max_error"] = round(row.max_error, 4)
    benchmark.extra_info["mean_error"] = round(row.mean_error, 4)
    benchmark.extra_info["n_configs"] = row.n_configs
    artifact_writer(f"table1_{setup.name}_d{distance}.txt", format_row(row) + "\n")
    return row
