"""Shared driver for the per-benchmark Table I benches (experiments E2-E6).

The sweep definitions (paper defaults, envelope checks) live in the harness
module :mod:`repro.bench.workloads.table1`; this driver adapts them to the
pytest-benchmark fixtures: it times the kriging replay of the recorded
ground-truth trajectory (the operation the paper's method adds to a DSE
flow) and records the reproduced Table I row both in
``benchmark.extra_info`` and as a text artefact.
"""

from __future__ import annotations

from repro.bench.workloads.table1 import replay_call
from repro.experiments.reporting import format_row
from repro.experiments.table1 import Table1Row


def run_table1_bench(benchmark, setup, distance, artifact_writer):
    """Benchmark one (benchmark, distance) Table I cell."""
    trace = setup.record_trajectory()

    def replay():
        return replay_call(setup, trace, distance=distance, variogram="auto")

    stats = benchmark.pedantic(replay, rounds=3, iterations=1, warmup_rounds=1)
    row = Table1Row.from_stats(
        stats, metric_label=setup.metric_label, nv=setup.problem.num_variables
    )
    benchmark.extra_info["p_percent"] = round(row.p_percent, 2)
    benchmark.extra_info["mean_neighbors"] = round(row.mean_neighbors, 2)
    benchmark.extra_info["max_error"] = round(row.max_error, 4)
    benchmark.extra_info["mean_error"] = round(row.mean_error, 4)
    benchmark.extra_info["n_configs"] = row.n_configs
    artifact_writer(f"table1_{setup.name}_d{distance}.txt", format_row(row) + "\n")
    return row
