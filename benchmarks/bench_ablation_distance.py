"""E11 — ablation: distance-metric choice (ours).

The paper's Algorithms use the L1 norm to find support configurations.  This
bench replays the FFT trajectory under L1 / L2 / Linf neighbourhoods at the
same radius: Linf balls contain more lattice points than L1 balls, so the
interpolation rate rises while per-interpolation support quality drops.
"""

import pytest

from repro.experiments.replay import replay_trace

METRICS = ["l1", "l2", "linf"]


@pytest.mark.parametrize("metric", METRICS)
def test_ablation_distance_metric(benchmark, fft_full, metric, artifact_writer):
    trace = fft_full.record_trajectory()

    stats = benchmark.pedantic(
        lambda: replay_trace(
            trace,
            benchmark="fft",
            metric_kind=fft_full.metric_kind,
            distance=3,
            nn_min=1,
            metric=metric,
            variogram="auto",
        ),
        rounds=3,
        iterations=1,
    )
    artifact_writer(
        f"ablation_distance_{metric}.txt",
        f"metric={metric}: p={stats.p_percent:.2f}% j={stats.mean_neighbors:.2f} "
        f"mu_eps={stats.mean_error:.3f}\n",
    )
    benchmark.extra_info["p_percent"] = round(stats.p_percent, 2)

    if metric != "l1":
        base = replay_trace(
            trace, metric_kind=fft_full.metric_kind, distance=3, nn_min=1,
            metric="l1", variogram="auto",
        )
        # A ball of radius d in L2/Linf contains the L1 ball.
        assert stats.p_percent >= base.p_percent - 1e-9
