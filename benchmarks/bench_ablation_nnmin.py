"""E9 — the paper's ``Nn_min`` ablation.

Section IV, last paragraph: "the proposed method has been tested with
Nn_min = 2.  Nevertheless, it only reduces the number of configurations that
can be interpolated while slightly increasing the interpolation error."
(The error statement holds on average across distances; individual cells can
move either way since the support sets change discretely.)

We sweep ``Nn_min in {1, 2, 3}`` on the FFT trajectory at ``d = 3``.
"""

import pytest

from repro.experiments.replay import replay_trace


@pytest.mark.parametrize("nn_min", [1, 2, 3])
def test_ablation_nnmin(benchmark, fft_full, nn_min, artifact_writer):
    trace = fft_full.record_trajectory()

    stats = benchmark.pedantic(
        lambda: replay_trace(
            trace,
            benchmark="fft",
            metric_kind=fft_full.metric_kind,
            distance=3,
            nn_min=nn_min,
            variogram="auto",
        ),
        rounds=3,
        iterations=1,
    )
    artifact_writer(
        f"ablation_nnmin_{nn_min}.txt",
        f"nn_min={nn_min}: p={stats.p_percent:.2f}% j={stats.mean_neighbors:.2f} "
        f"max={stats.max_error:.3f} mu={stats.mean_error:.3f}\n",
    )
    benchmark.extra_info["p_percent"] = round(stats.p_percent, 2)
    benchmark.extra_info["mean_error_bits"] = round(stats.mean_error, 3)

    if nn_min > 1:
        base = replay_trace(
            trace, metric_kind=fft_full.metric_kind, distance=3, nn_min=1,
            variogram="auto",
        )
        # The paper's observation: stricter Nn_min only reduces interpolations.
        assert stats.p_percent <= base.p_percent + 1e-9
