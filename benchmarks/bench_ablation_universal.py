"""E12 — ablation (ours): ordinary vs universal kriging.

Ordinary kriging (the paper's Eqs. 7-10) assumes a locally constant mean and
therefore falls back to nearest-neighbour behaviour on the one-sided support
sets that greedy trajectories produce.  Universal kriging with a linear
drift reproduces affine trends exactly.  This bench replays the FIR and IIR
trajectories — the two benchmarks whose trajectories are dominated by
directional phase-1 walks — under both interpolators.
"""

import pytest

from repro.experiments.replay import replay_trace


@pytest.mark.parametrize("name", ["fir", "iir"])
@pytest.mark.parametrize("interpolator", ["ordinary", "universal"])
def test_ablation_universal(benchmark, name, interpolator, request, artifact_writer):
    setup = request.getfixturevalue(f"{name}_full")
    trace = setup.record_trajectory()

    stats = benchmark.pedantic(
        lambda: replay_trace(
            trace,
            benchmark=name,
            metric_kind=setup.metric_kind,
            distance=4,
            nn_min=1,
            variogram="auto",
            interpolator=interpolator,
        ),
        rounds=3,
        iterations=1,
    )
    artifact_writer(
        f"ablation_universal_{name}_{interpolator}.txt",
        f"{name} interpolator={interpolator}: p={stats.p_percent:.2f}% "
        f"mu_eps={stats.mean_error:.3f} max_eps={stats.max_error:.3f}\n",
    )
    benchmark.extra_info["mean_error_bits"] = round(stats.mean_error, 3)
    assert stats.mean_error < 4.0
