"""E10 — ablation: variogram-model choice (ours).

The paper identifies the semi-variogram "to a particular type" without naming
it.  This bench quantifies how the model family affects the replayed
interpolation error on the IIR trajectory (d = 3): the scale-free linear
prior degenerates to nearest-neighbour on one-sided support, while smooth
families (gaussian/power) extrapolate the local trend.
"""

import pytest

from repro.experiments.replay import replay_trace

KINDS = ["linear", "spherical", "exponential", "gaussian", "power", "auto"]


@pytest.mark.parametrize("kind", KINDS)
def test_ablation_variogram(benchmark, iir_full, kind, artifact_writer):
    trace = iir_full.record_trajectory()

    stats = benchmark.pedantic(
        lambda: replay_trace(
            trace,
            benchmark="iir",
            metric_kind=iir_full.metric_kind,
            distance=3,
            nn_min=1,
            variogram=kind,
        ),
        rounds=3,
        iterations=1,
    )
    artifact_writer(
        f"ablation_variogram_{kind}.txt",
        f"variogram={kind}: p={stats.p_percent:.2f}% mu_eps={stats.mean_error:.3f} "
        f"max_eps={stats.max_error:.3f}\n",
    )
    benchmark.extra_info["mean_error_bits"] = round(stats.mean_error, 3)

    # p is a pure neighbourhood property: identical across variogram models.
    base = replay_trace(
        trace, metric_kind=iir_full.metric_kind, distance=3, nn_min=1,
        variogram="linear",
    )
    assert stats.p_percent == pytest.approx(base.p_percent)
    assert stats.mean_error < 3.0
