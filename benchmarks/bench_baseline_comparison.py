"""E13 — baselines (Section II related work) vs the kriging policy.

Replays the FFT trajectory through three estimation schemes:

* the paper's kriging policy (Nv-dimensional neighbourhood),
* the Sedano et al. [18]-style per-axis 1-D interpolation (can only
  estimate configurations lying on an already-sampled axis line),
* the calibrated analytical noise model (instant, but structurally biased).

The headline: the axis baseline's coverage collapses on multi-variable
trajectories, reproducing the paper's argument for a hypercube-aware
interpolator.
"""

import numpy as np

from repro.baselines.analytical import AnalyticalNoiseModel
from repro.baselines.axis_interpolation import AxisInterpolationEstimator
from repro.experiments.replay import replay_trace
from repro.fixedpoint.noise import bit_difference_db, db_to_power


def _replay_axis_baseline(trace, num_variables):
    unique = trace.unique_first_visits()
    configs, values = unique.configurations, unique.values
    truth = {tuple(int(x) for x in c): float(v) for c, v in zip(configs, values)}

    # Generous mode: step-1 walks leave no interior points, so pure
    # bracketing interpolation would never fire; allow axis extrapolation.
    estimator = AxisInterpolationEstimator(
        lambda c: truth[tuple(int(x) for x in c)],
        num_variables,
        require_bracketing=False,
    )
    errors = []
    for config in configs:
        out = estimator.evaluate(config)
        if out.interpolated and not out.exact_hit:
            errors.append(bit_difference_db(out.value, truth[tuple(int(x) for x in config)]))
    return estimator.stats, np.asarray(errors)


def test_baseline_axis_vs_kriging(benchmark, fft_full, artifact_writer):
    trace = fft_full.record_trajectory()

    stats_axis, axis_errors = benchmark.pedantic(
        lambda: _replay_axis_baseline(trace, fft_full.problem.num_variables),
        rounds=3,
        iterations=1,
    )
    kriging = replay_trace(
        trace, metric_kind=fft_full.metric_kind, distance=3, variogram="auto"
    )

    axis_p = 100.0 * stats_axis.interpolated_fraction
    lines = [
        f"kriging (d=3):  p={kriging.p_percent:.2f}%  mu_eps={kriging.mean_error:.3f} bits",
        f"axis baseline:  p={axis_p:.2f}%  mu_eps="
        + (f"{np.mean(axis_errors):.3f} bits" if axis_errors.size else "n/a"),
    ]
    artifact_writer("baseline_axis_vs_kriging.txt", "\n".join(lines) + "\n")
    benchmark.extra_info["kriging_p"] = round(kriging.p_percent, 2)
    benchmark.extra_info["axis_p"] = round(axis_p, 2)

    # The paper's motivation: the hypercube-aware method estimates far more.
    assert kriging.p_percent > axis_p


def test_baseline_analytical_model(benchmark, fft_full, artifact_writer):
    """Calibrated analytical model accuracy on the recorded FFT trajectory."""
    trace = fft_full.record_trajectory().unique_first_visits()
    configs, values_db = trace.configurations, trace.values

    # FFT nodes: 6 data stages (int_bits 1) + 4 twiddle groups (int_bits 1).
    base = AnalyticalNoiseModel([1] * 10)
    calib_idx = np.arange(0, len(configs), 4)  # every 4th point calibrates

    def calibrate_and_score():
        model = base.calibrate(
            configs[calib_idx],
            np.array([db_to_power(v) for v in values_db[calib_idx]]),
        )
        preds = np.array([model.noise_power_db(c) for c in configs])
        return np.array(
            [bit_difference_db(p, t) for p, t in zip(preds, values_db)]
        )

    errors = benchmark.pedantic(calibrate_and_score, rounds=3, iterations=1)
    artifact_writer(
        "baseline_analytical_fft.txt",
        f"analytical model on FFT trajectory: mu_eps={np.mean(errors):.3f} bits "
        f"max_eps={np.max(errors):.3f} bits (kriging replay mu_eps ~ 0.26)\n",
    )
    benchmark.extra_info["mean_error_bits"] = round(float(np.mean(errors)), 3)
    # The analytical model covers everything but with visible bias.
    assert np.mean(errors) < 3.0
