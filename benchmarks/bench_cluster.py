"""Cluster scaling and availability benchmark for the sharded router (shim).

The workload now lives in :mod:`repro.bench.workloads.cluster`; this script
keeps the historical CLI working (``python benchmarks/bench_cluster.py
[--quick] [--output PATH]``).  Prefer ``python -m repro bench cluster``
for new automation.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_cluster.json"

try:
    import repro.bench  # noqa: F401
except ImportError:  # running from a checkout without an editable install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.workloads.cluster import (  # noqa: E402,F401
    N_SESSIONS,
    SESSION_NAMES,
    _SpawnedCluster,
    run_benchmark,
    run_failover_drill,
    run_load,
    run_migration_drill,
)
from repro.bench.workloads import cluster as _workload  # noqa: E402


def write_report(report: dict, path: pathlib.Path = RESULT_PATH) -> None:
    from repro.bench.report import write_report as _write

    _write(report, path)


def main(argv: list[str] | None = None) -> int:
    return _workload.main(argv, default_output=RESULT_PATH)


if __name__ == "__main__":
    raise SystemExit(main())
