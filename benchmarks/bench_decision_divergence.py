"""E8 — decision divergence: kriging in the optimization loop.

Paper, Section IV: "the number of different decisions ... approximately
ranges 10 %.  Nevertheless, the optimization algorithm compensates these
different choices to end with a similar result."

We measure the divergence on the signal benchmarks under two policies:

* the default neighbourhood policy (high interpolation rate), and
* the variance-gated policy (interpolations with high kriging variance fall
  back to simulation), which trades interpolation rate for decision fidelity.
"""

import pytest

from repro.experiments.decisions import measure_decision_divergence


@pytest.mark.parametrize("name", ["fir", "iir", "fft"])
@pytest.mark.parametrize("gated", [False, True], ids=["default", "variance-gated"])
def test_decision_divergence(benchmark, name, gated, request, artifact_writer):
    setup = request.getfixturevalue(f"{name}_full")
    setup.record_trajectory()  # reference run cached outside the timing
    max_variance = 0.5 if gated else None

    divergence = benchmark.pedantic(
        lambda: measure_decision_divergence(
            setup, distance=3, nn_min=1, max_variance=max_variance
        ),
        rounds=1,
        iterations=1,
    )
    tag = "gated" if gated else "default"
    lines = [
        f"benchmark={name} policy={tag}",
        f"different decisions (position-wise): {divergence.different_decisions_percent:.1f}%",
        f"budget difference (order-insensitive): {divergence.budget_difference_percent:.1f}%",
        f"reference solution:  {divergence.reference_solution} (cost {divergence.reference_cost:.0f})",
        f"kriging solution:    {divergence.kriging_solution} (cost {divergence.kriging_cost:.0f})",
        f"cost gap: {divergence.cost_gap_percent:+.1f}%",
        f"simulations: {divergence.n_simulations_reference} -> {divergence.n_simulations_kriging}",
    ]
    artifact_writer(f"decision_divergence_{name}_{tag}.txt", "\n".join(lines) + "\n")
    benchmark.extra_info["different_decisions_percent"] = round(
        divergence.different_decisions_percent, 1
    )
    benchmark.extra_info["budget_difference_percent"] = round(
        divergence.budget_difference_percent, 1
    )
    benchmark.extra_info["cost_gap_percent"] = round(divergence.cost_gap_percent, 1)

    if gated:
        # Verified commits add a few anchor simulations, so allow a small
        # overhead; the pay-off is that the gated policy must end "with a
        # similar result" (the paper's claim).
        assert divergence.n_simulations_kriging <= 1.1 * divergence.n_simulations_reference
        assert abs(divergence.cost_gap_percent) <= 20.0
        assert divergence.budget_difference_percent <= 25.0
    else:
        assert divergence.n_simulations_kriging <= divergence.n_simulations_reference
