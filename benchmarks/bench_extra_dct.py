"""Extra benchmark (beyond the paper): Table-I-style rows for the 8x8 DCT.

Demonstrates that the registry/replay pipeline extends to new kernels: the
DCT's `Nv = 6` sits between the paper's IIR and FFT, and so do its
interpolation statistics.
"""

import pytest

from benchmarks._table1_common import run_table1_bench
from repro.bench.workloads.table1 import TABLE1_DISTANCES, check_row
from repro.experiments.registry import build_benchmark


@pytest.fixture(scope="module")
def dct_full():
    setup = build_benchmark("dct", "full")
    setup.record_trajectory()
    return setup


@pytest.mark.parametrize("distance", list(TABLE1_DISTANCES["dct"]))
def test_extra_dct_rows(benchmark, dct_full, distance, artifact_writer):
    row = run_table1_bench(benchmark, dct_full, distance, artifact_writer)
    failures = check_row("dct", row)
    assert not failures, failures
