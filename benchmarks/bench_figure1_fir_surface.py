"""E1 — Figure 1: the FIR noise-power surface over (w_mul, w_add).

Times the exhaustive surface evaluation and records the rendered surface as
an artefact; the shape assertions encode the figure's qualitative content
(monotone staircase, tens of dB of dynamic range, plateaus where one source
dominates).
"""

import numpy as np

from repro.experiments.figure1 import fir_noise_surface, render_surface, surface_is_monotone


def test_figure1_fir_surface(benchmark, artifact_writer):
    def compute():
        return fir_noise_surface(word_lengths=range(6, 21), n_samples=1024)

    surface, grid = benchmark.pedantic(compute, rounds=2, iterations=1, warmup_rounds=1)
    artifact_writer("figure1_fir_surface.txt", render_surface(surface, grid) + "\n")

    assert surface_is_monotone(surface)
    assert surface.max() - surface.min() > 40.0
    # Plateaus: with a very fine accumulator, extra adder bits change nothing.
    assert surface[2, -1] == np.clip(surface[2, -1], surface[2, -2] - 0.2, surface[2, -2] + 0.2)
    benchmark.extra_info["dynamic_range_db"] = round(float(surface.max() - surface.min()), 1)
