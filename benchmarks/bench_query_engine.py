"""Micro-benchmark of the vectorized query engine (PR: batch kriging).

Times a fixed interpolation-heavy sweep three ways at several support sizes:

* ``seed``     — a faithful re-implementation of the seed hot path: a
  list-of-rows cache whose ``points`` property re-``vstack``s on every
  access, a brute-force neighbourhood scan over all simulated points, and
  one bordered-system build + solve per query.  (Its only deviation from
  the seed is exact-coordinate cache keys, so all three variants compute
  identical results.)
* ``evaluate`` — the current per-query path: contiguous zero-copy cache,
  lattice bucket index, per-query solve.
* ``batch``    — ``KrigingEstimator.evaluate_batch``: additionally groups
  queries sharing a support set and factorizes each group's bordered
  matrix once.

Two engine-knob sections ride along:

* ``l2_index`` — the same sweep under the L2 metric, with the brute-force
  index versus the KD-tree (the metric has no useful coordinate-sum bound,
  so this is the pruning the KD-tree was added for).
* ``parallel`` — ``evaluate_batch`` with ``n_jobs=1`` versus a thread pool
  over the shared-support groups (wall-clock only; results are identical by
  construction, so no values are compared).  On a single-core runner the
  recorded speedup is honestly ~1x.

The sweep mimics a dense surface exploration (cf. ``experiments/figure1``):
query clusters jittered inside single lattice cells, so clusters share
neighbourhoods and the batch path has real groups to exploit.  Results are
written to ``BENCH_query_engine.json`` at the repository root so the perf
trajectory is tracked across PRs.

Run directly (``python benchmarks/bench_query_engine.py``), through pytest
(``pytest benchmarks/bench_query_engine.py``), or as the CI smoke gate
(``--quick --output <path>`` followed by ``benchmarks/check_regression.py``
against the committed baseline).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core.distances import distances_to
from repro.core.estimator import KrigingEstimator
from repro.core.kriging import ordinary_kriging
from repro.core.models import LinearVariogram
from repro.core.neighborhood import find_neighbors

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_query_engine.json"

NUM_VARIABLES = 5
LATTICE = 12
DISTANCE = 4.0
NN_MIN = 1
N_QUERIES = 2000
SUPPORT_SIZES = (500, 2000, 5000)
QUICK_SUPPORT_SIZES = (500, 2000)
ACCEPTANCE_N = 2000
ACCEPTANCE_SPEEDUP = 5.0
PARALLEL_JOBS = 4

_COEFFS = np.array([1.0, -2.0, 0.5, 0.25, 1.5])


def _field(config) -> float:
    c = np.asarray(config, dtype=float)
    return float(c @ np.resize(_COEFFS, c.size) - 60.0)


# ----------------------------------------------------------------------
# Seed-faithful reference implementation (PR-0 hot path)
# ----------------------------------------------------------------------
class _SeedCache:
    """The seed's list-of-rows store: ``points`` vstacks on every access."""

    def __init__(self, num_variables: int) -> None:
        self.num_variables = num_variables
        self._points: list[np.ndarray] = []
        self._values: list[float] = []
        self._index: dict[bytes, int] = {}

    @property
    def points(self) -> np.ndarray:
        if not self._points:
            return np.empty((0, self.num_variables))
        return np.vstack(self._points)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def add(self, config: np.ndarray, value: float) -> None:
        self._index[config.tobytes()] = len(self._points)
        self._points.append(config.copy())
        self._values.append(float(value))

    def lookup(self, config: np.ndarray) -> float | None:
        row = self._index.get(config.tobytes())
        return self._values[row] if row is not None else None


def _seed_sweep(support, support_values, queries, variogram) -> list[float]:
    """The seed's evaluate loop: vstack + brute scan + per-query solve."""
    cache = _SeedCache(support.shape[1])
    for config, value in zip(support, support_values):
        cache.add(config, value)
    out: list[float] = []
    for query in queries:
        cached = cache.lookup(query)
        if cached is not None:
            out.append(cached)
            continue
        points = cache.points  # fresh vstack, every query
        dist = distances_to(points, query)  # brute scan of all points
        inside = np.flatnonzero(dist <= DISTANCE)
        neighbors = inside[np.argsort(dist[inside], kind="stable")]
        if neighbors.size > NN_MIN:
            result = ordinary_kriging(
                points[neighbors], cache.values[neighbors], query, variogram
            )
            out.append(result.estimate)
        else:
            value = _field(query)
            cache.add(query, value)
            out.append(value)
    return out


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def _make_workload(n_support: int, n_queries: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    support = set()
    while len(support) < n_support:
        point = tuple(int(x) for x in rng.integers(0, LATTICE, size=NUM_VARIABLES))
        support.add(point)
    support = np.asarray(sorted(support), dtype=np.float64)
    rng.shuffle(support)
    support_values = np.array([_field(p) for p in support])

    # Clustered fractional queries: each cluster jitters inside one lattice
    # cell around a support point, so its members share a neighbourhood.
    cluster_size = 20
    n_clusters = (n_queries + cluster_size - 1) // cluster_size
    centers = support[rng.integers(0, n_support, size=n_clusters)]
    queries = np.repeat(centers, cluster_size, axis=0)[:n_queries]
    queries = queries + rng.uniform(0.05, 0.45, size=queries.shape)
    return support, support_values, queries


def _engine_estimator(support, support_values, **kwargs) -> KrigingEstimator:
    est = KrigingEstimator(
        _field,
        NUM_VARIABLES,
        distance=DISTANCE,
        nn_min=NN_MIN,
        variogram=LinearVariogram(1.0),
        **kwargs,
    )
    for config, value in zip(support, support_values):
        row = est.cache.add(config, value)
        est.neighbor_index.insert(config, row)
    return est


def _time(fn, *, repetitions: int = 1) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_l2_index_benchmark(
    n_support: int = ACCEPTANCE_N, n_queries: int = N_QUERIES, repetitions: int = 2
) -> dict:
    """The L2 radius-query path: brute-force index versus the KD-tree.

    The gated ratio times :func:`~repro.core.neighborhood.find_neighbors`
    itself — the exact work the index prunes, and a stable ratio to gate on.
    The full interpolation sweep is recorded alongside for context (there
    the kriging solves dilute the search win).
    """
    support, support_values, queries = _make_workload(n_support, n_queries)
    query_timings = {}
    sweep_timings = {}
    outputs = {}
    for kind in ("brute", "kdtree"):
        est = _engine_estimator(
            support, support_values, metric="l2", neighbor_index=kind
        )
        points = est.cache.points
        index = est.neighbor_index
        find_neighbors(points, queries[0], DISTANCE, metric="l2", index=index)  # warm

        def _queries_only(points=points, index=index):
            return [
                find_neighbors(points, q, DISTANCE, metric="l2", index=index)
                for q in queries
            ]

        def _sweep(kind=kind):
            est = _engine_estimator(
                support, support_values, metric="l2", neighbor_index=kind
            )
            return est.evaluate_batch(queries)

        query_timings[kind], neighbor_lists = _time(
            _queries_only, repetitions=repetitions
        )
        sweep_timings[kind], outputs[kind] = _time(_sweep, repetitions=repetitions)
        outputs[f"{kind}_neighbors"] = neighbor_lists

    # The index is a pruning knob only: identical neighbourhoods and values.
    for brute_rows, kd_rows in zip(
        outputs["brute_neighbors"], outputs["kdtree_neighbors"]
    ):
        np.testing.assert_array_equal(brute_rows, kd_rows)
    np.testing.assert_allclose(
        [o.value for o in outputs["brute"]],
        [o.value for o in outputs["kdtree"]],
        rtol=1e-9,
        atol=1e-9,
    )
    return {
        "n_support": n_support,
        "n_queries": n_queries,
        "metric": "l2",
        "query_brute_seconds": round(query_timings["brute"], 6),
        "query_kdtree_seconds": round(query_timings["kdtree"], 6),
        "speedup_kdtree_vs_brute": round(
            query_timings["brute"] / query_timings["kdtree"], 2
        ),
        "sweep_brute_seconds": round(sweep_timings["brute"], 6),
        "sweep_kdtree_seconds": round(sweep_timings["kdtree"], 6),
        "sweep_speedup_kdtree_vs_brute": round(
            sweep_timings["brute"] / sweep_timings["kdtree"], 2
        ),
    }


def run_parallel_benchmark(
    n_support: int = ACCEPTANCE_N,
    n_queries: int = N_QUERIES,
    repetitions: int = 2,
    n_jobs: int = PARALLEL_JOBS,
) -> dict:
    """``evaluate_batch`` wall clock: sequential versus threaded group solves."""
    support, support_values, queries = _make_workload(n_support, n_queries)
    timings = {}
    for jobs in (1, n_jobs):
        def _sweep(jobs=jobs):
            est = _engine_estimator(support, support_values, n_jobs=jobs)
            return est.evaluate_batch(queries)

        timings[jobs], _ = _time(_sweep, repetitions=repetitions)
    return {
        "n_support": n_support,
        "n_queries": n_queries,
        "n_jobs": n_jobs,
        "serial_seconds": round(timings[1], 6),
        "parallel_seconds": round(timings[n_jobs], 6),
        "speedup_parallel_vs_serial": round(timings[1] / timings[n_jobs], 2),
    }


def run_benchmark(
    support_sizes=SUPPORT_SIZES, n_queries: int = N_QUERIES, repetitions: int = 2
) -> dict:
    variogram = LinearVariogram(1.0)
    results = []
    for n_support in support_sizes:
        support, support_values, queries = _make_workload(n_support, n_queries)

        def _eval_sweep():
            est = _engine_estimator(support, support_values)
            return [est.evaluate(query) for query in queries]

        t_seed, seed_values = _time(
            lambda: _seed_sweep(support, support_values, queries, variogram),
            repetitions=repetitions,
        )
        t_eval, eval_out = _time(_eval_sweep, repetitions=repetitions)
        t_batch, batch_out = _time(
            lambda: _engine_estimator(support, support_values).evaluate_batch(queries),
            repetitions=repetitions,
        )

        # All three variants answer the sweep identically.
        np.testing.assert_allclose(
            seed_values, [o.value for o in eval_out], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            seed_values, [o.value for o in batch_out], rtol=1e-9, atol=1e-9
        )

        results.append(
            {
                "n_support": n_support,
                "n_queries": n_queries,
                "interpolated": sum(1 for o in batch_out if o.interpolated),
                "seed_seconds": round(t_seed, 6),
                "evaluate_seconds": round(t_eval, 6),
                "evaluate_batch_seconds": round(t_batch, 6),
                "speedup_evaluate_vs_seed": round(t_seed / t_eval, 2),
                "speedup_batch_vs_seed": round(t_seed / t_batch, 2),
                "speedup_batch_vs_evaluate": round(t_eval / t_batch, 2),
            }
        )

    acceptance_row = next(r for r in results if r["n_support"] == ACCEPTANCE_N)
    l2 = run_l2_index_benchmark(n_queries=n_queries, repetitions=repetitions)
    parallel = run_parallel_benchmark(n_queries=n_queries, repetitions=repetitions)
    report = {
        "benchmark": "query_engine",
        "workload": {
            "num_variables": NUM_VARIABLES,
            "lattice": LATTICE,
            "distance": DISTANCE,
            "nn_min": NN_MIN,
            "query_model": "clustered fractional sweep (20 queries/cell)",
        },
        "results": results,
        "l2_index": l2,
        "parallel": parallel,
        "acceptance": {
            "n_support": ACCEPTANCE_N,
            "speedup_batch_vs_seed": acceptance_row["speedup_batch_vs_seed"],
            "threshold": ACCEPTANCE_SPEEDUP,
            "speedup_kdtree_vs_brute": l2["speedup_kdtree_vs_brute"],
            "passed": (
                acceptance_row["speedup_batch_vs_seed"] >= ACCEPTANCE_SPEEDUP
                and l2["speedup_kdtree_vs_brute"] > 1.0
            ),
        },
    }
    return report


def write_report(report: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_query_engine_speedup():
    """The batch engine beats the seed hot path >= 5x at n=2000, and the
    KD-tree beats the brute-force L2 path."""
    report = run_benchmark()
    write_report(report)
    assert report["acceptance"]["passed"], report["acceptance"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer support sizes, one repetition",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=RESULT_PATH,
        help=f"report destination (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report = run_benchmark(support_sizes=QUICK_SUPPORT_SIZES, repetitions=1)
    else:
        report = run_benchmark()
    write_report(report, args.output)

    for row in report["results"]:
        print(
            f"n={row['n_support']:>5}  seed={row['seed_seconds']:.3f}s  "
            f"evaluate={row['evaluate_seconds']:.3f}s  "
            f"batch={row['evaluate_batch_seconds']:.3f}s  "
            f"batch-vs-seed={row['speedup_batch_vs_seed']:.1f}x"
        )
    l2 = report["l2_index"]
    print(
        f"l2 n={l2['n_support']}  queries: brute={l2['query_brute_seconds']:.3f}s  "
        f"kdtree={l2['query_kdtree_seconds']:.3f}s  "
        f"({l2['speedup_kdtree_vs_brute']:.2f}x)  "
        f"sweep: {l2['sweep_speedup_kdtree_vs_brute']:.2f}x"
    )
    par = report["parallel"]
    print(
        f"parallel n={par['n_support']}  serial={par['serial_seconds']:.3f}s  "
        f"n_jobs={par['n_jobs']}: {par['parallel_seconds']:.3f}s  "
        f"({par['speedup_parallel_vs_serial']:.2f}x)"
    )
    print("written:", args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
