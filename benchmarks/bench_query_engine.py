"""Micro-benchmark of the vectorized query engine (thin shim).

The workload now lives in :mod:`repro.bench.workloads.query_engine`; this
script keeps the historical entry points working — run directly
(``python benchmarks/bench_query_engine.py``), through pytest
(``pytest benchmarks/bench_query_engine.py``), via the harness CLI
(``python -m repro bench query-engine``), or as the CI smoke gate
(``--quick --output <path>`` followed by ``benchmarks/check_regression.py``
against the committed baseline).
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_query_engine.json"

try:
    import repro.bench  # noqa: F401
except ImportError:  # running from a checkout without an editable install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.workloads.query_engine import (  # noqa: E402,F401
    ACCEPTANCE_SPEEDUP,
    REUSE_ACCEPTANCE_SPEEDUP,
    SUPPORT_SIZES,
    QUICK_SUPPORT_SIZES,
    run_benchmark,
    run_l2_index_benchmark,
    run_parallel_benchmark,
    run_reuse_benchmark,
)
from repro.bench.workloads import query_engine as _workload  # noqa: E402


def write_report(report: dict, path: pathlib.Path = RESULT_PATH) -> None:
    from repro.bench.report import write_report as _write

    _write(report, path)


def test_query_engine_speedup():
    """The batch engine beats the seed hot path >= 5x at n=2000, the KD-tree
    beats the brute-force L2 path, and the factor-cache path beats the fresh
    batch path >= 1.5x on the incremental-growth workload."""
    report = run_benchmark()
    write_report(report)
    assert report["acceptance"]["passed"], report["acceptance"]


def main(argv: list[str] | None = None) -> int:
    return _workload.main(argv, default_output=RESULT_PATH)


if __name__ == "__main__":
    raise SystemExit(main())
