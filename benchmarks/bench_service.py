"""Multi-client load generator for the kriging evaluation service (shim).

The workload now lives in :mod:`repro.bench.workloads.service`; this script
keeps the historical CLI working (``python benchmarks/bench_service.py
[--quick] [--connect HOST:PORT] [--output PATH]``) and re-exports the
workload constants the cluster/chaos benches share.  Prefer
``python -m repro bench service`` for new automation.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_service.json"

try:
    import repro.bench  # noqa: F401
except ImportError:  # running from a checkout without an editable install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.runner import latency_summary as _percentiles  # noqa: E402,F401
from repro.bench.workloads.service import (  # noqa: E402,F401
    DISTANCE,
    MAX_BATCH,
    MAX_DELAY_MS,
    NUM_VARIABLES,
    SESSION_KWARGS,
    SIMULATOR,
    _SpawnedServer,
    _make_workload,
    _scenario_row,
    run_benchmark,
    run_concurrent,
    run_open_loop,
    run_sequential,
    run_snapshot_roundtrip,
)
from repro.bench.workloads import service as _workload  # noqa: E402


def write_report(report: dict, path: pathlib.Path = RESULT_PATH) -> None:
    from repro.bench.report import write_report as _write

    _write(report, path)


def main(argv: list[str] | None = None) -> int:
    return _workload.main(argv, default_output=RESULT_PATH)


if __name__ == "__main__":
    raise SystemExit(main())
