"""Zero-copy solve-path benchmark (shim).

The workload lives in :mod:`repro.bench.workloads.solve`; this script keeps
the ``python benchmarks/bench_solve.py [--quick] [--output PATH]`` CLI shape
of its siblings.  Prefer ``python -m repro bench solve`` for new automation.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_solve.json"

try:
    import repro.bench  # noqa: F401
except ImportError:  # running from a checkout without an editable install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.workloads.solve import (  # noqa: E402,F401
    run_benchmark,
    run_shm_benchmark,
    run_stacked_benchmark,
    run_warm_restore_benchmark,
)
from repro.bench.workloads import solve as _workload  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    return _workload.main(argv, default_output=RESULT_PATH)


if __name__ == "__main__":
    raise SystemExit(main())
