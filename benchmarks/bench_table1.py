"""E2-E6 — Table I rows for every paper benchmark (d = 2..5).

One parametrized bench replaces the five per-benchmark wrappers; the
distance sweep and the reproduction-shape envelopes come from the harness
registry (:mod:`repro.bench.workloads.table1`), so pytest and
``python -m repro bench table1-<name>`` enforce the same envelopes.

Paper values the envelopes bracket:

* fir        — p = 33.3 / 52.8 / 58.3 / 66.7 %
* iir        — p = 47.5 / 64.5 / 70.9 / 77.3 %, mu eps = 0.44-1.24 bits
* fft        — p = 78.1 / 89.1 / 91.9 / 95.6 %, mu eps = 0.18-0.68 bits
* hevc       — p = 87.4 / 93.3 / 95.6 / 96.0 %, mu eps = 0.07-0.52 bits
* squeezenet — p = 78.3 / 89.3 / 91.4 / 93.1 %, mu eps = 3.5-12.2 % rel.
"""

import pytest

from benchmarks._table1_common import run_table1_bench
from repro.bench.workloads.table1 import DISTANCES, check_row

PAPER_BENCHMARKS = ["fir", "iir", "fft", "hevc", "squeezenet"]


@pytest.mark.parametrize("distance", list(DISTANCES))
@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_table1(benchmark, name, distance, request, artifact_writer):
    setup = request.getfixturevalue(f"{name}_full")
    row = run_table1_bench(benchmark, setup, distance, artifact_writer)
    failures = check_row(name, row)
    assert not failures, failures
