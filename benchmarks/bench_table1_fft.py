"""E4 — Table I, FFT rows (Nv = 10, noise-power metric, d = 2..5)."""

import pytest

from benchmarks._table1_common import run_table1_bench


@pytest.mark.parametrize("distance", [2, 3, 4, 5])
def test_table1_fft(benchmark, fft_full, distance, artifact_writer):
    row = run_table1_bench(benchmark, fft_full, distance, artifact_writer)
    # Paper: p = 78.1 / 89.1 / 91.9 / 95.6 %, mu eps = 0.18-0.68 bits.
    assert row.p_percent >= 55.0
    assert row.mean_error < 1.5
