"""E2 — Table I, FIR rows (Nv = 2, noise-power metric, d = 2..5)."""

import pytest

from benchmarks._table1_common import run_table1_bench


@pytest.mark.parametrize("distance", [2, 3, 4, 5])
def test_table1_fir(benchmark, fir_full, distance, artifact_writer):
    row = run_table1_bench(benchmark, fir_full, distance, artifact_writer)
    # Reproduction shape checks (paper: p = 33.3 / 52.8 / 58.3 / 66.7 %).
    assert 15.0 <= row.p_percent <= 85.0
    assert row.mean_error < 4.0  # equivalent bits
