"""E5 — Table I, HEVC motion-compensation rows (Nv = 23, d = 2..5)."""

import pytest

from benchmarks._table1_common import run_table1_bench


@pytest.mark.parametrize("distance", [2, 3, 4, 5])
def test_table1_hevc(benchmark, hevc_full, distance, artifact_writer):
    row = run_table1_bench(benchmark, hevc_full, distance, artifact_writer)
    # Paper: p = 87.4 / 93.3 / 95.6 / 96.0 %, mu eps = 0.07-0.52 bits.
    assert row.p_percent >= 70.0
    assert row.mean_error < 1.0
