"""E3 — Table I, IIR rows (Nv = 5, noise-power metric, d = 2..5)."""

import pytest

from benchmarks._table1_common import run_table1_bench


@pytest.mark.parametrize("distance", [2, 3, 4, 5])
def test_table1_iir(benchmark, iir_full, distance, artifact_writer):
    row = run_table1_bench(benchmark, iir_full, distance, artifact_writer)
    # Paper: p = 47.5 / 64.5 / 70.9 / 77.3 %, mu eps = 0.44-1.24 bits.
    assert 30.0 <= row.p_percent <= 95.0
    assert row.mean_error < 2.5
