"""E6 — Table I, SqueezeNet sensitivity rows (Nv = 10, classification rate).

The trajectory recording runs the steepest-descent noise budgeting with
exhaustive simulation (a few minutes at the full scale); the timed portion is
the kriging replay, as in the other Table I benches.
"""

import pytest

from benchmarks._table1_common import run_table1_bench


@pytest.mark.parametrize("distance", [2, 3, 4, 5])
def test_table1_squeezenet(benchmark, squeezenet_full, distance, artifact_writer):
    row = run_table1_bench(benchmark, squeezenet_full, distance, artifact_writer)
    # Paper: p = 78.3 / 89.3 / 91.4 / 93.1 %, mu eps = 3.5-12.2 % relative.
    assert row.p_percent >= 60.0
    assert row.mean_error < 0.25  # relative difference
