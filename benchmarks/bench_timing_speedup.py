"""E7 — timing claims: interpolation cost vs simulation cost and Eq. 2 speed-ups.

The paper measures an interpolation time of ~1e-6 s against simulation times
of 2.4 s (signal kernels), 1.37 s (HEVC) and ~20 min (SqueezeNet), concluding
total-optimization-time reductions of ~2x (FIR/IIR), ~5x (FFT at 80 %
interpolation) and ~10x (HEVC/SqueezeNet at ~90 %).  We measure our kriging
solve time directly, measure our own simulation times, and evaluate the Eq. 2
model with both measured and paper-quoted simulation costs.
"""

import numpy as np
import pytest

from repro.core.kriging import ordinary_kriging
from repro.core.models import LinearVariogram
from repro.experiments.replay import replay_trace
from repro.experiments.timing import (
    PAPER_SIMULATION_TIMES,
    measure_simulation_time,
    project_speedup,
)


@pytest.mark.parametrize("n_support", [2, 4, 8, 16])
def test_kriging_solve_time(benchmark, n_support):
    """Wall-clock cost of one ordinary-kriging interpolation."""
    rng = np.random.default_rng(n_support)
    points = rng.integers(4, 16, size=(n_support, 10)).astype(float)
    values = rng.normal(-60.0, 5.0, size=n_support)
    query = rng.integers(4, 16, size=10).astype(float)
    vg = LinearVariogram(1.0)

    result = benchmark(lambda: ordinary_kriging(points, values, query, vg))
    assert np.isfinite(result.estimate)


@pytest.mark.parametrize("name", ["fir", "iir", "fft", "hevc"])
def test_speedup_projection(benchmark, name, request, artifact_writer):
    """Eq. 2 total-time reduction with measured p and simulation times."""
    setup = request.getfixturevalue(f"{name}_full")
    trace = setup.record_trajectory()
    stats = replay_trace(
        trace,
        benchmark=name,
        metric_kind=setup.metric_kind,
        distance=3,
        variogram="auto",
    )
    p = stats.p_percent / 100.0

    t_sim = measure_simulation_time(
        setup.problem.simulate, setup.problem.full_configuration(12), repetitions=3
    )
    benchmark(lambda: replay_trace(trace, metric_kind=setup.metric_kind, distance=3))

    measured = project_speedup(name, p, t_simulation=t_sim, t_kriging=1e-4)
    paper = project_speedup(name, p, t_kriging=1e-4)
    lines = [
        f"benchmark={name} p={100 * p:.1f}% t_sim_measured={t_sim:.4f}s",
        f"speedup with measured t_sim: {measured.speedup:.2f}x",
        f"speedup with paper t_sim ({PAPER_SIMULATION_TIMES[name]:.2f}s): {paper.speedup:.2f}x",
        f"ideal (free interpolation): {measured.ideal_speedup:.2f}x",
    ]
    artifact_writer(f"timing_speedup_{name}.txt", "\n".join(lines) + "\n")
    benchmark.extra_info["p_percent"] = round(100 * p, 2)
    benchmark.extra_info["speedup_paper_tsim"] = round(paper.speedup, 2)

    # Shape check: the reduction grows with p and exceeds 1.5x everywhere.
    assert paper.speedup > 1.5
