"""CI gate: compare a fresh benchmark run against its committed baseline (shim).

The gate logic now lives in the harness as declarative per-metric specs —
:mod:`repro.bench.gates` — and the history writer in
:mod:`repro.bench.history`; this script keeps the historical CLI working::

    python benchmarks/bench_query_engine.py --quick --output current.json
    python benchmarks/check_regression.py BENCH_query_engine.json current.json \
        --history BENCH_history.jsonl --commit "$GITHUB_SHA"

Exit status 0 when every tracked ratio holds up, 1 on regression, 2 on a
malformed report.  Absolute seconds are machine-dependent, so the gate
compares the *speedup ratios* each benchmark computes on the same box; a
run regresses when any tracked ratio falls below ``baseline / factor``
(default factor 2: "fail on >2x regression").
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro.bench  # noqa: F401
except ImportError:  # running from a checkout without an editable install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.gates import (  # noqa: E402,F401
    CLUSTER_MIN_CPUS,
    CLUSTER_SPEEDUP_FLOOR,
    GATE_SETS,
    KNOWN_BENCHMARKS,
    MalformedReport,
    compare,
    evaluate,
    main,
)
from repro.bench.history import (  # noqa: E402,F401
    HISTORY_SCHEMA_VERSION,
    append_history,
    history_entry,
    read_history,
)

if __name__ == "__main__":
    raise SystemExit(main())
