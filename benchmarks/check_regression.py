"""CI gate: compare a fresh benchmark run against its committed baseline.

Understands two report kinds, dispatched on the ``benchmark`` field:
``query_engine`` (``bench_query_engine.py``) and ``service``
(``bench_service.py``, the multi-client load generator).  Absolute seconds
are machine-dependent, so the gate compares the *speedup ratios* each
benchmark already computes — seed vs engine, or batched vs sequential
clients, on the same box — which are stable across hardware.  A run
regresses when any tracked speedup falls below ``baseline / factor``
(default factor 2: "fail on >2x regression").

Alongside the gate, ``--history`` appends one machine-tagged JSON line per
run — absolute seconds *and* ratios — to a ``BENCH_history.jsonl``, so
per-commit timing trends stay plottable even though the pass/fail decision
only ever looks at ratios.  CI appends to the committed history and uploads
it as an artifact on every push.

Usage::

    python benchmarks/bench_query_engine.py --quick --output current.json
    python benchmarks/check_regression.py BENCH_query_engine.json current.json \
        --history BENCH_history.jsonl --commit "$GITHUB_SHA"

    python benchmarks/bench_service.py --quick --output service.json
    python benchmarks/check_regression.py BENCH_service.json service.json

Exit status 0 when every tracked ratio holds up, 1 on regression, 2 on a
malformed report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

#: Speedup fields gated per support-size row of ``results``.
ROW_FIELDS = ("speedup_evaluate_vs_seed", "speedup_batch_vs_seed")

#: Speedup fields gated in the ``l2_index`` section.
L2_FIELDS = ("speedup_kdtree_vs_brute",)

#: Speedup fields gated in the ``reuse`` (factorization cache) section.
REUSE_FIELDS = ("speedup_reuse_vs_fresh",)
# The ``parallel`` section is recorded but not gated: thread scaling depends
# on the runner's core count (a single-core runner honestly reports ~1x).

#: Top-level speedup fields gated on ``service`` reports.  The
#: batched-vs-unbatched ratio is recorded but not gated (like thread
#: scaling, it depends on the runner's core count and scheduler).
SERVICE_FIELDS = ("speedup_batched_vs_sequential",)

#: Report kinds this gate understands.
KNOWN_BENCHMARKS = ("query_engine", "service")


class MalformedReport(Exception):
    """A benchmark report that cannot be read or parsed (exit status 2)."""


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MalformedReport(f"cannot read benchmark report {path}: {exc}") from exc


def compare(baseline: dict, current: dict, factor: float) -> list[str]:
    """Return one message per regressed ratio (empty list: gate passes)."""
    if baseline.get("benchmark") == "service":
        return _compare_service(baseline, current, factor)
    failures: list[str] = []

    current_rows = {row["n_support"]: row for row in current.get("results", [])}
    for base_row in baseline.get("results", []):
        n_support = base_row["n_support"]
        cur_row = current_rows.get(n_support)
        if cur_row is None:
            continue  # quick mode runs a subset of the baseline sizes
        for field in ROW_FIELDS:
            bound = base_row[field] / factor
            if cur_row[field] < bound:
                failures.append(
                    f"results[n_support={n_support}].{field}: "
                    f"{cur_row[field]:.2f} < {bound:.2f} "
                    f"(baseline {base_row[field]:.2f} / {factor:g})"
                )

    for section, fields in (("l2_index", L2_FIELDS), ("reuse", REUSE_FIELDS)):
        base_section = baseline.get(section)
        cur_section = current.get(section)
        if not (base_section and cur_section):
            continue  # older baselines predate the section
        for field in fields:
            bound = base_section[field] / factor
            if cur_section[field] < bound:
                failures.append(
                    f"{section}.{field}: {cur_section[field]:.2f} < {bound:.2f} "
                    f"(baseline {base_section[field]:.2f} / {factor:g})"
                )
    return failures


def _compare_service(baseline: dict, current: dict, factor: float) -> list[str]:
    """Gate a ``service`` load-generator report on its top-level ratios."""
    failures: list[str] = []
    for field in SERVICE_FIELDS:
        if field not in baseline:
            continue  # older baselines predate the field
        if field not in current:
            # A current run silently dropping a gated ratio must fail loudly,
            # not turn the gate vacuously green.
            failures.append(f"{field}: missing from the current report")
            continue
        bound = baseline[field] / factor
        if current[field] < bound:
            failures.append(
                f"{field}: {current[field]:.2f} < {bound:.2f} "
                f"(baseline {baseline[field]:.2f} / {factor:g})"
            )
    if "snapshot" in baseline:
        snapshot = current.get("snapshot")
        if snapshot is None:
            failures.append("snapshot: section missing from the current report")
        elif not snapshot.get("roundtrip_bitwise", False):
            failures.append("snapshot.roundtrip_bitwise: snapshot/restore diverged")
    return failures


def _machine_tag() -> dict:
    """Identify the box a run happened on, so history lines are comparable
    only within the same hardware."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
    }


def history_entry(report: dict, commit: str | None = None) -> dict:
    """One ``BENCH_history.jsonl`` line: absolute seconds plus ratios."""
    absolute: dict[str, float] = {}
    ratios: dict[str, float] = {}
    for row in report.get("results", []):
        prefix = f"n{row['n_support']}"
        for field, value in row.items():
            if field.endswith("_seconds"):
                absolute[f"{prefix}.{field}"] = value
            elif field.startswith("speedup_"):
                ratios[f"{prefix}.{field}"] = value
    for section in ("l2_index", "parallel", "reuse"):
        data = report.get(section)
        if not data:
            continue
        for field, value in data.items():
            if field.endswith("_seconds"):
                absolute[f"{section}.{field}"] = value
            elif field.startswith("speedup_"):
                ratios[f"{section}.{field}"] = value
    # Service reports: per-scenario wall clock / throughput / latency
    # percentiles, plus the top-level cross-scenario ratios.
    for name, data in (report.get("scenarios") or {}).items():
        for field, value in data.items():
            if field == "seconds" or field.endswith("_seconds") or field == "qps":
                absolute[f"scenarios.{name}.{field}"] = value
            elif field == "latency_ms" and isinstance(value, dict):
                for percentile, latency in value.items():
                    absolute[f"scenarios.{name}.latency_ms.{percentile}"] = latency
    for field, value in report.items():
        if field.startswith("speedup_"):
            ratios[field] = value
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": commit,
        "benchmark": report.get("benchmark"),
        "machine": _machine_tag(),
        "absolute_seconds": absolute,
        "ratios": ratios,
    }


def append_history(
    path: pathlib.Path, report: dict, commit: str | None = None
) -> dict:
    """Append this run's :func:`history_entry` to ``path`` (created if
    missing); returns the appended entry."""
    entry = history_entry(report, commit)
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("current", type=pathlib.Path, help="fresh benchmark JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated slowdown of any speedup ratio (default 2.0)",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=None,
        help="append a machine-tagged absolute-timings line to this JSONL file",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit SHA recorded in the history line (e.g. $GITHUB_SHA)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        parser.error(f"--factor must be > 1, got {args.factor}")

    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except MalformedReport as exc:
        print(f"error: {exc}")
        return 2
    kind = baseline.get("benchmark")
    if kind not in KNOWN_BENCHMARKS:
        print(f"error: baseline benchmark {kind!r} not one of {KNOWN_BENCHMARKS}")
        return 2
    for name, report in (("baseline", baseline), ("current", current)):
        if report.get("benchmark") != kind or (
            kind == "query_engine" and "results" not in report
        ):
            print(f"error: {name} is not a {kind} benchmark report")
            return 2

    if args.history is not None:
        entry = append_history(args.history, current, args.commit)
        print(
            f"history: appended {len(entry['absolute_seconds'])} timings "
            f"to {args.history}"
        )

    failures = compare(baseline, current, args.factor)
    if failures:
        print(f"benchmark regression vs {args.baseline}:")
        for message in failures:
            print(f"  {message}")
        return 1
    print(f"benchmark smoke OK (no ratio below baseline/{args.factor:g})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
