"""CI gate: compare a fresh query-engine benchmark run against the baseline.

Absolute seconds are machine-dependent, so the gate compares the *speedup
ratios* the benchmark already computes — seed vs engine on the same box —
which are stable across hardware.  A run regresses when any tracked speedup
falls below ``baseline / factor`` (default factor 2: "fail on >2x
regression").

Usage::

    python benchmarks/bench_query_engine.py --quick --output current.json
    python benchmarks/check_regression.py BENCH_query_engine.json current.json

Exit status 0 when every tracked ratio holds up, 1 on regression, 2 on a
malformed report.
"""

from __future__ import annotations

import argparse
import json
import pathlib

#: Speedup fields gated per support-size row of ``results``.
ROW_FIELDS = ("speedup_evaluate_vs_seed", "speedup_batch_vs_seed")

#: Speedup fields gated in the ``l2_index`` section.
L2_FIELDS = ("speedup_kdtree_vs_brute",)
# The ``parallel`` section is recorded but not gated: thread scaling depends
# on the runner's core count (a single-core runner honestly reports ~1x).


class MalformedReport(Exception):
    """A benchmark report that cannot be read or parsed (exit status 2)."""


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MalformedReport(f"cannot read benchmark report {path}: {exc}") from exc


def compare(baseline: dict, current: dict, factor: float) -> list[str]:
    """Return one message per regressed ratio (empty list: gate passes)."""
    failures: list[str] = []

    current_rows = {row["n_support"]: row for row in current.get("results", [])}
    for base_row in baseline.get("results", []):
        n_support = base_row["n_support"]
        cur_row = current_rows.get(n_support)
        if cur_row is None:
            continue  # quick mode runs a subset of the baseline sizes
        for field in ROW_FIELDS:
            bound = base_row[field] / factor
            if cur_row[field] < bound:
                failures.append(
                    f"results[n_support={n_support}].{field}: "
                    f"{cur_row[field]:.2f} < {bound:.2f} "
                    f"(baseline {base_row[field]:.2f} / {factor:g})"
                )

    base_l2 = baseline.get("l2_index")
    cur_l2 = current.get("l2_index")
    if base_l2 and cur_l2:
        for field in L2_FIELDS:
            bound = base_l2[field] / factor
            if cur_l2[field] < bound:
                failures.append(
                    f"l2_index.{field}: {cur_l2[field]:.2f} < {bound:.2f} "
                    f"(baseline {base_l2[field]:.2f} / {factor:g})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("current", type=pathlib.Path, help="fresh benchmark JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated slowdown of any speedup ratio (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        parser.error(f"--factor must be > 1, got {args.factor}")

    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except MalformedReport as exc:
        print(f"error: {exc}")
        return 2
    for name, report in (("baseline", baseline), ("current", current)):
        if report.get("benchmark") != "query_engine" or "results" not in report:
            print(f"error: {name} is not a query_engine benchmark report")
            return 2

    failures = compare(baseline, current, args.factor)
    if failures:
        print(f"benchmark regression vs {args.baseline}:")
        for message in failures:
            print(f"  {message}")
        return 1
    print(f"benchmark smoke OK (no ratio below baseline/{args.factor:g})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
