"""CI gate: compare a fresh benchmark run against its committed baseline.

Understands four report kinds, dispatched on the ``benchmark`` field:
``query_engine`` (``bench_query_engine.py``), ``service``
(``bench_service.py``, the multi-client load generator), ``cluster``
(``bench_cluster.py``, the sharded-router scaling/availability drill) and
``chaos`` (``bench_chaos.py``, the seeded fault-injection drill — its
robustness invariants gate on every machine; its under-fire throughput is
ratcheted against the baseline only on multi-core boxes).
Absolute seconds are machine-dependent, so the gate compares the *speedup
ratios* each benchmark already computes — seed vs engine, or batched vs
sequential clients, on the same box — which are stable across hardware.
A run regresses when any tracked speedup falls below ``baseline / factor``
(default factor 2: "fail on >2x regression").

Alongside the gate, ``--history`` appends one machine-tagged JSON line per
run — absolute seconds *and* ratios — to a ``BENCH_history.jsonl``, so
per-commit timing trends stay plottable even though the pass/fail decision
only ever looks at ratios.  CI appends to the committed history and uploads
it as an artifact on every push.

Usage::

    python benchmarks/bench_query_engine.py --quick --output current.json
    python benchmarks/check_regression.py BENCH_query_engine.json current.json \
        --history BENCH_history.jsonl --commit "$GITHUB_SHA"

    python benchmarks/bench_service.py --quick --output service.json
    python benchmarks/check_regression.py BENCH_service.json service.json

Exit status 0 when every tracked ratio holds up, 1 on regression, 2 on a
malformed report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

#: Speedup fields gated per support-size row of ``results``.
ROW_FIELDS = ("speedup_evaluate_vs_seed", "speedup_batch_vs_seed")

#: Speedup fields gated in the ``l2_index`` section.
L2_FIELDS = ("speedup_kdtree_vs_brute",)

#: Speedup fields gated in the ``reuse`` (factorization cache) section.
REUSE_FIELDS = ("speedup_reuse_vs_fresh",)
# The ``parallel`` section is recorded but not gated: thread scaling depends
# on the runner's core count (a single-core runner honestly reports ~1x).

#: Top-level speedup fields gated on ``service`` reports.  The
#: batched-vs-unbatched ratio is recorded but not gated (like thread
#: scaling, it depends on the runner's core count and scheduler).
SERVICE_FIELDS = ("speedup_batched_vs_sequential",)

#: The aggregate-throughput floor and ratio gate on ``cluster`` reports
#: apply only on machines with at least this many CPUs: two workers cannot
#: outrun one on a single core, and the committed baseline may come from
#: such a box.  The correctness flags (migration byte-identity, lossless
#: failover, local-estimator equivalence) gate on every machine.
CLUSTER_MIN_CPUS = 4
CLUSTER_SPEEDUP_FLOOR = 1.5

#: Report kinds this gate understands.
KNOWN_BENCHMARKS = ("query_engine", "service", "cluster", "chaos")


class MalformedReport(Exception):
    """A benchmark report that cannot be read or parsed (exit status 2)."""


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MalformedReport(f"cannot read benchmark report {path}: {exc}") from exc


def compare(baseline: dict, current: dict, factor: float) -> list[str]:
    """Return one message per regressed ratio (empty list: gate passes)."""
    if baseline.get("benchmark") == "service":
        return _compare_service(baseline, current, factor)
    if baseline.get("benchmark") == "cluster":
        return _compare_cluster(baseline, current, factor)
    if baseline.get("benchmark") == "chaos":
        return _compare_chaos(baseline, current, factor)
    failures: list[str] = []

    current_rows = {row["n_support"]: row for row in current.get("results", [])}
    for base_row in baseline.get("results", []):
        n_support = base_row["n_support"]
        cur_row = current_rows.get(n_support)
        if cur_row is None:
            continue  # quick mode runs a subset of the baseline sizes
        for field in ROW_FIELDS:
            bound = base_row[field] / factor
            if cur_row[field] < bound:
                failures.append(
                    f"results[n_support={n_support}].{field}: "
                    f"{cur_row[field]:.2f} < {bound:.2f} "
                    f"(baseline {base_row[field]:.2f} / {factor:g})"
                )

    for section, fields in (("l2_index", L2_FIELDS), ("reuse", REUSE_FIELDS)):
        base_section = baseline.get(section)
        cur_section = current.get(section)
        if not (base_section and cur_section):
            continue  # older baselines predate the section
        for field in fields:
            bound = base_section[field] / factor
            if cur_section[field] < bound:
                failures.append(
                    f"{section}.{field}: {cur_section[field]:.2f} < {bound:.2f} "
                    f"(baseline {base_section[field]:.2f} / {factor:g})"
                )
    return failures


def _compare_service(baseline: dict, current: dict, factor: float) -> list[str]:
    """Gate a ``service`` load-generator report on its top-level ratios."""
    failures: list[str] = []
    for field in SERVICE_FIELDS:
        if field not in baseline:
            continue  # older baselines predate the field
        if field not in current:
            # A current run silently dropping a gated ratio must fail loudly,
            # not turn the gate vacuously green.
            failures.append(f"{field}: missing from the current report")
            continue
        bound = baseline[field] / factor
        if current[field] < bound:
            failures.append(
                f"{field}: {current[field]:.2f} < {bound:.2f} "
                f"(baseline {baseline[field]:.2f} / {factor:g})"
            )
    if "snapshot" in baseline:
        snapshot = current.get("snapshot")
        if snapshot is None:
            failures.append("snapshot: section missing from the current report")
        elif not snapshot.get("roundtrip_bitwise", False):
            failures.append("snapshot.roundtrip_bitwise: snapshot/restore diverged")
    return failures


def _compare_cluster(baseline: dict, current: dict, factor: float) -> list[str]:
    """Gate a ``cluster`` report: correctness everywhere, throughput only
    where two workers actually have two cores to run on."""
    failures: list[str] = []

    # Correctness flags gate unconditionally — a migration that changes a
    # byte or a failover that loses a session is a bug on any hardware.
    migration = current.get("migration")
    if migration is None:
        failures.append("migration: section missing from the current report")
    elif not migration.get("bitwise_preserved", False):
        failures.append(
            "migration.bitwise_preserved: migrated snapshot diverged byte-for-byte"
        )
    failover = current.get("failover")
    if failover is None:
        failures.append("failover: section missing from the current report")
    else:
        lost = failover.get("sessions_lost")
        if lost != 0:
            failures.append(f"failover.sessions_lost: {lost!r} != 0")
        if not failover.get("all_sessions_answer", False):
            failures.append(
                "failover.all_sessions_answer: a session stopped answering"
            )
    if not current.get("equivalence_ok", False):
        failures.append("equivalence_ok: cluster diverged from the local estimator")

    field = "speedup_cluster_vs_single"
    if field not in current:
        failures.append(f"{field}: missing from the current report")
        return failures
    cpus = (current.get("hardware") or {}).get("cpus", 0)
    if cpus < CLUSTER_MIN_CPUS:
        print(
            f"note: {field} = {current[field]:.2f} recorded but not gated "
            f"({cpus} cpu < {CLUSTER_MIN_CPUS}: one core cannot scale out)"
        )
        return failures
    # On real multi-core hardware the acceptance floor is absolute, and the
    # committed baseline additionally ratchets it when it was measured on
    # comparable hardware (a single-core baseline would only weaken it).
    bound = CLUSTER_SPEEDUP_FLOOR
    baseline_cpus = (baseline.get("hardware") or {}).get("cpus", 0)
    if baseline_cpus >= CLUSTER_MIN_CPUS and field in baseline:
        bound = max(bound, baseline[field] / factor)
    if current[field] < bound:
        failures.append(
            f"{field}: {current[field]:.2f} < {bound:.2f} "
            f"(floor {CLUSTER_SPEEDUP_FLOOR:g}, baseline "
            f"{baseline.get(field, 'n/a')} / {factor:g})"
        )
    return failures


def _compare_chaos(baseline: dict, current: dict, factor: float) -> list[str]:
    """Gate a ``chaos`` fault-drill report: the robustness invariants are
    correctness and gate on every machine; under-fire throughput is timing
    and is ratcheted only where the fleet has real cores to run on."""
    failures: list[str] = []

    scenarios = current.get("scenarios") or {}
    if not scenarios:
        failures.append("scenarios: no per-seed drills in the current report")
    for name, row in sorted(scenarios.items()):
        for invariant, held in sorted((row.get("invariants") or {}).items()):
            if not held:
                failures.append(f"scenarios.{name}.invariants.{invariant}: violated")
        for message in row.get("unexpected_errors") or []:
            failures.append(f"scenarios.{name}: unexpected error: {message}")
    acceptance = current.get("acceptance") or {}
    seeds_run = acceptance.get("seeds_run", 0)
    base_seeds = (baseline.get("acceptance") or {}).get("seeds_run", 3)
    if seeds_run < base_seeds:
        failures.append(
            f"acceptance.seeds_run: {seeds_run} < {base_seeds} (baseline coverage)"
        )

    field = "qps_under_chaos"
    if field not in current:
        failures.append(f"{field}: missing from the current report")
        return failures
    cpus = (current.get("hardware") or {}).get("cpus", 0)
    baseline_cpus = (baseline.get("hardware") or {}).get("cpus", 0)
    if cpus < CLUSTER_MIN_CPUS or baseline_cpus < CLUSTER_MIN_CPUS:
        print(
            f"note: {field} = {current[field]:.2f} recorded but not gated "
            f"({cpus} cpu here, {baseline_cpus} in baseline; "
            f"need {CLUSTER_MIN_CPUS}+ on both)"
        )
        return failures
    if field in baseline:
        bound = baseline[field] / factor
        if current[field] < bound:
            failures.append(
                f"{field}: {current[field]:.2f} < {bound:.2f} "
                f"(baseline {baseline[field]:.2f} / {factor:g})"
            )
    return failures


def _machine_tag() -> dict:
    """Identify the box a run happened on, so history lines are comparable
    only within the same hardware."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
    }


def history_entry(report: dict, commit: str | None = None) -> dict:
    """One ``BENCH_history.jsonl`` line: absolute seconds plus ratios."""
    absolute: dict[str, float] = {}
    ratios: dict[str, float] = {}
    for row in report.get("results", []):
        prefix = f"n{row['n_support']}"
        for field, value in row.items():
            if field.endswith("_seconds"):
                absolute[f"{prefix}.{field}"] = value
            elif field.startswith("speedup_"):
                ratios[f"{prefix}.{field}"] = value
    # The cluster drills contribute their absolute timings too
    # (migration.migrate_seconds, failover.detect_seconds).
    for section in ("l2_index", "parallel", "reuse", "migration", "failover"):
        data = report.get(section)
        if not data:
            continue
        for field, value in data.items():
            if field.endswith("_seconds"):
                absolute[f"{section}.{field}"] = value
            elif field.startswith("speedup_"):
                ratios[f"{section}.{field}"] = value
    # Service reports: per-scenario wall clock / throughput / latency
    # percentiles, plus the top-level cross-scenario ratios.
    for name, data in (report.get("scenarios") or {}).items():
        for field, value in data.items():
            if field == "seconds" or field.endswith("_seconds") or field == "qps":
                absolute[f"scenarios.{name}.{field}"] = value
            elif field == "latency_ms" and isinstance(value, dict):
                for percentile, latency in value.items():
                    absolute[f"scenarios.{name}.latency_ms.{percentile}"] = latency
    for field, value in report.items():
        if field.startswith("speedup_"):
            ratios[field] = value
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": commit,
        "benchmark": report.get("benchmark"),
        "machine": _machine_tag(),
        "absolute_seconds": absolute,
        "ratios": ratios,
    }


def append_history(
    path: pathlib.Path, report: dict, commit: str | None = None
) -> dict:
    """Append this run's :func:`history_entry` to ``path`` (created if
    missing); returns the appended entry."""
    entry = history_entry(report, commit)
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("current", type=pathlib.Path, help="fresh benchmark JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated slowdown of any speedup ratio (default 2.0)",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=None,
        help="append a machine-tagged absolute-timings line to this JSONL file",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit SHA recorded in the history line (e.g. $GITHUB_SHA)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        parser.error(f"--factor must be > 1, got {args.factor}")

    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except MalformedReport as exc:
        print(f"error: {exc}")
        return 2
    kind = baseline.get("benchmark")
    if kind not in KNOWN_BENCHMARKS:
        print(f"error: baseline benchmark {kind!r} not one of {KNOWN_BENCHMARKS}")
        return 2
    for name, report in (("baseline", baseline), ("current", current)):
        if report.get("benchmark") != kind or (
            kind == "query_engine" and "results" not in report
        ):
            print(f"error: {name} is not a {kind} benchmark report")
            return 2

    if args.history is not None:
        entry = append_history(args.history, current, args.commit)
        print(
            f"history: appended {len(entry['absolute_seconds'])} timings "
            f"to {args.history}"
        )

    failures = compare(baseline, current, args.factor)
    if failures:
        print(f"benchmark regression vs {args.baseline}:")
        for message in failures:
            print(f"  {message}")
        return 1
    print(f"benchmark smoke OK (no ratio below baseline/{args.factor:g})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
