"""Shared benchmark fixtures.

Trajectory recording (the optimizer run with exhaustive simulation) is the
expensive, one-off part of every Table I experiment; it is cached per session
so each distance/ablation variant only pays for the replay.  Reproduced table
rows are written to ``benchmarks/results/`` so the artefacts survive the
timing run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.registry import build_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> pathlib.Path:
    """Write a reproduced table/figure to ``benchmarks/results/<name>``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def artifact_writer():
    return save_artifact


def _setup_fixture(name: str, scale: str = "full"):
    @pytest.fixture(scope="session", name=f"{name}_full")
    def fixture():
        setup = build_benchmark(name, scale)
        setup.record_trajectory()
        return setup

    return fixture


fir_full = _setup_fixture("fir")
iir_full = _setup_fixture("iir")
fft_full = _setup_fixture("fft")
hevc_full = _setup_fixture("hevc")
squeezenet_full = _setup_fixture("squeezenet")
