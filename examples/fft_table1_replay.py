"""Reproduce the FFT rows of the paper's Table I.

Follows the paper's exact methodology (Section IV): record the configuration
trajectory of the ``min+1 bit`` optimizer on the 64-point fixed-point FFT
(``Nv = 10``) with exhaustive simulation, then replay the kriging policy over
that trajectory for each neighbourhood distance ``d = 2..5`` and report
``p(%)``, mean support size ``j`` and the interpolation errors in equivalent
bits.

Run with:  python examples/fft_table1_replay.py
"""

from repro.experiments.registry import build_benchmark
from repro.experiments.reporting import format_table1
from repro.experiments.table1 import rows_for_setup


def main() -> None:
    setup = build_benchmark("fft", "full")

    print("recording ground-truth trajectory (min+1 bit, exhaustive simulation)...")
    trace = setup.record_trajectory()
    result = setup.reference_result
    print(f"  tested configurations : {len(trace.unique_first_visits())}")
    print(f"  optimized word-lengths: {result.solution}")
    print(f"  output noise          : {result.solution_value:.2f} dB "
          f"(constraint {setup.problem.threshold:.1f} dB)\n")

    rows = rows_for_setup(setup, distances=(2, 3, 4, 5))
    print("Table I, FFT rows (errors in equivalent bits, 6.02 dB/bit):")
    print(format_table1(rows))
    print("\npaper reference      : p = 78.1 / 89.1 / 91.9 / 95.6 %"
          "  mu_eps = 0.18 / 0.34 / 0.54 / 0.68 bit")


if __name__ == "__main__":
    main()
