"""Word-length optimization of a 64-tap FIR filter (paper Figure 1 scenario).

Reproduces the paper's motivating example end to end:

1. build the bit-accurate fixed-point FIR benchmark (``Nv = 2``: multiplier
   and accumulator word-lengths);
2. render the noise-power surface of Figure 1;
3. run the ``min+1 bit`` optimizer with exhaustive simulation;
4. rerun it with kriging in the loop and compare simulation counts.

Run with:  python examples/fir_wordlength.py
"""

import numpy as np

from repro import KrigingEstimator, MinPlusOneOptimizer
from repro.experiments.figure1 import render_surface
from repro.optimization import DSEProblem, KrigingMetricEvaluator, MetricSense
from repro.signal import FIRBenchmark


def main() -> None:
    fir = FIRBenchmark(n_samples=1024, seed=0)

    print("=== Figure 1: noise power (dB) vs (w_mul, w_add) ===")
    grid = range(8, 17)
    surface = fir.surface(grid)
    print(render_surface(surface, list(grid)))

    problem = DSEProblem(
        name="fir",
        num_variables=2,
        min_value=2,
        max_value=20,
        simulate=fir.noise_power_db,
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-58.5,
    )

    print("\n=== min+1 bit with exhaustive simulation ===")
    reference = MinPlusOneOptimizer(problem).run()
    print(f"w_min = {reference.minimum}")
    print(f"w_res = {reference.solution}  (noise {reference.solution_value:.2f} dB, "
          f"cost {reference.cost:.0f} bits)")
    print(f"simulations: {reference.trace.n_simulated}")

    print("\n=== min+1 bit with kriging in the loop (d = 3) ===")
    estimator = KrigingEstimator(
        fir.noise_power_db, 2, distance=3, nn_min=1, variogram="auto",
        min_fit_points=4, refit_interval=1,
    )
    accelerated = MinPlusOneOptimizer(problem, KrigingMetricEvaluator(estimator)).run()
    true_noise = fir.noise_power_db(np.asarray(accelerated.solution))
    print(f"w_res = {accelerated.solution}  (true noise {true_noise:.2f} dB, "
          f"cost {accelerated.cost:.0f} bits)")
    print(f"simulations: {estimator.stats.n_simulated}  "
          f"interpolations: {estimator.stats.n_interpolated}  "
          f"(p = {100 * estimator.stats.interpolated_fraction:.1f}%)")


if __name__ == "__main__":
    main()
