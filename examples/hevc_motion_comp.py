"""HEVC motion-compensation word-length exploration (``Nv = 23``).

Exercises the largest benchmark of the paper: the 23-node fixed-point
quarter-pel luma interpolation pipeline.  Shows per-node sensitivity (how
much each pipeline stage's precision matters), then accelerates the quality
evaluation with kriging during a min+1 run.

Run with:  python examples/hevc_motion_comp.py
"""

import numpy as np

from repro import KrigingEstimator, MinPlusOneOptimizer
from repro.experiments.registry import build_benchmark
from repro.optimization import KrigingMetricEvaluator


def main() -> None:
    setup = build_benchmark("hevc", "full")
    bench = setup.substrate
    problem = setup.problem

    print("=== per-node sensitivity (degrade one node from a 14-bit baseline) ===")
    base = problem.full_configuration(14)
    base_noise = problem.simulate(base)
    print(f"baseline (all nodes 14 bit): {base_noise:.2f} dB")
    sensitivities = []
    for i, name in enumerate(bench.VARIABLE_NAMES):
        w = base.copy()
        w[i] = 8
        sensitivities.append((problem.simulate(w) - base_noise, name))
    for delta, name in sorted(sensitivities, reverse=True)[:8]:
        print(f"  {name:<10s}: +{delta:6.2f} dB when cut to 8 bits")

    print("\n=== min+1 bit with kriging in the loop (d = 3) ===")
    estimator = KrigingEstimator(
        problem.simulate,
        problem.num_variables,
        distance=3,
        nn_min=1,
        variogram="auto",
        min_fit_points=6,
        refit_interval=4,
    )
    result = MinPlusOneOptimizer(problem, KrigingMetricEvaluator(estimator)).run()
    true_noise = problem.simulate(np.asarray(result.solution))
    print(f"optimized word-lengths: {result.solution}")
    print(f"true output noise     : {true_noise:.2f} dB (constraint {problem.threshold} dB)")
    print(f"total cost            : {result.cost:.0f} bits")
    print(f"simulations           : {estimator.stats.n_simulated}")
    print(f"interpolations        : {estimator.stats.n_interpolated} "
          f"(p = {100 * estimator.stats.interpolated_fraction:.1f}%)")
    print("\nnote: estimate-driven greedy decisions trade solution cost for "
          "evaluation speed;\npass max_variance (e.g. 0.5) to KrigingEstimator "
          "to recover reference-quality\nsolutions at a lower interpolation rate "
          "(see EXPERIMENTS.md, experiment E8).")


if __name__ == "__main__":
    main()
