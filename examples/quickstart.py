"""Quickstart: kriging-accelerated metric evaluation in five minutes.

The library's core object is :class:`repro.KrigingEstimator`: give it your
expensive quality-evaluation function and it answers metric queries, running
the real simulation only when a configuration has too few already-simulated
neighbours to interpolate from (the policy of Bonnot et al., DATE 2020).

This example wraps an analytic stand-in for a fixed-point simulator, streams
a cloud of word-length configurations through the estimator and reports how
many simulations kriging saved and how accurate the interpolations were.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import KrigingEstimator

SIMULATIONS_CALLED = 0


def noise_power_db(wordlengths: np.ndarray) -> float:
    """Pretend bit-accurate simulator: additive per-variable quantization noise.

    In a real flow this is the expensive part — seconds to minutes per call.
    """
    global SIMULATIONS_CALLED
    SIMULATIONS_CALLED += 1
    gains = np.array([1.0, 4.0, 0.5, 2.0])
    power = np.sum(gains * np.exp2(-2.0 * np.asarray(wordlengths, dtype=float)))
    return float(10.0 * np.log10(power))


def main() -> None:
    estimator = KrigingEstimator(
        noise_power_db,
        num_variables=4,
        distance=3,        # the paper's neighbourhood radius d
        nn_min=1,          # interpolate when more than Nn_min neighbours exist
        variogram="auto",  # identify the semi-variogram from simulated data
        min_fit_points=6,
        refit_interval=4,
    )

    rng = np.random.default_rng(0)
    queries = rng.integers(6, 14, size=(120, 4))

    errors = []
    for config in queries:
        outcome = estimator.evaluate(config)
        if outcome.interpolated and not outcome.exact_hit:
            truth = 10.0 * np.log10(
                np.sum(np.array([1.0, 4.0, 0.5, 2.0]) * np.exp2(-2.0 * config))
            )
            errors.append(abs(outcome.value - truth))

    stats = estimator.stats
    print(f"metric queries answered : {stats.n_queries}")
    print(f"real simulations run    : {SIMULATIONS_CALLED}")
    print(f"kriging interpolations  : {stats.n_interpolated}")
    print(f"interpolated fraction   : {100 * stats.interpolated_fraction:.1f}%")
    print(f"mean support size (j)   : {stats.mean_neighbors:.2f}")
    if errors:
        print(f"mean interpolation error: {np.mean(errors):.3f} dB")
        print(f"max interpolation error : {np.max(errors):.3f} dB")


if __name__ == "__main__":
    main()
