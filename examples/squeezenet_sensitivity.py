"""Error-sensitivity analysis of a SqueezeNet classifier (paper Section IV).

The paper's last benchmark: inject an error source at the output of each of
the ten layers of a SqueezeNet-style CNN and find the maximal tolerated noise
powers under a classification-rate constraint, using steepest-descent noise
budgeting.  Kriging then replaces most of the (expensive) forward-pass
evaluations.

Run with:  python examples/squeezenet_sensitivity.py          (a few minutes)
           python examples/squeezenet_sensitivity.py --small  (tens of seconds)
"""

import sys

from repro.experiments.registry import build_benchmark
from repro.experiments.replay import replay_trace
from repro.neural.squeezenet import INJECTION_POINTS


def main(scale: str) -> None:
    setup = build_benchmark("squeezenet", scale)
    grid = setup.problem

    print(f"running steepest-descent noise budgeting (scale={scale})...")
    result = setup.reference_result
    print(f"  evaluations           : {len(result.trace.unique_first_visits())}")
    print(f"  final pcl             : {result.solution_value:.3f} "
          f"(constraint >= {grid.threshold})")
    print("  tolerated noise budget (dB per layer):")
    grid_map = setup.substrate.grid  # type: ignore[union-attr]
    for name, level in zip(INJECTION_POINTS, result.solution):
        print(f"    {name:<8s}: {grid_map.power_db(level):7.1f} dB")

    print("\nreplaying the kriging policy over the recorded trajectory:")
    for d in (2, 3):
        stats = replay_trace(
            result.trace,
            benchmark="squeezenet",
            metric_kind=setup.metric_kind,
            distance=d,
        )
        print(f"  d={d}: p = {stats.p_percent:5.1f}%  "
              f"mean relative error = {100 * stats.mean_error:.2f}%  "
              f"max = {100 * stats.max_error:.2f}%")
    print("\npaper reference: d=2: p=78.3% mu=3.5%   d=3: p=89.3% mu=6.5%")


if __name__ == "__main__":
    main("small" if "--small" in sys.argv else "full")
