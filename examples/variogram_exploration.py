"""Inside the method: semi-variograms and kriging weights.

A tour of the geostatistical machinery of Section III-A on real benchmark
data: compute the empirical semi-variogram (Eq. 4) of the IIR noise-power
field, identify parametric models, and inspect how the model choice changes
kriging weights and estimates.

Run with:  python examples/variogram_exploration.py
"""

import numpy as np

from repro.core import (
    empirical_semivariogram,
    fit_variogram,
    ordinary_kriging,
    select_variogram,
)
from repro.signal import IIRBenchmark


def main() -> None:
    iir = IIRBenchmark(n_samples=512, seed=1)
    rng = np.random.default_rng(3)
    points = rng.integers(6, 15, size=(60, 5))
    points = np.unique(points, axis=0)
    values = np.array([iir.noise_power_db(p) for p in points])
    print(f"sampled {len(points)} configurations of the IIR noise-power field")

    emp = empirical_semivariogram(points, values, metric="l1")
    print("\nempirical semi-variogram (Eq. 4):")
    print("  lag   gamma      pairs")
    for lag, gamma, count in zip(emp.lags[:10], emp.gammas[:10], emp.counts[:10]):
        print(f"  {lag:4.0f}  {gamma:9.2f}  {count:5d}")

    print("\nmodel identification (weighted least squares):")
    for kind in ("linear", "spherical", "exponential", "gaussian", "power"):
        fit = fit_variogram(emp, kind)
        print(f"  {kind:<12s} weighted SSE = {fit.weighted_sse:12.1f}")
    best = select_variogram(emp)
    print(f"  selected: {best.kind}")

    query = np.array([10, 10, 10, 10, 10])
    support = np.argsort(np.abs(points - query).sum(axis=1))[:6]
    truth = iir.noise_power_db(query)
    print(f"\nkriging {query.tolist()} from its 6 closest sampled neighbours "
          f"(truth {truth:.2f} dB):")
    for kind in ("linear", "gaussian"):
        fit = fit_variogram(emp, kind)
        res = ordinary_kriging(points[support], values[support], query, fit.model)
        weights = ", ".join(f"{w:+.2f}" for w in res.weights)
        print(f"  {kind:<9s}: estimate {res.estimate:7.2f} dB  "
              f"(error {abs(res.estimate - truth):4.2f} dB, "
              f"variance {res.variance:7.2f})  weights [{weights}]")


if __name__ == "__main__":
    main()
