"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml`` (PEP 621): package discovery under
``src/``, the numpy dependency, the ``dev`` extra used by CI and the ruff
configuration.  This file only keeps ``python setup.py ...`` invocations and
old tooling working; ``pip install -e .`` goes through the pyproject build
backend.
"""

from setuptools import setup

setup()
