"""Kriging-based error evaluation for approximate computing systems.

Reproduction of Bonnot, Menard, Desnos — *Fast Kriging-based Error
Evaluation for Approximate Computing Systems*, DATE 2020.

Public API overview
-------------------

Core method (paper Section III):

* :class:`~repro.core.estimator.KrigingEstimator` — the
  interpolate-or-simulate metric evaluator;
* :func:`~repro.core.kriging.ordinary_kriging` /
  :func:`~repro.core.kriging.simple_kriging` — the interpolators (Eqs. 7-10);
* :func:`~repro.core.variogram.empirical_semivariogram` (Eq. 4) and the
  variogram models/fitting in :mod:`repro.core.models` /
  :mod:`repro.core.fitting`.

Optimization algorithms (Section III-B):

* :class:`~repro.optimization.minplusone.MinPlusOneOptimizer` — Algorithms
  1-2 (``min+1 bit`` word-length optimization);
* :class:`~repro.optimization.descent.NoiseBudgetingDescent` — the
  sensitivity-analysis greedy descent;
* :class:`~repro.optimization.problem.DSEProblem` and
  :class:`~repro.optimization.problem.MetricSense` — the Eq. 1 problem.

Benchmarks (Section IV): :mod:`repro.signal` (FIR/IIR/FFT),
:mod:`repro.video` (HEVC motion compensation), :mod:`repro.neural`
(SqueezeNet sensitivity), all built on :mod:`repro.fixedpoint`.

Experiments: :mod:`repro.experiments` regenerates Table I, Figure 1, the
timing projections and the decision-divergence measurement.
"""

from repro.core.estimator import EstimationOutcome, KrigingEstimator
from repro.core.kriging import KrigingResult, ordinary_kriging, simple_kriging
from repro.core.variogram import EmpiricalVariogram, empirical_semivariogram
from repro.optimization.descent import NoiseBudgetingDescent
from repro.optimization.minplusone import MinPlusOneOptimizer
from repro.optimization.problem import DSEProblem, MetricSense

__version__ = "1.0.0"

__all__ = [
    "KrigingEstimator",
    "EstimationOutcome",
    "ordinary_kriging",
    "simple_kriging",
    "KrigingResult",
    "empirical_semivariogram",
    "EmpiricalVariogram",
    "DSEProblem",
    "MetricSense",
    "MinPlusOneOptimizer",
    "NoiseBudgetingDescent",
    "__version__",
]
