"""Baselines the paper compares against (Section II, related works).

* :mod:`~repro.baselines.axis_interpolation` — Sedano et al. [18]-style 1-D
  interpolation: each variable's metric contribution is interpolated along
  its own axis only (the "first step of the considered heuristic"), so only
  configurations on a previously sampled axis line can be estimated;
* :mod:`~repro.baselines.analytical` — the classical analytical
  noise-power model (uniform-quantization noise, unit-gain propagation),
  representing the "analytical approaches" of the related work: instant but
  structurally biased on real data paths.
"""

from repro.baselines.analytical import AnalyticalNoiseModel
from repro.baselines.axis_interpolation import AxisInterpolationEstimator

__all__ = ["AxisInterpolationEstimator", "AnalyticalNoiseModel"]
