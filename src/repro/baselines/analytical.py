"""Analytical noise-power baseline (Section II, "analytical approaches").

The classical closed-form model for fixed-point noise: every quantization
node ``i`` contributes ``k_i * q_i^2 / 12`` of output noise power, where
``q_i = 2^(-frac_bits_i(w_i))`` is the node's step and ``k_i`` an effective
noise gain (number of roundings times the path power gain).  The gains can
be supplied from first principles or calibrated from a handful of
simulations.

The model is instantaneous to evaluate but structurally biased on real data
paths (correlated errors, saturation, exact-alignment effects), which is
exactly why the paper pursues simulation + kriging instead.  It serves here
as the analytical comparator in the baseline benches.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise import power_to_db
from repro.utils.validation import check_integer_vector

__all__ = ["AnalyticalNoiseModel"]


class AnalyticalNoiseModel:
    """Closed-form additive quantization-noise model.

    Parameters
    ----------
    integer_bits:
        Per-node integer bits (step ``q_i = 2^(integer_bits_i + 1 - w_i)``
        for signed nodes).
    gains:
        Per-node effective noise gains ``k_i``; defaults to 1.
    signed:
        Whether nodes carry a sign bit.
    """

    def __init__(
        self,
        integer_bits: object,
        *,
        gains: object | None = None,
        signed: bool = True,
    ) -> None:
        self.integer_bits = check_integer_vector("integer_bits", integer_bits)
        n = self.integer_bits.size
        if gains is None:
            self.gains = np.ones(n)
        else:
            self.gains = np.asarray(gains, dtype=np.float64)
            if self.gains.shape != (n,):
                raise ValueError(f"gains must have shape ({n},), got {self.gains.shape}")
            if np.any(self.gains < 0):
                raise ValueError("gains must be non-negative")
        self.signed = signed

    @property
    def num_variables(self) -> int:
        """Number of modelled quantization nodes."""
        return self.integer_bits.size

    def steps(self, word_lengths: object) -> np.ndarray:
        """Quantization steps ``q_i`` for a word-length vector."""
        w = check_integer_vector("word_lengths", word_lengths, minimum=1)
        if w.size != self.num_variables:
            raise ValueError(
                f"expected {self.num_variables} word-lengths, got {w.size}"
            )
        frac = w - int(self.signed) - self.integer_bits
        return np.exp2(-frac.astype(np.float64))

    def noise_power(self, word_lengths: object) -> float:
        """Predicted output noise power (linear scale)."""
        q = self.steps(word_lengths)
        return float(np.sum(self.gains * q * q / 12.0))

    def noise_power_db(self, word_lengths: object) -> float:
        """Predicted output noise power in dB."""
        return power_to_db(self.noise_power(word_lengths))

    def calibrate(self, configurations: object, measured_powers: object) -> "AnalyticalNoiseModel":
        """Fit the gains to measured noise powers (non-negative least squares).

        Parameters
        ----------
        configurations:
            ``(m, Nv)`` word-length vectors that were simulated.
        measured_powers:
            Linear-scale measured noise powers, length ``m``.

        Returns
        -------
        AnalyticalNoiseModel
            A new model with calibrated gains.
        """
        configs = np.asarray(configurations, dtype=np.int64)
        powers = np.asarray(measured_powers, dtype=np.float64)
        if configs.ndim != 2 or configs.shape[1] != self.num_variables:
            raise ValueError(
                f"configurations must be (m, {self.num_variables}), got {configs.shape}"
            )
        if powers.shape != (configs.shape[0],):
            raise ValueError("measured_powers length mismatch")
        design = np.stack([self.steps(c) ** 2 / 12.0 for c in configs])
        from scipy.optimize import nnls

        gains, _ = nnls(design, powers)
        return AnalyticalNoiseModel(
            self.integer_bits, gains=gains, signed=self.signed
        )
