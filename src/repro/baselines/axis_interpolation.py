"""Per-axis 1-D interpolation baseline (after Sedano et al., paper ref. [18]).

The competing interpolation method discussed in Section II: "Interpolation
is only used during the first step of the considered heuristic for which
only the contribution of a single variable on the metric is considered.
This approach does not consider a Nv-dimension hypercube."

The baseline therefore keeps, per variable, the metric samples observed
along that variable's axis (all other variables equal to the query's), and
answers a query by 1-D piecewise-linear interpolation *only* when the query
lies on an axis line with at least two bracketing samples.  Off-axis
queries — the bulk of a greedy trajectory once several variables move —
cannot be estimated, which is precisely the limitation kriging removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["AxisInterpolationEstimator", "AxisEstimateOutcome"]

SimulateFn = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class AxisEstimateOutcome:
    """Result of one query to the axis-interpolation baseline."""

    value: float
    interpolated: bool
    axis: int | None = None
    exact_hit: bool = False


@dataclass
class AxisInterpolationStats:
    """Counters mirroring :class:`repro.core.estimator.EstimatorStats`."""

    n_simulated: int = 0
    n_interpolated: int = 0
    n_exact_hits: int = 0

    @property
    def n_queries(self) -> int:
        """Total queries answered."""
        return self.n_simulated + self.n_interpolated + self.n_exact_hits

    @property
    def interpolated_fraction(self) -> float:
        """Share of queries answered without a fresh simulation."""
        total = self.n_queries
        if total == 0:
            return 0.0
        return (self.n_interpolated + self.n_exact_hits) / total


class AxisInterpolationEstimator:
    """Simulate-or-interpolate policy restricted to single-axis lines.

    Parameters
    ----------
    simulate:
        The expensive metric evaluation.
    num_variables:
        Configuration dimension ``Nv``.
    require_bracketing:
        When true (default), interpolation needs samples on *both* sides of
        the query along the axis (pure interpolation); otherwise two samples
        on one side allow linear extrapolation.
    """

    def __init__(
        self,
        simulate: SimulateFn,
        num_variables: int,
        *,
        require_bracketing: bool = True,
    ) -> None:
        if num_variables < 1:
            raise ValueError(f"num_variables must be >= 1, got {num_variables}")
        self._simulate = simulate
        self.num_variables = num_variables
        self.require_bracketing = require_bracketing
        self.stats = AxisInterpolationStats()
        self._samples: dict[tuple[int, ...], float] = {}

    @staticmethod
    def _key(config: np.ndarray) -> tuple[int, ...]:
        return tuple(int(round(float(x))) for x in config)

    def _axis_candidates(self, config: np.ndarray) -> tuple[int, list[tuple[int, float]]] | None:
        """Find an axis along which stored samples differ from ``config`` only
        in that coordinate, returning ``(axis, [(coord, value), ...])``."""
        key = self._key(config)
        best: tuple[int, list[tuple[int, float]]] | None = None
        for axis in range(self.num_variables):
            line: list[tuple[int, float]] = []
            for sample_key, value in self._samples.items():
                if all(
                    sample_key[i] == key[i] for i in range(self.num_variables) if i != axis
                ):
                    line.append((sample_key[axis], value))
            if len(line) >= 2 and (best is None or len(line) > len(best[1])):
                best = (axis, sorted(line))
        return best

    def evaluate(self, configuration: object) -> AxisEstimateOutcome:
        """Answer a metric query, interpolating along an axis when possible."""
        config = np.asarray(configuration, dtype=np.float64)
        if config.shape != (self.num_variables,):
            raise ValueError(
                f"configuration must have shape ({self.num_variables},), got {config.shape}"
            )
        key = self._key(config)
        if key in self._samples:
            self.stats.n_exact_hits += 1
            return AxisEstimateOutcome(
                value=self._samples[key], interpolated=True, exact_hit=True
            )

        candidate = self._axis_candidates(config)
        if candidate is not None:
            axis, line = candidate
            coords = np.array([c for c, _ in line], dtype=float)
            values = np.array([v for _, v in line], dtype=float)
            x = float(key[axis])
            bracketed = coords.min() <= x <= coords.max()
            if bracketed or not self.require_bracketing:
                if bracketed:
                    estimate = float(np.interp(x, coords, values))
                else:
                    # Linear extrapolation from the two closest samples.
                    order = np.argsort(np.abs(coords - x))[:2]
                    (x0, x1), (y0, y1) = coords[order], values[order]
                    slope = (y1 - y0) / (x1 - x0) if x1 != x0 else 0.0
                    estimate = float(y0 + slope * (x - x0))
                self.stats.n_interpolated += 1
                return AxisEstimateOutcome(value=estimate, interpolated=True, axis=axis)

        value = float(self._simulate(config))
        self._samples[key] = value
        self.stats.n_simulated += 1
        return AxisEstimateOutcome(value=value, interpolated=False)
