"""``repro.bench`` — the load/latency harness behind every benchmark.

Layers (one module each):

* :mod:`repro.bench.spec` — declarative workload specs (seeds, warmup,
  open/closed-loop load, fault schedules).
* :mod:`repro.bench.runner` — monotonic-clock measurement, per-request
  sample logs, P²-backed streaming latency tails, best-of-N orchestration.
* :mod:`repro.bench.report` / :mod:`repro.bench.provenance` — the
  versioned report schema and dated ``experiments/<name>-<date>/`` dirs.
* :mod:`repro.bench.gates` — declarative per-metric regression gates.
* :mod:`repro.bench.history` — versioned trend history with a back-compat
  reader.
* :mod:`repro.bench.registry` — every runnable workload as data; the CI
  gate matrix is generated from it.

Workload implementations live under :mod:`repro.bench.workloads`; the
``benchmarks/bench_*.py`` scripts are thin shims over them.
"""

from repro.bench.gates import (
    GATE_SETS,
    KNOWN_BENCHMARKS,
    MalformedReport,
    compare,
    evaluate,
)
from repro.bench.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    history_entry,
    read_history,
)
from repro.bench.registry import REGISTRY, BenchmarkDef, RunResult, listing
from repro.bench.report import REPORT_SCHEMA_VERSION, finalize_report, write_report
from repro.bench.runner import LatencyStats, SampleLog, best_of, latency_summary, measure
from repro.bench.spec import FaultScheduleSpec, LoadSpec, WorkloadSpec

__all__ = [
    "GATE_SETS",
    "KNOWN_BENCHMARKS",
    "MalformedReport",
    "compare",
    "evaluate",
    "HISTORY_SCHEMA_VERSION",
    "append_history",
    "history_entry",
    "read_history",
    "REGISTRY",
    "BenchmarkDef",
    "RunResult",
    "listing",
    "REPORT_SCHEMA_VERSION",
    "finalize_report",
    "write_report",
    "LatencyStats",
    "SampleLog",
    "best_of",
    "latency_summary",
    "measure",
    "FaultScheduleSpec",
    "LoadSpec",
    "WorkloadSpec",
]
