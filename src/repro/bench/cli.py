"""``python -m repro bench``: the one entry point for every benchmark.

Two-stage parsing: the harness flags (``--list``, ``--quick``,
``--output``, ``--experiment-root``, ``--date``) are parsed first, then
the selected workload's own ``add_arguments`` hook (``--connect``,
``--seeds``, ...) gets the leftovers — so the registry stays the single
source of truth and workload flags never leak into the shared parser.

``--list`` prints the registry as single-line JSON (``--gated`` for the
CI-gate subset): the GitHub Actions ``bench-gate`` matrix is generated
from exactly this output.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.bench import registry
from repro.bench.provenance import experiment_dir, write_experiment
from repro.bench.report import write_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run a registered benchmark through the load/latency harness",
    )
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registry entry to run (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_benchmarks",
        help="print the registry as single-line JSON and exit",
    )
    parser.add_argument(
        "--gated",
        action="store_true",
        help="with --list: only entries gated in CI (the bench-gate matrix)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: apply the workload spec's quick overrides",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="report destination (default: BENCH_<kind>.json in the cwd)",
    )
    parser.add_argument(
        "--experiment-root",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="also write a dated experiments/<name>-<date>/ provenance dir "
        "(config + raw samples + report) under DIR",
    )
    parser.add_argument(
        "--date",
        default=None,
        metavar="YYYY-MM-DD",
        help="experiment-dir date stamp (default: today, UTC)",
    )
    return parser


def _default_output(definition: registry.BenchmarkDef) -> pathlib.Path:
    if definition.gated:
        return pathlib.Path(f"BENCH_{definition.kind}.json")
    return pathlib.Path(f"BENCH_{definition.name.replace('-', '_')}.json")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args, extra = parser.parse_known_args(argv)

    if args.list_benchmarks:
        if extra:
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
        print(registry.listing_json(gated_only=args.gated))
        return 0

    if not args.name:
        parser.error("benchmark name required (or --list)")
    try:
        definition = registry.get(args.name)
    except KeyError as exc:
        parser.error(exc.args[0])
    module = definition.load()

    if hasattr(module, "add_arguments"):
        workload_parser = argparse.ArgumentParser(
            prog=f"repro bench {args.name}", add_help=False
        )
        module.add_arguments(workload_parser)
        workload_parser.parse_args(extra, namespace=args)
    elif extra:
        parser.error(f"unrecognized arguments: {' '.join(extra)}")

    result = module.run(args.name, args)

    output = args.output or _default_output(definition)
    write_report(result.report, output)
    print("written:", output)

    if args.experiment_root is not None:
        directory = experiment_dir(args.experiment_root, args.name, date=args.date)
        write_experiment(
            directory,
            report=result.report,
            config=result.config,
            samples=result.samples,
            slow_traces=getattr(result, "slow_traces", ()),
        )
        print("experiment:", directory)

    passed = result.report.get("acceptance", {}).get("passed", True)
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
