"""Declarative regression gates: per-metric specs instead of bespoke code.

``check_regression.py`` used to hard-code one ``_compare_*`` function per
report kind.  Here each kind declares a tuple of gate *specs* instead —
small frozen dataclasses, one per gating idiom:

:class:`RowRatchetGate`
    Speedup ratios gated per row of a list section (``results`` keyed by
    ``n_support``); rows the current run skipped (quick mode) are ignored.
:class:`SectionRatchetGate`
    Ratios inside an optional section — gated only when the section exists
    in *both* reports (older baselines predate it).
:class:`TopRatchetGate`
    A top-level ratio: skipped when absent from the baseline, a loud
    failure when the current run silently drops it.
:class:`GuardedRatchetGate`
    A throughput ratio that is only meaningful on multi-core hardware —
    recorded with a printed note on small boxes, gated (optionally against
    an absolute floor) when the cpu guard passes.
:class:`FlagGate`
    A boolean correctness flag that must be true (optionally only when the
    baseline has the owning section — snapshot determinism).
:class:`ValueGate`
    A field that must equal an exact value (``failover.sessions_lost == 0``).
:class:`ScenarioInvariantsGate`
    Every invariant of every chaos scenario must hold and no scenario may
    report unexpected errors; an empty scenario map fails.
:class:`CoverageGate`
    Seed coverage must not shrink below the baseline's.

The vocabulary reproduces the old comparators' verdicts (and message
formats) exactly, with one deliberate strictness upgrade: a matched row
or section that *drops* a gated field now fails loudly instead of raising
an uncaught ``KeyError``.

Exit status contract (:func:`main`): 0 pass, 1 regression, 2 malformed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = [
    "CLUSTER_MIN_CPUS",
    "CLUSTER_SPEEDUP_FLOOR",
    "KNOWN_BENCHMARKS",
    "MalformedReport",
    "GateResult",
    "RowRatchetGate",
    "SectionRatchetGate",
    "TopRatchetGate",
    "GuardedRatchetGate",
    "FlagGate",
    "ValueGate",
    "ScenarioInvariantsGate",
    "CoverageGate",
    "GATE_SETS",
    "evaluate",
    "compare",
    "main",
]

#: The aggregate-throughput floor and ratio gates apply only on machines
#: with at least this many CPUs: two workers cannot outrun one on a single
#: core, and the committed baseline may come from such a box.
CLUSTER_MIN_CPUS = 4
CLUSTER_SPEEDUP_FLOOR = 1.5

#: Absolute floors for the zero-copy solve-path ratios (multi-core-guarded
#: like the cluster floor: a single-core box records them with a note).
SHM_SPEEDUP_FLOOR = 1.3
STACKED_SPEEDUP_FLOOR = 1.2

#: Report kinds the gate understands.
KNOWN_BENCHMARKS = ("query_engine", "solve", "service", "cluster", "chaos")


class MalformedReport(Exception):
    """A benchmark report that cannot be read or parsed (exit status 2)."""


@dataclass
class GateResult:
    """Accumulated gate output: failure messages plus ungated-metric notes."""

    failures: list[str]
    notes: list[str]

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def note(self, message: str) -> None:
        self.notes.append(message)


def _cpus(report: Mapping) -> int:
    return (report.get("hardware") or {}).get("cpus", 0)


def _ratchet_message(
    label: str, current: float, bound: float, baseline: float, factor: float
) -> str:
    return (
        f"{label}: {current:.2f} < {bound:.2f} "
        f"(baseline {baseline:.2f} / {factor:g})"
    )


@dataclass(frozen=True)
class RowRatchetGate:
    """Ratchet ``fields`` per row of ``section``, rows keyed by ``row_key``.

    Baseline rows drive the comparison; a baseline row with no matching
    current row is skipped (quick mode runs a subset of the sizes).
    """

    fields: tuple[str, ...]
    section: str = "results"
    row_key: str = "n_support"

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        current_rows = {
            row[self.row_key]: row for row in current.get(self.section, [])
        }
        for base_row in baseline.get(self.section, []):
            key = base_row[self.row_key]
            cur_row = current_rows.get(key)
            if cur_row is None:
                continue
            label_prefix = f"{self.section}[{self.row_key}={key}]"
            for field in self.fields:
                if field not in base_row:
                    continue
                if field not in cur_row:
                    out.fail(f"{label_prefix}.{field}: missing from the current report")
                    continue
                bound = base_row[field] / factor
                if cur_row[field] < bound:
                    out.fail(
                        _ratchet_message(
                            f"{label_prefix}.{field}",
                            cur_row[field], bound, base_row[field], factor,
                        )
                    )


@dataclass(frozen=True)
class SectionRatchetGate:
    """Ratchet ``fields`` inside ``section`` when both reports carry it."""

    section: str
    fields: tuple[str, ...]

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        base_section = baseline.get(self.section)
        cur_section = current.get(self.section)
        if not (base_section and cur_section):
            return  # older baselines predate the section
        for field in self.fields:
            if field not in base_section:
                continue
            if field not in cur_section:
                out.fail(f"{self.section}.{field}: missing from the current report")
                continue
            bound = base_section[field] / factor
            if cur_section[field] < bound:
                out.fail(
                    _ratchet_message(
                        f"{self.section}.{field}",
                        cur_section[field], bound, base_section[field], factor,
                    )
                )


@dataclass(frozen=True)
class TopRatchetGate:
    """Ratchet a top-level ratio; dropping it from the current run fails."""

    field: str

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        if self.field not in baseline:
            return  # older baselines predate the field
        if self.field not in current:
            # A current run silently dropping a gated ratio must fail
            # loudly, not turn the gate vacuously green.
            out.fail(f"{self.field}: missing from the current report")
            return
        bound = baseline[self.field] / factor
        if current[self.field] < bound:
            out.fail(
                _ratchet_message(
                    self.field, current[self.field], bound, baseline[self.field], factor
                )
            )


@dataclass(frozen=True)
class GuardedRatchetGate:
    """A cpu-guarded throughput ratchet with an optional absolute floor.

    ``guard="current"``: gate when the current box has ``min_cpus``; the
    baseline additionally ratchets the floor only when it too came from a
    ``min_cpus`` box (a single-core baseline would only weaken the floor).
    ``guard="both"``: gate only when *both* reports come from ``min_cpus``
    boxes (pure ratchet, no floor).  Under a failed guard the metric is
    recorded with a note, never gated.  Missing from the current report is
    always a failure.

    ``section`` scopes the field inside a sub-dict of the report (the
    solve-path ratios live in their sections).  A section the current run
    marked ``{"skipped": true}`` — e.g. shared memory unavailable on the
    platform — is noted, never gated.
    """

    field: str
    floor: float | None = None
    min_cpus: int = CLUSTER_MIN_CPUS
    guard: str = "current"
    section: str | None = None

    def _container(self, report: dict) -> dict:
        if self.section is None:
            return report
        container = report.get(self.section)
        return container if isinstance(container, dict) else {}

    @property
    def _label(self) -> str:
        return f"{self.section}.{self.field}" if self.section else self.field

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        cur = self._container(current)
        base = self._container(baseline)
        if cur.get("skipped"):
            out.note(
                f"note: {self._label} skipped by the current run "
                f"({cur.get('reason', 'unavailable on this platform')})"
            )
            return
        if self.field not in cur:
            out.fail(f"{self._label}: missing from the current report")
            return
        if base.get("skipped"):
            base = {}
        cpus = _cpus(current)
        baseline_cpus = _cpus(baseline)
        if self.guard == "both":
            if cpus < self.min_cpus or baseline_cpus < self.min_cpus:
                out.note(
                    f"note: {self._label} = {cur[self.field]:.2f} recorded "
                    f"but not gated ({cpus} cpu here, {baseline_cpus} in "
                    f"baseline; need {self.min_cpus}+ on both)"
                )
                return
            if self.field in base:
                bound = base[self.field] / factor
                if cur[self.field] < bound:
                    out.fail(
                        _ratchet_message(
                            self._label,
                            cur[self.field], bound, base[self.field], factor,
                        )
                    )
            return
        if cpus < self.min_cpus:
            out.note(
                f"note: {self._label} = {cur[self.field]:.2f} recorded "
                f"but not gated ({cpus} cpu < {self.min_cpus}: one core "
                f"cannot scale out)"
            )
            return
        bound = self.floor if self.floor is not None else 0.0
        if baseline_cpus >= self.min_cpus and self.field in base:
            bound = max(bound, base[self.field] / factor)
        if cur[self.field] < bound:
            out.fail(
                f"{self._label}: {cur[self.field]:.2f} < {bound:.2f} "
                f"(floor {self.floor:g}, baseline "
                f"{base.get(self.field, 'n/a')} / {factor:g})"
            )


@dataclass(frozen=True)
class FlagGate:
    """A boolean flag that must be true.

    ``path`` is ``(section, flag)`` or just ``(flag,)`` for a top-level
    flag.  A missing section fails with ``missing_message``; a false or
    missing flag fails with ``message``.  ``when_baseline_has`` makes the
    whole gate conditional on a key being present in the baseline.
    """

    path: tuple[str, ...]
    message: str
    when_baseline_has: str | None = None

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        if self.when_baseline_has is not None and self.when_baseline_has not in baseline:
            return
        if len(self.path) == 1:
            if not current.get(self.path[0], False):
                out.fail(self.message)
            return
        section_name, flag = self.path
        section = current.get(section_name)
        if section is None:
            out.fail(f"{section_name}: section missing from the current report")
            return
        if not section.get(flag, False):
            out.fail(self.message)


@dataclass(frozen=True)
class ValueGate:
    """``section.field`` must equal ``expect`` exactly (missing fails)."""

    path: tuple[str, str]
    expect: object

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        section_name, field = self.path
        section = current.get(section_name)
        if section is None:
            out.fail(f"{section_name}: section missing from the current report")
            return
        value = section.get(field)
        if value != self.expect:
            out.fail(f"{section_name}.{field}: {value!r} != {self.expect!r}")


@dataclass(frozen=True)
class ScenarioInvariantsGate:
    """Every chaos scenario's invariants must hold; no unexpected errors."""

    section: str = "scenarios"

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        scenarios = current.get(self.section) or {}
        if not scenarios:
            out.fail(f"{self.section}: no per-seed drills in the current report")
        for name, row in sorted(scenarios.items()):
            for invariant, held in sorted((row.get("invariants") or {}).items()):
                if not held:
                    out.fail(
                        f"{self.section}.{name}.invariants.{invariant}: violated"
                    )
            for message in row.get("unexpected_errors") or []:
                out.fail(f"{self.section}.{name}: unexpected error: {message}")


@dataclass(frozen=True)
class CoverageGate:
    """``section.field`` must not shrink below the baseline's value."""

    path: tuple[str, str] = ("acceptance", "seeds_run")
    baseline_default: int = 3

    def apply(self, baseline: dict, current: dict, factor: float, out: GateResult) -> None:
        section_name, field = self.path
        run = (current.get(section_name) or {}).get(field, 0)
        base = (baseline.get(section_name) or {}).get(field, self.baseline_default)
        if run < base:
            out.fail(
                f"{section_name}.{field}: {run} < {base} (baseline coverage)"
            )


#: Speedup fields gated per support-size row of ``results``.
ROW_FIELDS = ("speedup_evaluate_vs_seed", "speedup_batch_vs_seed")
#: Speedup fields gated in the ``l2_index`` section.
L2_FIELDS = ("speedup_kdtree_vs_brute",)
#: Speedup fields gated in the ``reuse`` (factorization cache) section.
REUSE_FIELDS = ("speedup_reuse_vs_fresh",)
# The ``parallel`` section is recorded but not gated: thread scaling depends
# on the runner's core count (a single-core runner honestly reports ~1x).

#: The zero-copy solve-path gates, shared by the ``solve`` workload and the
#: matching sections embedded in the query-engine report: process dispatch
#: through the shm arena vs pickled group arrays, and stacked batched
#: factorization vs per-group solves.  Multi-core-guarded: a single-core
#: box cannot overlap worker processes, so the ratios are noted, not gated.
SOLVE_RATIO_GATES = (
    GuardedRatchetGate(
        "speedup_shm_vs_pickled", floor=SHM_SPEEDUP_FLOOR, section="shm"
    ),
    GuardedRatchetGate(
        "speedup_stacked_vs_pergroup",
        floor=STACKED_SPEEDUP_FLOOR,
        section="stacked",
    ),
)

#: Gate specs per report kind — the whole regression policy, as data.
GATE_SETS: dict[str, tuple] = {
    "query_engine": (
        RowRatchetGate(fields=ROW_FIELDS),
        SectionRatchetGate("l2_index", L2_FIELDS),
        SectionRatchetGate("reuse", REUSE_FIELDS),
    )
    + SOLVE_RATIO_GATES,
    "solve": SOLVE_RATIO_GATES
    + (
        # Correctness on any hardware: a warm restore that refactorizes is
        # a broken factor-cache snapshot, whatever the core count.
        ValueGate(path=("warm_restore", "warm_fresh_factorizations"), expect=0),
        SectionRatchetGate("warm_restore", ("speedup_warm_vs_cold",)),
    ),
    "service": (
        # The batched-vs-unbatched ratio is recorded but not gated (like
        # thread scaling, it depends on the runner's core count).
        TopRatchetGate("speedup_batched_vs_sequential"),
        FlagGate(
            path=("snapshot", "roundtrip_bitwise"),
            message="snapshot.roundtrip_bitwise: snapshot/restore diverged",
            when_baseline_has="snapshot",
        ),
    ),
    "cluster": (
        # Correctness flags gate unconditionally — a migration that changes
        # a byte or a failover that loses a session is a bug on any hardware.
        FlagGate(
            path=("migration", "bitwise_preserved"),
            message=(
                "migration.bitwise_preserved: migrated snapshot diverged "
                "byte-for-byte"
            ),
        ),
        ValueGate(path=("failover", "sessions_lost"), expect=0),
        FlagGate(
            path=("failover", "all_sessions_answer"),
            message="failover.all_sessions_answer: a session stopped answering",
        ),
        FlagGate(
            path=("equivalence_ok",),
            message="equivalence_ok: cluster diverged from the local estimator",
        ),
        GuardedRatchetGate(
            "speedup_cluster_vs_single",
            floor=CLUSTER_SPEEDUP_FLOOR,
            guard="current",
        ),
    ),
    "chaos": (
        ScenarioInvariantsGate(),
        CoverageGate(),
        GuardedRatchetGate("qps_under_chaos", guard="both"),
    ),
}


def evaluate(baseline: dict, current: dict, factor: float) -> GateResult:
    """Run the gate set for the baseline's report kind; return the result."""
    kind = baseline.get("benchmark")
    gates = GATE_SETS.get(kind, GATE_SETS["query_engine"])
    out = GateResult(failures=[], notes=[])
    for gate in gates:
        gate.apply(baseline, current, factor, out)
    # Two gates probing the same missing section would repeat themselves;
    # keep first occurrences in order.
    out.failures = list(dict.fromkeys(out.failures))
    return out


def compare(baseline: dict, current: dict, factor: float) -> list[str]:
    """Return one message per regressed metric (empty list: gate passes).

    Ungated-metric notes (cpu guards) are printed, matching the historical
    ``check_regression.compare`` contract.
    """
    result = evaluate(baseline, current, factor)
    for note in result.notes:
        print(note)
    return result.failures


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MalformedReport(f"cannot read benchmark report {path}: {exc}") from exc


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: gate ``current`` against ``baseline``, optionally log history."""
    from repro.bench import history as history_mod

    parser = argparse.ArgumentParser(
        description="Compare a fresh benchmark run against its committed baseline."
    )
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("current", type=pathlib.Path, help="fresh benchmark JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated slowdown of any speedup ratio (default 2.0)",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=None,
        help="append a machine-tagged absolute-timings line to this JSONL file",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit SHA recorded in the history line (e.g. $GITHUB_SHA)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        parser.error(f"--factor must be > 1, got {args.factor}")

    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except MalformedReport as exc:
        print(f"error: {exc}")
        return 2
    kind = baseline.get("benchmark")
    if kind not in KNOWN_BENCHMARKS:
        print(f"error: baseline benchmark {kind!r} not one of {KNOWN_BENCHMARKS}")
        return 2
    for name, report in (("baseline", baseline), ("current", current)):
        if report.get("benchmark") != kind or (
            kind == "query_engine" and "results" not in report
        ):
            print(f"error: {name} is not a {kind} benchmark report")
            return 2

    if args.history is not None:
        entry = history_mod.append_history(args.history, current, args.commit)
        print(
            f"history: appended {len(entry['absolute_seconds'])} timings "
            f"to {args.history}"
        )

    failures = compare(baseline, current, args.factor)
    if failures:
        print(f"benchmark regression vs {args.baseline}:")
        for message in failures:
            print(f"  {message}")
        return 1
    print(f"benchmark smoke OK (no ratio below baseline/{args.factor:g})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
