"""Trend history: one machine-tagged JSONL line per benchmark run.

The gate only ever decides on ratios, but each run also appends its
absolute timings here so per-commit trends stay plottable.  Entries are
versioned:

* ``schema_version`` 2 (current, :data:`HISTORY_SCHEMA_VERSION`): carries
  ``seed`` (copied from the report) uniformly across all report kinds.
* version 1 (legacy): no ``schema_version`` field at all, and service/
  cluster entries omitted the seed.  :func:`read_history` upgrades them in
  memory — ``schema_version`` defaults to 1, ``seed`` to ``None`` — so
  consumers can iterate one shape.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Iterator

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "history_entry",
    "append_history",
    "read_history",
]

HISTORY_SCHEMA_VERSION = 2


def _machine_tag() -> dict:
    """Identify the box a run happened on, so history lines are comparable
    only within the same hardware."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
    }


def history_entry(report: dict, commit: str | None = None) -> dict:
    """One ``BENCH_history.jsonl`` line: absolute seconds plus ratios."""
    absolute: dict[str, float] = {}
    ratios: dict[str, float] = {}
    for row in report.get("results", []):
        prefix = f"n{row['n_support']}"
        for field, value in row.items():
            if field.endswith("_seconds"):
                absolute[f"{prefix}.{field}"] = value
            elif field.startswith("speedup_"):
                ratios[f"{prefix}.{field}"] = value
    # The cluster drills contribute their absolute timings too
    # (migration.migrate_seconds, failover.detect_seconds).
    for section in ("l2_index", "parallel", "reuse", "migration", "failover"):
        data = report.get(section)
        if not data:
            continue
        for field, value in data.items():
            if field.endswith("_seconds"):
                absolute[f"{section}.{field}"] = value
            elif field.startswith("speedup_"):
                ratios[f"{section}.{field}"] = value
    # Service/chaos reports: per-scenario wall clock / throughput / latency
    # percentiles, plus the top-level cross-scenario ratios.
    for name, data in (report.get("scenarios") or {}).items():
        for field, value in data.items():
            if field == "seconds" or field.endswith("_seconds") or field == "qps":
                absolute[f"scenarios.{name}.{field}"] = value
            elif field == "latency_ms" and isinstance(value, dict):
                for percentile, latency in value.items():
                    absolute[f"scenarios.{name}.latency_ms.{percentile}"] = latency
    for field, value in report.items():
        if field.startswith("speedup_"):
            ratios[field] = value
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": commit,
        "benchmark": report.get("benchmark"),
        "seed": report.get("seed"),
        "machine": _machine_tag(),
        "absolute_seconds": absolute,
        "ratios": ratios,
    }


def append_history(
    path: pathlib.Path, report: dict, commit: str | None = None
) -> dict:
    """Append this run's :func:`history_entry` to ``path`` (created if
    missing); returns the appended entry."""
    entry = history_entry(report, commit)
    path = pathlib.Path(path)
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def read_history(path: pathlib.Path) -> Iterator[dict]:
    """Yield history entries, upgrading legacy lines to the current shape.

    Version-1 lines (pre-harness) carried no ``schema_version`` and no
    ``seed``; both are filled in (1 and ``None``) so every yielded entry
    has the same keys.  Blank lines are skipped; a malformed line raises
    ``json.JSONDecodeError`` with its line number.
    """
    path = pathlib.Path(path)
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise json.JSONDecodeError(
                    f"{path}:{lineno}: {exc.msg}", exc.doc, exc.pos
                ) from exc
            entry.setdefault("schema_version", 1)
            entry.setdefault("seed", None)
            yield entry
