"""Dated experiment directories: ``experiments/<name>-<date>/``.

A provenance dir captures everything needed to reread or replay a run:

``config.json``
    The resolved :class:`~repro.bench.spec.WorkloadSpec` plus the exact
    invocation (quick flag, extra CLI arguments).
``report.json``
    The finalized versioned report (the same bytes as ``--output``).
``samples.jsonl``
    Raw per-request samples from the runner's :class:`SampleLog`, one JSON
    object per line — the data behind the summarized percentiles.
``slow_traces.json``
    Slow traces the serving stack captured during the run (whole span
    trees above the server's ``--slow-trace-ms`` threshold); only written
    when the run captured any.
``README.md``
    Human summary with the replay command line.

Directory names are ``<name>-<YYYY-MM-DD>``; same-day reruns get ``-2``,
``-3`` suffixes instead of clobbering (a committed provenance dir is an
immutable record).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.bench.report import strip_private

__all__ = ["experiment_dir", "write_experiment"]


def experiment_dir(root: str | Path, name: str, date: str | None = None) -> Path:
    """Create and return ``<root>/<name>-<date>/`` (collision-suffixed).

    ``date`` defaults to today (UTC); pass an explicit ``YYYY-MM-DD`` for
    deterministic naming in tests and replays.
    """
    root = Path(root)
    stamp = date or time.strftime("%Y-%m-%d", time.gmtime())
    base = root / f"{name}-{stamp}"
    path = base
    suffix = 2
    while path.exists():
        path = base.with_name(f"{base.name}-{suffix}")
        suffix += 1
    path.mkdir(parents=True)
    return path


def write_experiment(
    directory: str | Path,
    *,
    report: Mapping[str, Any],
    config: Mapping[str, Any],
    samples: Iterable[Mapping[str, Any]] = (),
    slow_traces: Iterable[Mapping[str, Any]] = (),
) -> Path:
    """Populate a provenance dir with config, report, raw samples, README."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    (directory / "config.json").write_text(json.dumps(dict(config), indent=2) + "\n")
    report = strip_private(report)
    (directory / "report.json").write_text(json.dumps(report, indent=2) + "\n")

    sample_rows = list(samples)
    with (directory / "samples.jsonl").open("w") as fh:
        for row in sample_rows:
            fh.write(json.dumps(dict(row)) + "\n")

    trace_rows = [dict(trace) for trace in slow_traces]
    if trace_rows:
        (directory / "slow_traces.json").write_text(
            json.dumps(trace_rows, indent=2) + "\n"
        )

    name = config.get("name", report.get("benchmark", "unknown"))
    provenance = report.get("provenance", {}) if isinstance(report, Mapping) else {}
    lines = [
        f"# Experiment: {directory.name}",
        "",
        f"- benchmark: `{report.get('benchmark', name)}`",
        f"- schema_version: {report.get('schema_version')}",
        f"- seed: {report.get('seed')}",
        f"- git commit: {provenance.get('git_commit')}",
        f"- timestamp: {provenance.get('timestamp')}",
        f"- raw samples: {len(sample_rows)} rows in `samples.jsonl`",
        f"- captured slow traces: {len(trace_rows)}"
        + (" (see `slow_traces.json`)" if trace_rows else ""),
        "",
        "Replay this run (the spec in `config.json` is authoritative):",
        "",
        "```sh",
        f"python -m repro bench {name} --output report.json",
        "```",
        "",
        "Gate it against the committed baseline:",
        "",
        "```sh",
        f"python benchmarks/check_regression.py BENCH_{report.get('benchmark', name)}.json report.json",
        "```",
        "",
    ]
    (directory / "README.md").write_text("\n".join(lines))
    return directory
