"""The benchmark registry: every runnable workload, as data.

``repro bench --list`` serializes this registry (machine-readable JSON);
the CI ``bench-gate`` matrix is generated from the ``--gated`` subset, so
adding a gated benchmark here *is* adding its CI job.

Workload module contract (lazily imported via ``module``):

``get_spec(name) -> WorkloadSpec``
    The declarative spec for the registry entry ``name`` (one module may
    serve several entries, e.g. the table1 replay sweeps).
``add_arguments(parser)`` (optional)
    Workload-specific CLI flags (``--connect``, ``--seeds``, ...).
``run(name, args) -> RunResult``
    Execute the (already quick-resolved) workload and return the finalized
    report plus the raw samples for provenance.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BenchmarkDef", "RunResult", "REGISTRY", "get", "listing", "listing_json"]


@dataclass
class RunResult:
    """What a workload run hands back to the CLI."""

    report: dict
    config: dict = field(default_factory=dict)
    samples: list = field(default_factory=list)
    #: Slow traces the serving stack captured during the run (each one a
    #: whole span tree); written to the provenance dir as slow_traces.json.
    slow_traces: list = field(default_factory=list)


@dataclass(frozen=True)
class BenchmarkDef:
    """One registry entry.

    ``baseline`` is the repo-relative committed baseline the CI gate
    compares against (gated entries only).
    """

    name: str
    kind: str
    module: str
    description: str
    gated: bool = False
    baseline: str | None = None

    def load(self):
        """Import the workload module (deferred: listing stays dependency-free)."""
        return importlib.import_module(self.module)


_WORKLOADS = "repro.bench.workloads"

_DEFS = (
    BenchmarkDef(
        name="query-engine",
        kind="query_engine",
        module=f"{_WORKLOADS}.query_engine",
        description=(
            "Kriging query engine vs seed reimplementation: evaluate/batch "
            "speedups per support size, KD-tree index, factorization reuse"
        ),
        gated=True,
        baseline="BENCH_query_engine.json",
    ),
    BenchmarkDef(
        name="solve",
        kind="solve",
        module=f"{_WORKLOADS}.solve",
        description=(
            "Zero-copy solve path: shm vs pickled process dispatch, stacked "
            "batched factorization, warm vs cold factor-cache restore"
        ),
        gated=True,
        baseline="BENCH_solve.json",
    ),
    BenchmarkDef(
        name="service",
        kind="service",
        module=f"{_WORKLOADS}.service",
        description=(
            "Evaluation service over TCP: sequential vs concurrent client "
            "load, batched throughput, snapshot round-trip determinism"
        ),
        gated=True,
        baseline="BENCH_service.json",
    ),
    BenchmarkDef(
        name="cluster",
        kind="cluster",
        module=f"{_WORKLOADS}.cluster",
        description=(
            "Sharded cluster: 2-worker vs 1-worker scaling, live migration "
            "byte-identity, SIGKILL failover drill"
        ),
        gated=True,
        baseline="BENCH_cluster.json",
    ),
    BenchmarkDef(
        name="chaos",
        kind="chaos",
        module=f"{_WORKLOADS}.chaos",
        description=(
            "Seeded fault-injection drill: robustness invariants under a "
            "reproducible transport-fault storm, throughput under fire"
        ),
        gated=True,
        baseline="BENCH_chaos.json",
    ),
) + tuple(
    BenchmarkDef(
        name=f"table1-{bench}",
        kind="replay_sweep",
        module=f"{_WORKLOADS}.table1",
        description=f"Table 1 replay: kriging error evaluation on {bench}",
    )
    for bench in ("fir", "iir", "fft", "hevc", "squeezenet", "dct")
) + tuple(
    BenchmarkDef(
        name=f"ablation-{sweep}",
        kind="replay_sweep",
        module=f"{_WORKLOADS}.table1",
        description=f"Ablation sweep over the {sweep} axis of the estimator",
    )
    for sweep in ("distance", "nnmin", "variogram", "universal")
)

REGISTRY: dict[str, BenchmarkDef] = {d.name: d for d in _DEFS}


def get(name: str) -> BenchmarkDef:
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def listing(gated_only: bool = False) -> list[dict[str, Any]]:
    """Registry rows as plain dicts (the ``repro bench --list`` payload)."""
    return [
        {
            "name": d.name,
            "kind": d.kind,
            "gated": d.gated,
            "baseline": d.baseline,
            "description": d.description,
        }
        for d in REGISTRY.values()
        if d.gated or not gated_only
    ]


def listing_json(gated_only: bool = False) -> str:
    """Single-line JSON array — safe to embed in a ``$GITHUB_OUTPUT`` line."""
    return json.dumps(listing(gated_only), separators=(",", ":"))
