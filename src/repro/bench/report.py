"""The versioned benchmark report schema and its provenance stamps.

Every report produced through the harness carries the same envelope on top
of its workload-specific body:

``benchmark``
    The report kind (``query_engine`` / ``service`` / ``cluster`` /
    ``chaos`` / ``replay_sweep``) — what the gate layer dispatches on.
``schema_version``
    :data:`REPORT_SCHEMA_VERSION`.  Version 1 is the pre-harness era
    (no version field at all); readers treat a missing field as 1.
``seed``
    The workload seed(s) the run used — an int, or a list for multi-seed
    drills (chaos).
``hardware``
    :func:`hardware_stamp` — cpus/machine/system/python/node.  Gates that
    are only meaningful on multi-core hardware read ``hardware.cpus``.
``provenance``
    UTC timestamp, git commit (when resolvable), the argv the run was
    invoked with and the harness schema version — enough to replay the run.

Private working state (keys starting with ``_``) is stripped before a
report is written; bodies can stash raw values for cross-checks without
leaking them into the committed JSON.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "hardware_stamp",
    "git_commit",
    "finalize_report",
    "strip_private",
    "write_report",
]

REPORT_SCHEMA_VERSION = 2


def hardware_stamp() -> dict[str, Any]:
    """Hardware/platform identity of the current machine."""
    return {
        "cpus": os.cpu_count() or 1,
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "node": platform.node(),
    }


def git_commit() -> str | None:
    """Current commit hash: ``$GITHUB_SHA`` in CI, else ``git rev-parse``.

    Returns ``None`` outside a git checkout — provenance degrades, it never
    blocks a run.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def strip_private(value: Any) -> Any:
    """Recursively drop dict keys starting with ``_`` (working state)."""
    if isinstance(value, Mapping):
        return {
            k: strip_private(v)
            for k, v in value.items()
            if not (isinstance(k, str) and k.startswith("_"))
        }
    if isinstance(value, (list, tuple)):
        return [strip_private(v) for v in value]
    return value


def finalize_report(
    kind: str,
    body: Mapping[str, Any],
    *,
    seed: int | Sequence[int] | None,
    argv: Sequence[str] | None = None,
) -> dict[str, Any]:
    """Wrap a workload body in the versioned report envelope.

    The body's own keys win over nothing — envelope keys are written last
    so a body cannot accidentally ship an unversioned ``schema_version``.
    ``hardware`` merges over anything the body already stamped (keeping
    body-provided keys like ``cpus`` authoritative for the run that
    measured them).
    """
    report = dict(body)
    report["benchmark"] = kind
    report["schema_version"] = REPORT_SCHEMA_VERSION
    if isinstance(seed, (list, tuple)):
        report["seed"] = list(seed)
    else:
        report["seed"] = seed
    hardware = hardware_stamp()
    body_hardware = body.get("hardware")
    if isinstance(body_hardware, Mapping):
        hardware.update(body_hardware)
    report["hardware"] = hardware
    report["provenance"] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_commit": git_commit(),
        "argv": list(argv) if argv is not None else None,
        "harness": f"repro.bench/{REPORT_SCHEMA_VERSION}",
    }
    return report


def write_report(report: Mapping[str, Any], path: str | Path) -> Path:
    """Write a finalized report as indented JSON, private keys stripped."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(strip_private(report), indent=2) + "\n")
    return path
