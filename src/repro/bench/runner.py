"""Measurement primitives shared by every benchmark workload.

One place for the timing idioms the five ``bench_*`` scripts used to
copy-paste:

* :func:`measure` / :func:`best_of` — best-of-N wall-clock orchestration on
  the monotonic ``perf_counter`` clock.
* :class:`SampleLog` — per-request sample collection against a monotonic
  epoch, dumpable as the raw ``samples.jsonl`` of a provenance dir.
* :class:`LatencyStats` — streaming latency tails via the existing P²
  sketches (:mod:`repro.utils.quantiles`): p50/p90/p99, exact min/max/mean,
  Welford stddev and tail *jitter* (p99 − p50) without storing samples.
* :func:`latency_summary` — one-shot summary of a collected latency list,
  in milliseconds, the shape every report's ``latency_ms`` block uses.
* :func:`paced_arrivals` — open-loop arrival schedule generator for
  ``LoadSpec(mode="open")`` workloads.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.utils.quantiles import QuantileSketch

__all__ = [
    "measure",
    "best_of",
    "SampleLog",
    "LatencyStats",
    "latency_summary",
    "paced_arrivals",
]

LATENCY_PROBS = (0.5, 0.9, 0.99)


def measure(fn: Callable[[], Any], repetitions: int = 1) -> tuple[float, Any]:
    """Run ``fn`` ``repetitions`` times; return ``(best_seconds, result)``.

    The result comes from the fastest repetition's run.  Timing uses
    ``time.perf_counter`` (monotonic, highest available resolution).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    best = math.inf
    result: Any = None
    for _ in range(repetitions):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = value
    return best, result


def best_of(
    repetitions: int,
    run_once: Callable[[], dict],
    key: Callable[[dict], float] = lambda row: row["seconds"],
) -> dict:
    """Run a self-timing scenario ``repetitions`` times, keep the best row.

    ``run_once`` returns a report row containing its own timing; ``key``
    extracts the figure of merit (lower is better, default the row's
    ``"seconds"``).  This is the orchestration shape the service/cluster
    benches use, where a scenario times itself internally.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    best_row: dict | None = None
    best_key = math.inf
    for _ in range(repetitions):
        row = run_once()
        row_key = key(row)
        if best_row is None or row_key < best_key:
            best_row, best_key = row, row_key
    assert best_row is not None
    return best_row


class SampleLog:
    """Per-request samples against a monotonic epoch.

    Each :meth:`record` stores ``(t_offset_s, seconds, label)`` where
    ``t_offset_s`` is the monotonic offset from the log's creation — wall
    clocks never enter the record, so merged or replayed logs stay
    comparable.  :meth:`rows` yields JSON-safe dicts for ``samples.jsonl``.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._samples: list[tuple[float, float, str]] = []

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, seconds: float, label: str = "") -> None:
        """Record one completed operation of duration ``seconds``."""
        self._samples.append((time.perf_counter() - self._epoch, float(seconds), label))

    @contextmanager
    def time(self, label: str = "") -> Iterator[None]:
        """Time a ``with`` block and record it."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start, label)

    def durations(self, label: str | None = None) -> list[float]:
        """All recorded durations (optionally only those matching ``label``)."""
        return [s for t, s, lab in self._samples if label is None or lab == label]

    def rows(self) -> list[dict]:
        """JSON-safe rows: ``{"t": offset_s, "seconds": ..., "label": ...}``."""
        return [
            {"t": round(t, 6), "seconds": s, "label": label}
            for t, s, label in self._samples
        ]


class LatencyStats:
    """Streaming latency statistics: P² tails plus Welford variance.

    Observations are durations in *seconds*; :meth:`summary` reports in
    milliseconds (the convention of every report's ``latency_ms`` block).
    Memory is O(1) regardless of how long the load is sustained.
    """

    def __init__(self) -> None:
        self._sketch = QuantileSketch(probs=LATENCY_PROBS)
        self._mean = 0.0
        self._m2 = 0.0

    def __len__(self) -> int:
        return self._sketch.count

    @property
    def count(self) -> int:
        return self._sketch.count

    def update(self, seconds: float) -> None:
        """Consume one request latency (seconds)."""
        self._sketch.update(seconds)
        n = self._sketch.count
        delta = seconds - self._mean
        self._mean += delta / n
        self._m2 += delta * (seconds - self._mean)

    def extend(self, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.update(value)

    @property
    def stddev(self) -> float:
        """Sample standard deviation in seconds (``nan`` below 2 samples)."""
        n = self._sketch.count
        if n < 2:
            return float("nan")
        return math.sqrt(self._m2 / (n - 1))

    def summary(self) -> dict[str, float]:
        """Milliseconds summary: p50/p90/p99/max/mean/stddev/jitter.

        ``jitter`` is the tail spread p99 − p50 — the sustained-load
        dispersion figure, not gated but tracked in history.
        """
        if self._sketch.count == 0:
            return {}
        to_ms = lambda s: round(s * 1000.0, 3)  # noqa: E731
        p50 = self._sketch.quantile(0.5)
        p99 = self._sketch.quantile(0.99)
        stddev = self.stddev
        return {
            "p50": to_ms(p50),
            "p90": to_ms(self._sketch.quantile(0.9)),
            "p99": to_ms(p99),
            "max": to_ms(self._sketch.max),
            "mean": to_ms(self._sketch.mean),
            "stddev": to_ms(stddev) if not math.isnan(stddev) else None,
            "jitter": to_ms(p99 - p50),
        }


def latency_summary(latencies: Sequence[float]) -> dict[str, float]:
    """One-shot :class:`LatencyStats` summary of a latency list (seconds in,
    milliseconds out).  Empty input yields an empty dict."""
    stats = LatencyStats()
    stats.extend(latencies)
    return stats.summary()


def paced_arrivals(
    rate_hz: float,
    duration_s: float | None = None,
    n_arrivals: int | None = None,
) -> Iterator[float]:
    """Open-loop arrival offsets (seconds from load start) at ``rate_hz``.

    Deterministic uniform pacing: arrival ``i`` is due at ``i / rate_hz``.
    Bounded by ``duration_s``, ``n_arrivals``, or both (whichever cuts
    first); at least one bound is required.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
    if duration_s is None and n_arrivals is None:
        raise ValueError("paced_arrivals needs duration_s or n_arrivals")
    interval = 1.0 / rate_hz
    i = 0
    while True:
        due = i * interval
        if duration_s is not None and due >= duration_s:
            return
        if n_arrivals is not None and i >= n_arrivals:
            return
        yield due
        i += 1
