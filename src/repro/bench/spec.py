"""Declarative workload specifications for the benchmark harness.

A :class:`WorkloadSpec` describes *what* a benchmark run does — seeds,
warm-up, best-of-N repetitions, the client-load shape and an optional
fault schedule — separately from the code that executes it.  Every
registered benchmark (``repro bench --list``) exposes one, the harness
resolves it (``--quick`` applies the spec's own quick overrides instead of
ad-hoc flag plumbing), and the resolved form is written verbatim into the
``experiments/<name>-<date>/config.json`` provenance record so a run can
be replayed from its spec alone.

Load shapes:

* **closed-loop** — each logical client issues its next request as soon as
  the previous one answers (throughput is demand-driven; the shape of
  every ``bench_service``/``bench_cluster`` scenario).
* **open-loop**  — requests arrive on a fixed schedule (``rate_hz`` per
  client) regardless of completions, so queueing delay shows up in the
  latency tail instead of silently throttling the offered load.  The
  arrival schedule comes from :func:`repro.bench.runner.paced_arrivals`.

Fault schedules (:class:`FaultScheduleSpec`) make chaos drills part of the
spec: the schedule is seeded, so the same spec replays the same storm.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping, Sequence

__all__ = [
    "LoadSpec",
    "FaultScheduleSpec",
    "WorkloadSpec",
]

LOAD_MODES = ("closed", "open")


@dataclass(frozen=True)
class LoadSpec:
    """The client-load shape of a workload.

    ``mode="closed"``: ``clients`` loops issue requests back to back.
    ``mode="open"``: each client issues requests at ``rate_hz`` arrivals
    per second for ``duration_s`` (or one full pass over its stream).
    """

    mode: str = "closed"
    clients: int = 1
    rate_hz: float | None = None
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in LOAD_MODES:
            raise ValueError(f"load mode must be one of {LOAD_MODES}, got {self.mode!r}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.mode == "open" and not self.rate_hz:
            raise ValueError("open-loop load requires rate_hz")
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {self.rate_hz}")


@dataclass(frozen=True)
class FaultScheduleSpec:
    """A seeded transport-fault storm: ``n_events`` one-victim-at-a-time
    faults drawn from ``kinds`` with uniform duration/recovery-gap ranges.

    The draw order (victim, kind, duration, gap) is part of the contract:
    the same seed replays the same storm against the same fleet.
    """

    n_events: int
    kinds: tuple[str, ...]
    duration_range: tuple[float, float] = (0.25, 0.7)
    gap_range: tuple[float, float] = (0.15, 0.4)

    def __post_init__(self) -> None:
        if self.n_events < 0:
            raise ValueError(f"n_events must be >= 0, got {self.n_events}")
        if not self.kinds:
            raise ValueError("at least one fault kind is required")

    def draw_event(
        self, rng: random.Random, victims: Sequence[Any]
    ) -> tuple[Any, str, float, float]:
        """Draw one ``(victim, kind, duration_s, gap_s)`` event."""
        victim = rng.choice(list(victims))
        kind = rng.choice(list(self.kinds))
        duration = rng.uniform(*self.duration_range)
        gap = rng.uniform(*self.gap_range)
        return victim, kind, duration, gap


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark's declarative scenario description.

    ``params`` are workload-specific knobs (support sizes, query counts);
    ``quick`` holds the CI-smoke overrides merged over ``params`` (plus
    optional ``repetitions``/``warmup`` keys) by :meth:`resolve` — the one
    place quick-mode behaviour is defined.
    """

    name: str
    kind: str
    description: str = ""
    seed: int | tuple[int, ...] = 0
    warmup: int = 0
    repetitions: int = 1
    load: LoadSpec | None = None
    faults: FaultScheduleSpec | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    quick: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")

    def resolve(self, *, quick: bool = False) -> "WorkloadSpec":
        """Apply the spec's own ``quick`` overrides (a no-op otherwise)."""
        if not quick or not self.quick:
            return self
        overrides = dict(self.quick)
        fields: dict[str, Any] = {}
        for key in ("repetitions", "warmup", "seed"):
            if key in overrides:
                fields[key] = overrides.pop(key)
        if "faults" in overrides:
            fields["faults"] = overrides.pop("faults")
        fields["params"] = {**dict(self.params), **overrides}
        fields["quick"] = {}
        return replace(self, **fields)

    def to_config(self) -> dict:
        """JSON-safe form recorded in the provenance ``config.json``."""
        config: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "seed": list(self.seed) if isinstance(self.seed, tuple) else self.seed,
            "warmup": self.warmup,
            "repetitions": self.repetitions,
            "params": dict(self.params),
        }
        if self.load is not None:
            config["load"] = asdict(self.load)
        if self.faults is not None:
            config["faults"] = asdict(self.faults)
        return config
