"""Workload implementations behind the benchmark registry.

Each module implements the contract documented in
:mod:`repro.bench.registry` (``get_spec`` / optional ``add_arguments`` /
``run``) plus a ``main(argv, default_output=...)`` entry point that the
thin ``benchmarks/bench_*.py`` shims call, so the historical script CLIs
keep working unchanged.
"""
