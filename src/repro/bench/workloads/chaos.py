"""Seeded fault-injection drill for the evaluation cluster.

Runs a real in-process cluster (router + supervisor + N workers on one
event loop, real wire protocol) with every worker fronted by a
:class:`repro.testing.ChaosProxy`, then drives client load while a
*seeded* schedule of transport faults — latency, blackholes, resets,
garbled frames, mid-frame truncation, slow drips — hits one worker at a
time.  The schedule is a :class:`repro.bench.spec.FaultScheduleSpec`:
the same seed replays the same storm, so a failing drill is a
reproducible bug report.

The drill does not measure speed; it measures that the failure model
holds under fire.  Per seed it asserts the robustness invariants:

* **bounded calls** — no client call outlives its deadline by more than
  ``SLACK_S``: every attempt ends in an answer or a structured error
  within budget.  (The drill itself runs under a hard ``wait_for``, so a
  hang fails the run rather than wedging CI.)
* **structured failures** — every failed attempt is a *documented*
  outcome: a retryable ``Overloaded``/``Unavailable`` with a retry hint,
  a terminal ``DeadlineExceeded``, or the client's own timeout.  Opaque
  errors and unexpected kinds are invariant violations.
* **bounded loss** — sessions are replicated before the storm; whatever
  workers the health loop declares dead, ``sessions_lost`` stays 0 and
  every session still answers from replicated state (the documented
  replication-lag durability contract).
* **reconvergence** — once the faults stop, the fleet settles: every
  session answers an exact-hit probe, every owner in the routing table is
  alive, and a clean load round completes without a single retry.

Gated in CI by ``check_regression.py`` against the committed baseline:
invariants everywhere, throughput floor only on multi-core machines.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import os
import pathlib
import platform
import random
import sys
import tempfile
import time

from repro.bench.registry import RunResult
from repro.bench.report import finalize_report, write_report
from repro.bench.runner import latency_summary
from repro.bench.spec import FaultScheduleSpec, LoadSpec, WorkloadSpec
from repro.cluster import ClusterRouter, WorkerHandle, WorkerSupervisor
from repro.service.client import RETRYABLE_KINDS, AsyncServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import KrigingService
from repro.testing import ChaosProxy, Fault
from repro.testing.faults import FAULT_KINDS

SEEDS = (101, 202, 303)
N_WORKERS = 3
N_SESSIONS = 4
N_STREAMS = 4
N_SUPPORT = 40
N_EVENTS = 8
QUICK_EVENTS = 4
NUM_VARIABLES = 3
SIMULATOR = {"kind": "linear", "coefficients": [1.0, -2.0, 0.5], "offset": -6.0}
SESSION_KWARGS = dict(
    simulator=SIMULATOR, num_variables=NUM_VARIABLES, distance=4.0,
    variogram="linear",
)

#: Per-call budget and the acceptance slack on top of it.
DEADLINE_S = 2.0
SLACK_S = 1.0
#: The router gives up on a worker well inside the budget.
WORKER_TIMEOUT_S = 0.8
#: Hard ceiling on one seed's drill: a hang fails loudly, never wedges CI.
DRILL_TIMEOUT_S = 120.0
RECONVERGE_TIMEOUT_S = 15.0

SUPERVISOR_KWARGS = dict(
    health_interval=0.15,
    replication_interval=0.4,
    ping_timeout=0.35,
    max_ping_failures=2,
)
ROUTER_KWARGS = dict(
    worker_timeout=WORKER_TIMEOUT_S,
    breaker_threshold=3,
    breaker_reset_ms=200.0,
)

#: Failure shapes a client is *allowed* to see during the storm.
ALLOWED_ERROR_KINDS = RETRYABLE_KINDS | {"DeadlineExceeded"}

SESSION_NAMES = [f"chaos{i}" for i in range(N_SESSIONS)]

#: The seeded storm: one victim at a time, drawn kind/duration/gap.
FAULT_SCHEDULE = FaultScheduleSpec(n_events=N_EVENTS, kinds=tuple(FAULT_KINDS))

SPEC = WorkloadSpec(
    name="chaos",
    kind="chaos",
    description=(
        "Seeded fault-injection drill over the sharded cluster: robustness "
        "invariants (bounded calls, structured failures, zero session loss, "
        "reconvergence) under a reproducible transport-fault storm"
    ),
    seed=SEEDS,
    load=LoadSpec(mode="closed", clients=N_STREAMS),
    faults=FAULT_SCHEDULE,
    params={
        "n_workers": N_WORKERS,
        "n_sessions": N_SESSIONS,
        "n_support": N_SUPPORT,
        "deadline_s": DEADLINE_S,
        "slack_s": SLACK_S,
    },
    quick={
        "faults": FaultScheduleSpec(n_events=QUICK_EVENTS, kinds=tuple(FAULT_KINDS)),
    },
)


# ---------------------------------------------------------------------------
# the drill
# ---------------------------------------------------------------------------
async def _evaluate_with_retries(client, session, config, *, attempts=40):
    """The documented ride-through loop: honor ``retry_after_ms`` hints."""
    for attempt in range(attempts):
        try:
            return await client.request(
                "evaluate", session=session, config=config, timeout=DEADLINE_S
            )
        except RemoteError as exc:
            if exc.kind not in RETRYABLE_KINDS or attempt == attempts - 1:
                raise
            await asyncio.sleep((exc.retry_after_ms or 50.0) / 1000.0)
        except (asyncio.TimeoutError, TimeoutError):
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")


class _Drill:
    def __init__(
        self,
        seed: int,
        schedule: FaultScheduleSpec,
        tmp: pathlib.Path,
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.tmp = tmp
        self.rng = random.Random(seed)
        self.events: list[dict] = []
        self.served = 0
        self.retries = 0
        self.errors: dict[str, int] = {}
        self.unexpected: list[str] = []
        self.latencies: list[float] = []
        self.max_attempt_s = 0.0

    def _count(self, key: str) -> None:
        self.errors[key] = self.errors.get(key, 0) + 1

    async def _stream(self, host, port, name, stop):
        """One client stream: evaluate random configs until told to stop,
        recording how every attempt ended and how long it took."""
        client = await AsyncServiceClient.connect(host, port)
        rng = random.Random(f"{self.seed}:{name}")  # str seeds hash stably
        try:
            while not stop.is_set():
                config = [rng.uniform(0.0, 8.0) for _ in range(NUM_VARIABLES)]
                t0 = time.perf_counter()
                try:
                    await client.request(
                        "evaluate", session=name, config=config, timeout=DEADLINE_S
                    )
                    self.served += 1
                    self.latencies.append(time.perf_counter() - t0)
                except RemoteError as exc:
                    self._count(exc.kind)
                    if exc.kind in RETRYABLE_KINDS:
                        self.retries += 1
                        await asyncio.sleep((exc.retry_after_ms or 50.0) / 1000.0)
                    elif exc.kind not in ALLOWED_ERROR_KINDS:
                        self.unexpected.append(f"{exc.kind}: {exc}")
                except (asyncio.TimeoutError, TimeoutError):
                    self._count("ClientTimeout")
                except ConnectionError as exc:
                    # The client→router link must survive worker chaos.
                    self.unexpected.append(f"ConnectionError: {exc!r}")
                    return
                finally:
                    self.max_attempt_s = max(
                        self.max_attempt_s, time.perf_counter() - t0
                    )
        finally:
            await client.close()

    async def _inject(self, router, proxies, stop):
        """The seeded fault schedule: one worker at a time, never the last
        survivor (an empty fleet has nothing to fail over to)."""
        for _ in range(self.schedule.n_events):
            alive = [
                i for i, _ in enumerate(proxies) if router.workers[f"w{i}"].alive
            ]
            if len(alive) < 2:
                break  # only one survivor left: it must stay clean
            victim, kind, duration, gap = self.schedule.draw_event(self.rng, alive)
            self.events.append(
                {"worker": f"w{victim}", "kind": kind,
                 "duration_s": round(duration, 3)}
            )
            proxies[victim].set_fault(Fault(kind))
            if kind in ("reset", "truncate"):
                proxies[victim].abort_connections()  # fire even when idle
            await asyncio.sleep(duration)
            proxies[victim].set_fault(None)
            await asyncio.sleep(gap)
        stop.set()

    async def _reconverge(self, client, router, support_probe):
        """After the storm: every session answers an exact-hit probe, every
        owner is alive, and a clean round needs zero retries."""
        deadline = time.monotonic() + RECONVERGE_TIMEOUT_S
        exact = {}
        for name in SESSION_NAMES:
            while True:
                try:
                    out = await _evaluate_with_retries(client, name, support_probe)
                    exact[name] = bool(out.get("exact_hit"))
                    break
                except (RemoteError, asyncio.TimeoutError, TimeoutError):
                    if time.monotonic() > deadline:
                        exact[name] = False
                        break
                    await asyncio.sleep(0.1)
        stats = await client.request("cluster_stats")
        live = {w["worker"] for w in stats["workers"] if w["alive"]}
        owners_alive = all(owner in live for owner in stats["table"].values())
        clean = 0
        for name in SESSION_NAMES:  # a calm fleet answers first try
            out = await client.request(
                "evaluate", session=name, config=support_probe, timeout=DEADLINE_S
            )
            clean += 1 if "value" in out else 0
        return {
            "all_sessions_exact": all(exact.values()),
            "owners_alive": owners_alive,
            "clean_round_ok": clean == N_SESSIONS,
            "sessions_lost": stats["counters"]["sessions_lost"],
            "failovers": stats["counters"]["failovers"],
            "deadline_misses": stats["counters"]["deadline_misses"],
            "breaker_fast_fails": stats["counters"]["breaker_fast_fails"],
            "workers_alive": len(live),
        }

    async def run(self) -> dict:
        router = ClusterRouter(replica_dir=self.tmp, **ROUTER_KWARGS)
        supervisor = WorkerSupervisor(router, **SUPERVISOR_KWARGS)
        services, proxies, tasks = [], [], []
        support = [
            [float(self.rng.randint(0, 8)) for _ in range(NUM_VARIABLES)]
            for _ in range(N_SUPPORT)
        ]
        for index in range(N_WORKERS):
            service = KrigingService(snapshot_dir=self.tmp)
            tasks.append(asyncio.create_task(service.serve("127.0.0.1", 0)))
            while service.address is None:
                await asyncio.sleep(0.005)
            proxy = ChaosProxy(*service.address)
            address = await proxy.start()
            await router.add_worker(WorkerHandle(f"w{index}", *address))
            services.append(service)
            proxies.append(proxy)
        router_task = asyncio.create_task(router.serve("127.0.0.1", 0))
        try:
            while router.address is None:
                await asyncio.sleep(0.005)
            host, port = router.address
            async with await AsyncServiceClient.connect(host, port) as client:
                for i, name in enumerate(SESSION_NAMES):
                    await client.request(
                        "create_session", session=name,
                        worker=f"w{i % N_WORKERS}", **SESSION_KWARGS,
                    )
                    for row in support:
                        await client.request("simulate", session=name, config=row)
                await client.request("replicate")

                stop = asyncio.Event()
                t0 = time.perf_counter()
                streams = [
                    asyncio.create_task(
                        self._stream(host, port, SESSION_NAMES[s % N_SESSIONS], stop)
                    )
                    for s in range(N_STREAMS)
                ]
                await self._inject(router, proxies, stop)
                await asyncio.gather(*streams)
                drill_seconds = time.perf_counter() - t0

                for proxy in proxies:
                    proxy.set_fault(None)
                convergence = await self._reconverge(client, router, support[0])
        finally:
            router.stop()
            for proxy in proxies:
                proxy.set_fault(None)
            await asyncio.wait_for(router_task, 15)
            for proxy in proxies:
                await proxy.stop()
            for service, task in zip(services, tasks):
                if not task.done():
                    service.stop()
                    await asyncio.wait_for(task, 10)

        invariants = {
            "no_call_outlives_deadline": self.max_attempt_s <= DEADLINE_S + SLACK_S,
            "failures_structured": not self.unexpected,
            "no_session_lost": convergence["sessions_lost"] == 0,
            "reconverged": (
                convergence["all_sessions_exact"]
                and convergence["owners_alive"]
                and convergence["clean_round_ok"]
            ),
            "made_progress": self.served > 0,
        }
        return {
            "seed": self.seed,
            "events": self.events,
            "seconds": round(drill_seconds, 6),
            "qps": round(self.served / drill_seconds, 2),
            "served": self.served,
            "retries": self.retries,
            "errors": dict(sorted(self.errors.items())),
            "unexpected_errors": self.unexpected[:10],
            "max_attempt_seconds": round(self.max_attempt_s, 6),
            "latency_ms": (
                latency_summary(self.latencies) if self.latencies else None
            ),
            "convergence": convergence,
            "invariants": invariants,
            "invariants_ok": all(invariants.values()),
        }


def run_drill(seed: int, *, n_events: int = N_EVENTS) -> dict:
    """One seed's drill under a hard timeout (the no-hang invariant)."""
    schedule = FaultScheduleSpec(n_events=n_events, kinds=tuple(FAULT_KINDS))

    async def main():
        with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as tmp:
            return await asyncio.wait_for(
                _Drill(seed, schedule, pathlib.Path(tmp)).run(), DRILL_TIMEOUT_S
            )

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# the benchmark
# ---------------------------------------------------------------------------
def run_benchmark(*, seeds=SEEDS, n_events: int = N_EVENTS) -> dict:
    rows = [run_drill(seed, n_events=n_events) for seed in seeds]
    all_ok = all(row["invariants_ok"] for row in rows)
    total_served = sum(row["served"] for row in rows)
    total_seconds = sum(row["seconds"] for row in rows)
    return {
        "benchmark": "chaos",
        "hardware": {"cpus": os.cpu_count() or 1, "machine": platform.machine()},
        "workload": {
            "n_workers": N_WORKERS,
            "n_sessions": N_SESSIONS,
            "n_client_streams": N_STREAMS,
            "n_support": N_SUPPORT,
            "n_events": n_events,
            "fault_kinds": list(FAULT_KINDS),
            "deadline_s": DEADLINE_S,
            "slack_s": SLACK_S,
            "worker_timeout_s": WORKER_TIMEOUT_S,
            "seeds": list(seeds),
        },
        "scenarios": {f"seed{row['seed']}": row for row in rows},
        "qps_under_chaos": round(total_served / total_seconds, 2),
        "acceptance": {
            "seeds_run": len(rows),
            "all_invariants_ok": all_ok,
            "passed": all_ok and len(rows) >= 3,
        },
    }


def print_summary(report: dict) -> None:
    for name, row in report["scenarios"].items():
        flags = " ".join(
            k for k, ok in row["invariants"].items() if not ok
        ) or "all invariants held"
        print(
            f"{name:<9s} {row['seconds']:>6.2f}s  served={row['served']:<5d} "
            f"retries={row['retries']:<4d} errors={sum(row['errors'].values()):<4d} "
            f"max_attempt={row['max_attempt_seconds']:.2f}s  "
            f"failovers={row['convergence']['failovers']}  {flags}"
        )
    acceptance = report["acceptance"]
    print(
        f"chaos drill: {acceptance['seeds_run']} seeds, "
        f"{report['qps_under_chaos']:.1f} q/s under fire, "
        f"passed={acceptance['passed']}"
    )


def _extract_samples(report: dict) -> list[dict]:
    """Flatten per-seed fault events into provenance sample rows."""
    samples = []
    for name, row in report.get("scenarios", {}).items():
        for event in row.get("events", []):
            samples.append({"label": f"{name}:{event['kind']}", **event})
    return samples


# ---------------------------------------------------------------------------
# registry contract
# ---------------------------------------------------------------------------
def get_spec(name: str) -> WorkloadSpec:
    return SPEC


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help=f"drill seeds (default: {list(SEEDS)})",
    )


def run(name: str, args: argparse.Namespace) -> RunResult:
    spec = SPEC.resolve(quick=getattr(args, "quick", False))
    seeds = tuple(getattr(args, "seeds", None) or spec.seed)
    assert spec.faults is not None
    if seeds != tuple(spec.seed):
        spec = dataclasses.replace(spec, seed=seeds)
    body = run_benchmark(seeds=seeds, n_events=spec.faults.n_events)
    report = finalize_report("chaos", body, seed=seeds, argv=sys.argv[1:])
    print_summary(report)
    return RunResult(
        report=report, config=spec.to_config(), samples=_extract_samples(report)
    )


def main(argv: list[str] | None = None, default_output: pathlib.Path | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer fault events per seed",
    )
    add_arguments(parser)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=default_output or pathlib.Path("BENCH_chaos.json"),
        help="report destination",
    )
    args = parser.parse_args(argv)

    result = run(SPEC.name, args)
    write_report(result.report, args.output)
    print("written:", args.output)
    return 0 if result.report["acceptance"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
