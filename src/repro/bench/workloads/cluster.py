"""Cluster workload: scaling and availability of the sharded router.

Spawns two real ``repro cluster`` deployments (router + worker
subprocesses, exactly the operator path) and measures the horizontal
scaling win of sharding sessions across workers:

* ``single_worker`` — router in front of ONE worker holding all
  ``N_SESSIONS`` sessions: the proxy-overhead baseline.
* ``two_workers``   — the same sessions pinned round-robin across TWO
  workers: concurrent client streams now solve on two cores.

``speedup_cluster_vs_single`` is the aggregate-throughput ratio.  On a
single-core box both deployments share one CPU and the ratio is ~1.0 by
physics, so the report records ``hardware.cpus`` and the acceptance
threshold (>= 1.5x) is enforced only on multi-core machines (CI runners)
— correctness is enforced everywhere:

* **equivalence** — every answer from both deployments must match a local
  :class:`KrigingEstimator` fed the identical support sequence (1e-9;
  batch composition varies under concurrency, so last-ulp-exact is the
  tier-1 suite's job, not the load generator's).
* **migration drill** — snapshot a session, live-migrate it to the other
  worker, snapshot again: the two files must be byte-for-byte identical.
* **failover drill**  — SIGKILL the busiest worker (the router's
  ``kill_worker`` chaos verb) while client load is running: the health
  loop must detect it, restore every session from its replica on the
  survivor (``sessions_lost == 0``), and every session must still answer
  from replicated state while clients ride through on retryable errors.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time

import numpy as np

import repro
from repro.bench.registry import RunResult
from repro.bench.report import finalize_report, write_report
from repro.bench.runner import best_of as _best_of_rows
from repro.bench.spec import LoadSpec, WorkloadSpec
from repro.bench.workloads.service import (
    DISTANCE,
    MAX_BATCH,
    MAX_DELAY_MS,
    NUM_VARIABLES,
    SESSION_KWARGS,
    SIMULATOR,
    SLOW_TRACE_MS,
    _make_workload,
    _scenario_row,
    _wire_waits,
)
from repro.core.estimator import KrigingEstimator
from repro.core.models import variogram_from_state
from repro.service.client import (
    RETRYABLE_KINDS,
    AsyncServiceClient,
    ServiceClient,
)
from repro.service.protocol import RemoteError
from repro.service.session import make_simulator

_SRC_ROOT = pathlib.Path(repro.__file__).resolve().parents[1]

N_SESSIONS = 4
N_SUPPORT = 600
QUERIES_PER_CLIENT = 120
REPETITIONS = 2
QUICK_SUPPORT = 300
QUICK_QUERIES_PER_CLIENT = 32
QUICK_REPETITIONS = 1
ACCEPTANCE_SPEEDUP = 1.5
#: The throughput floor only binds where two workers can actually run on
#: two cores; below this the report still carries the ratio for the record.
MULTICORE_MIN_CPUS = 4
FAILOVER_TIMEOUT = 30.0

WORKLOAD_SEED = 0

SESSION_NAMES = [f"shard{i}" for i in range(N_SESSIONS)]

SPEC = WorkloadSpec(
    name="cluster",
    kind="cluster",
    description=(
        "Sharded router: 1-worker vs 2-worker throughput, live migration "
        "byte-identity, SIGKILL failover drill under load"
    ),
    seed=WORKLOAD_SEED,
    repetitions=REPETITIONS,
    load=LoadSpec(mode="closed", clients=8),
    params={
        "n_support": N_SUPPORT,
        "queries_per_client": QUERIES_PER_CLIENT,
    },
    quick={
        "n_support": QUICK_SUPPORT,
        "queries_per_client": QUICK_QUERIES_PER_CLIENT,
        "repetitions": QUICK_REPETITIONS,
    },
)


# ---------------------------------------------------------------------------
# local reference
# ---------------------------------------------------------------------------
def _local_reference(support: np.ndarray) -> KrigingEstimator:
    """The estimator every cluster session must agree with: same simulator
    spec, same variogram, same support sequence — no service in between."""
    simulate, _ = make_simulator(SIMULATOR, NUM_VARIABLES)
    local = KrigingEstimator(
        simulate,
        NUM_VARIABLES,
        distance=DISTANCE,
        nn_min=SESSION_KWARGS["nn_min"],
        variogram=variogram_from_state(SESSION_KWARGS["variogram"]),
    )
    for point in support:
        local.record_measurement(point, simulate(np.asarray(point)))
    return local


def _stream_assignment(streams) -> list[tuple[str, int, list]]:
    """Stream ``si`` drives session ``SESSION_NAMES[si % N_SESSIONS]`` —
    every session gets the same number of concurrent client streams."""
    return [
        (SESSION_NAMES[si % N_SESSIONS], si, stream)
        for si, stream in enumerate(streams)
    ]


def _expected_values(local: KrigingEstimator, streams) -> list[float]:
    """Reference answers in the same (session, stream) flattening order
    the load runner reports."""
    per_key = {
        (name, si): [o.value for o in local.evaluate_batch(stream)]
        for name, si, stream in _stream_assignment(streams)
    }
    return [v for key in sorted(per_key) for v in per_key[key]]


# ---------------------------------------------------------------------------
# load generation
# ---------------------------------------------------------------------------
def _seed_sessions(client: ServiceClient, support: np.ndarray, *, workers: int) -> None:
    for i, name in enumerate(SESSION_NAMES):
        client.request(
            "create_session",
            session=name,
            worker=f"w{i % workers}",  # pin round-robin: balanced by design
            simulator=SIMULATOR,
            replace=True,
            max_batch=MAX_BATCH,
            max_delay_ms=MAX_DELAY_MS,
            **SESSION_KWARGS,
        )
        rows = support.tolist()
        for start in range(0, len(rows), 500):
            client.simulate_many(name, rows[start : start + 500])


def run_load(host: str, port: int, streams) -> dict:
    """All client streams at once, each on its own router connection."""
    latencies: list[float] = []
    values: dict[tuple[str, int], list[float]] = {}
    waits: list[tuple] = []

    async def one(name: str, si: int, stream) -> None:
        async with await AsyncServiceClient.connect(host, port) as client:
            out = []
            for query in stream:
                t0 = time.perf_counter()
                result = await client.request(
                    "evaluate", session=name, config=list(query)
                )
                latencies.append(time.perf_counter() - t0)
                out.append(result["value"])
                waits.append(_wire_waits(result))
            values[(name, si)] = out

    async def main():
        await asyncio.gather(
            *(one(name, si, stream) for name, si, stream in _stream_assignment(streams))
        )

    start = time.perf_counter()
    asyncio.run(main())
    seconds = time.perf_counter() - start
    ordered = [v for key in sorted(values) for v in values[key]]
    return _scenario_row(seconds, latencies, ordered, waits)


# ---------------------------------------------------------------------------
# drills (run against the two-worker deployment)
# ---------------------------------------------------------------------------
def run_migration_drill(client: ServiceClient, tmp_dir: pathlib.Path) -> dict:
    """snapshot → live-migrate → snapshot: byte-for-byte identical files."""
    session = SESSION_NAMES[0]
    before = pathlib.Path(
        client.snapshot(session, path=str(tmp_dir / "before"))["path"]
    )
    t0 = time.perf_counter()
    moved = client.migrate(session)
    migrate_seconds = time.perf_counter() - t0
    after = pathlib.Path(
        client.snapshot(session, path=str(tmp_dir / "after"))["path"]
    )
    return {
        "session": session,
        "source": moved["source"],
        "target": moved["target"],
        "migrate_seconds": round(migrate_seconds, 6),
        "snapshot_bytes": before.stat().st_size,
        "bitwise_preserved": before.read_bytes() == after.read_bytes(),
    }


def run_failover_drill(host: str, port: int, streams, support: np.ndarray) -> dict:
    """SIGKILL the busiest worker under live load; every session must
    come back from its replica with zero losses."""
    result: dict = {}

    async def main():
        async with await AsyncServiceClient.connect(host, port) as control:
            await control.replicate()  # replicas current as of this instant
            stats = await control.cluster_stats()
            owners = {name: stats["table"][name] for name in SESSION_NAMES}
            counts: dict[str, int] = {}
            for owner in owners.values():
                counts[owner] = counts.get(owner, 0) + 1
            victim = max(counts, key=lambda w: (counts[w], w))
            base_failovers = stats["counters"]["failovers"]

            stop = asyncio.Event()
            retries = 0
            served = 0

            async def loader(name: str, stream) -> None:
                nonlocal retries, served
                async with await AsyncServiceClient.connect(host, port) as client:
                    i = 0
                    while not stop.is_set():
                        query = stream[i % len(stream)]
                        i += 1
                        while True:
                            try:
                                await client.evaluate(name, query)
                                served += 1
                                break
                            except RemoteError as exc:
                                # The documented ride-through: retryable,
                                # hinted errors until failover completes.
                                if exc.kind not in RETRYABLE_KINDS:
                                    raise
                                retries += 1
                                hint = exc.retry_after_ms or 50.0
                                await asyncio.sleep(hint / 1000.0)

            loaders = [
                asyncio.create_task(loader(name, streams[si]))
                for si, name in enumerate(SESSION_NAMES)
            ]
            await asyncio.sleep(0.2)  # load established

            t0 = time.perf_counter()
            await control.request("kill_worker", worker=victim)
            deadline = t0 + FAILOVER_TIMEOUT
            while True:
                stats = await control.cluster_stats()
                live = {w["worker"] for w in stats["workers"] if w["alive"]}
                if stats["counters"]["failovers"] > base_failovers and all(
                    owner in live for owner in stats["table"].values()
                ):
                    break
                if time.perf_counter() > deadline:
                    raise RuntimeError(f"failover of {victim!r} not detected in time")
                await asyncio.sleep(0.05)
            detect_seconds = time.perf_counter() - t0

            await asyncio.sleep(0.3)  # let the load observe the new topology
            stop.set()
            await asyncio.gather(*loaders)
            stats = await control.cluster_stats()

            # Every session answers from replicated state: the support was
            # replicated before the kill, so a support point is an exact hit
            # on whichever worker now owns the session.
            probe = support[0].tolist()
            exact = [
                (await control.evaluate(name, probe)).exact_hit
                for name in SESSION_NAMES
            ]
            result.update(
                {
                    "victim": victim,
                    "sessions_on_victim": sorted(
                        n for n, owner in owners.items() if owner == victim
                    ),
                    "detect_seconds": round(detect_seconds, 6),
                    "sessions_lost": stats["counters"]["sessions_lost"],
                    "all_sessions_answer": all(exact),
                    "queries_during_drill": served,
                    "retries_observed": retries,
                }
            )

    asyncio.run(main())
    return result


# ---------------------------------------------------------------------------
# cluster lifecycle
# ---------------------------------------------------------------------------
class _SpawnedCluster:
    """A ``repro cluster`` subprocess (router + spawned workers) on an
    ephemeral port.  Fast health/replication intervals so the failover
    drill converges in benchmark time."""

    def __init__(self, workers: int) -> None:
        self._dir = tempfile.TemporaryDirectory(prefix="repro-bench-cluster-")
        base = pathlib.Path(self._dir.name)
        port_file = base / "router.port"
        self._stderr_path = base / "router.stderr"
        self._stderr = open(self._stderr_path, "wb")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--workers",
                str(workers),
                "--replica-dir",
                str(base / "replicas"),
                "--replication-interval",
                "0.5",
                "--health-interval",
                "0.2",
                # Slow requests (router + workers) capture their whole span
                # tree; the run dumps them into the provenance dir.
                "--slow-trace-ms",
                str(float(SLOW_TRACE_MS)),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=self._stderr,
        )
        deadline = time.perf_counter() + 120.0
        while time.perf_counter() < deadline:
            if port_file.exists() and port_file.read_text().strip():
                break
            if self.process.poll() is not None:
                raise RuntimeError(
                    "cluster subprocess died during startup:\n"
                    + self._stderr_path.read_text()
                )
            time.sleep(0.05)
        else:
            raise RuntimeError("cluster did not report a port within 120s")
        self.host = "127.0.0.1"
        self.port = int(port_file.read_text().strip())

    def stop(self) -> None:
        try:
            with ServiceClient(self.host, self.port, timeout=10.0) as client:
                client.shutdown()
            self.process.wait(timeout=30.0)
        except Exception:
            self.process.kill()
            self.process.wait(timeout=10.0)
        finally:
            self._stderr.close()
            self._dir.cleanup()


# ---------------------------------------------------------------------------
# the benchmark
# ---------------------------------------------------------------------------
def _measure_deployment(
    cluster: _SpawnedCluster, support, streams, repetitions: int
) -> dict:
    return _best_of_rows(
        repetitions, lambda: run_load(cluster.host, cluster.port, streams)
    )


def _assert_no_simulation_fallback(client: ServiceClient, n_support: int) -> None:
    for name in SESSION_NAMES:
        stats = client.stats(name)
        assert stats["n_simulated"] == n_support, (
            f"{name}: {stats['n_simulated']} simulations != {n_support} support "
            "points — a query fell back to simulation, the deployments are no "
            "longer comparable"
        )


def run_benchmark(
    *,
    n_support: int = N_SUPPORT,
    queries_per_client: int = QUERIES_PER_CLIENT,
    repetitions: int = REPETITIONS,
) -> dict:
    support, streams = _make_workload(n_support, queries_per_client)
    expected = _expected_values(_local_reference(support), streams)

    scenarios: dict[str, dict] = {}

    cluster = _SpawnedCluster(workers=1)
    try:
        with ServiceClient(cluster.host, cluster.port, retries=3) as client:
            _seed_sessions(client, support, workers=1)
            scenarios["single_worker"] = _measure_deployment(
                cluster, support, streams, repetitions
            )
            _assert_no_simulation_fallback(client, n_support)
    finally:
        cluster.stop()

    cluster = _SpawnedCluster(workers=2)
    try:
        with ServiceClient(cluster.host, cluster.port, retries=3) as client:
            _seed_sessions(client, support, workers=2)
            scenarios["two_workers"] = _measure_deployment(
                cluster, support, streams, repetitions
            )
            _assert_no_simulation_fallback(client, n_support)
            with tempfile.TemporaryDirectory(prefix="repro-bench-migr-") as tmp:
                migration = run_migration_drill(client, pathlib.Path(tmp))
        failover = run_failover_drill(cluster.host, cluster.port, streams, support)
        # Whatever the router + surviving workers captured above the
        # slow-trace threshold rides into the provenance dir.
        with ServiceClient(cluster.host, cluster.port, retries=3) as client:
            slow_traces = client.traces().get("slow_traces", [])
    finally:
        cluster.stop()

    # Equivalence: both deployments answered exactly like the local
    # estimator (to the batching envelope) — sharding changed nothing.
    for name in ("single_worker", "two_workers"):
        np.testing.assert_allclose(
            scenarios[name].pop("_values"), expected, rtol=1e-9, atol=1e-12
        )
    equivalence_ok = True

    speedup = round(
        scenarios["two_workers"]["qps"] / scenarios["single_worker"]["qps"], 2
    )
    cpus = os.cpu_count() or 1
    multicore = cpus >= MULTICORE_MIN_CPUS
    failover_lossless = (
        failover["sessions_lost"] == 0 and failover["all_sessions_answer"]
    )
    return {
        "benchmark": "cluster",
        "hardware": {
            "cpus": cpus,
            "machine": platform.machine(),
        },
        "workload": {
            "num_variables": NUM_VARIABLES,
            "distance": DISTANCE,
            "n_sessions": N_SESSIONS,
            "n_client_streams": len(streams),
            "n_support": n_support,
            "queries_per_client": queries_per_client,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY_MS,
            "query_model": "interleaved clustered sweep, sessions pinned round-robin",
        },
        "scenarios": scenarios,
        "speedup_cluster_vs_single": speedup,
        "migration": migration,
        "failover": failover,
        "equivalence_ok": equivalence_ok,
        "_slow_traces": slow_traces,  # stripped from the report; provenance only
        "acceptance": {
            "speedup_cluster_vs_single": speedup,
            "threshold": ACCEPTANCE_SPEEDUP,
            "cpus": cpus,
            "speedup_enforced": multicore,
            "migration_bitwise": migration["bitwise_preserved"],
            "failover_lossless": failover_lossless,
            "equivalence_ok": equivalence_ok,
            "passed": (
                migration["bitwise_preserved"]
                and failover_lossless
                and equivalence_ok
                and (speedup >= ACCEPTANCE_SPEEDUP or not multicore)
            ),
        },
    }


def print_summary(report: dict) -> None:
    for name in ("single_worker", "two_workers"):
        row = report["scenarios"][name]
        print(
            f"{name:<16s} {row['seconds']:>7.3f}s  {row['qps']:>8.1f} q/s  "
            f"p50={row['latency_ms']['p50']:.2f}ms  p99={row['latency_ms']['p99']:.2f}ms"
        )
        if row.get("queue_wait_ms"):
            print(
                f"{'':<16s} waits: queue p50={row['queue_wait_ms']['p50']:.2f}ms "
                f"p99={row['queue_wait_ms']['p99']:.2f}ms, "
                f"flush p50={row['flush_wait_ms']['p50']:.2f}ms "
                f"p99={row['flush_wait_ms']['p99']:.2f}ms"
            )
    migration = report["migration"]
    print(
        f"migration: {migration['session']} {migration['source']}->{migration['target']} "
        f"in {migration['migrate_seconds']:.3f}s, bitwise={migration['bitwise_preserved']}"
    )
    failover = report["failover"]
    print(
        f"failover: killed {failover['victim']} "
        f"({len(failover['sessions_on_victim'])} sessions), detected in "
        f"{failover['detect_seconds']:.2f}s, lost={failover['sessions_lost']}, "
        f"retries={failover['retries_observed']}"
    )
    acceptance = report["acceptance"]
    enforced = "enforced" if acceptance["speedup_enforced"] else (
        f"recorded only ({acceptance['cpus']} cpu)"
    )
    print(
        f"speedup: cluster-vs-single {report['speedup_cluster_vs_single']:.2f}x "
        f"(threshold {acceptance['threshold']}x {enforced}) "
        f"passed={acceptance['passed']}"
    )


def _extract_samples(report: dict) -> list[dict]:
    samples: list[dict] = []
    for name, row in (report.get("scenarios") or {}).items():
        waits = row.get("_waits") or []
        for i, seconds in enumerate(row.get("_latencies", [])):
            sample = {"label": name, "seconds": round(seconds, 6)}
            if i < len(waits):
                sample["queue_wait_ms"], sample["flush_wait_ms"] = waits[i]
            samples.append(sample)
    return samples


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def get_spec(name: str) -> WorkloadSpec:
    return SPEC


def run(name: str, args: argparse.Namespace) -> RunResult:
    spec = SPEC.resolve(quick=getattr(args, "quick", False))
    body = run_benchmark(
        n_support=spec.params["n_support"],
        queries_per_client=spec.params["queries_per_client"],
        repetitions=spec.repetitions,
    )
    samples = _extract_samples(body)
    slow_traces = body.pop("_slow_traces", [])
    report = finalize_report("cluster", body, seed=spec.seed, argv=sys.argv[1:])
    return RunResult(
        report=report,
        config=spec.to_config(),
        samples=samples,
        slow_traces=slow_traces,
    )


def main(argv: list[str] | None = None, default_output: pathlib.Path | None = None) -> int:
    """The historical ``bench_cluster.py`` CLI."""
    default_output = default_output or pathlib.Path("BENCH_cluster.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller support set and fewer queries per stream",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=default_output,
        help=f"report destination (default: {default_output})",
    )
    args = parser.parse_args(argv)

    result = run("cluster", args)
    write_report(result.report, args.output)
    print_summary(result.report)
    print("written:", args.output)
    return 0
