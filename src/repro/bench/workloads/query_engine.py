"""Query-engine workload: the vectorized engine vs the seed hot path.

Times a fixed interpolation-heavy sweep three ways at several support sizes:

* ``seed``     — a faithful re-implementation of the seed hot path: a
  list-of-rows cache whose ``points`` property re-``vstack``s on every
  access, a brute-force neighbourhood scan over all simulated points, and
  one bordered-system build + solve per query.  (Its only deviation from
  the seed is exact-coordinate cache keys, so all three variants compute
  identical results.)
* ``evaluate`` — the current per-query path: contiguous zero-copy cache,
  lattice bucket index, per-query solve.
* ``batch``    — ``KrigingEstimator.evaluate_batch``: additionally groups
  queries sharing a support set and factorizes each group's bordered
  matrix once.

Three engine-knob sections ride along: ``l2_index`` (brute vs KD-tree
radius queries under the L2 metric), ``parallel`` (threaded group solves,
recorded but not gated) and ``reuse`` (the incremental-growth
factor-cache scenario).  The sweep mimics a dense surface exploration
(cf. ``experiments/figure1``): query clusters jittered inside single
lattice cells, so clusters share neighbourhoods and the batch path has
real groups to exploit.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.bench.registry import RunResult
from repro.bench.report import finalize_report, write_report
from repro.bench.runner import SampleLog, measure
from repro.bench.spec import WorkloadSpec
from repro.core.distances import distances_to
from repro.core.estimator import KrigingEstimator
from repro.core.kriging import ordinary_kriging
from repro.core.models import ExponentialVariogram, LinearVariogram
from repro.core.neighborhood import find_neighbors

NUM_VARIABLES = 5
LATTICE = 12
DISTANCE = 4.0
NN_MIN = 1
N_QUERIES = 2000
SUPPORT_SIZES = (500, 2000, 5000)
QUICK_SUPPORT_SIZES = (500, 2000)
ACCEPTANCE_N = 2000
ACCEPTANCE_SPEEDUP = 5.0
PARALLEL_JOBS = 4

# Incremental-growth (factor reuse) scenario: a dense side-5 lattice so the
# neighbourhood of one query cluster holds hundreds of support points, and a
# bounded strictly-PD variogram so the shifted Gamma matrix factorizes (the
# piecewise-linear variogram on this lattice is rank-deficient by design —
# that regime falls back and is covered by the main sweep above).
REUSE_LATTICE = 5
REUSE_DISTANCE = 5.75
REUSE_QUERIES = 32
# The reuse scenario runs full-length even in --quick mode: shortening the
# round count under-amortizes the first-round fresh factorizations and the
# measured ratio drifts toward the regression-gate bound.
REUSE_ROUNDS = 10
REUSE_ACCEPTANCE_SPEEDUP = 1.5
REUSE_VARIOGRAM = ExponentialVariogram(sill=25.0, range_=8.0)

WORKLOAD_SEED = 0

SPEC = WorkloadSpec(
    name="query-engine",
    kind="query_engine",
    description=(
        "Interpolation-heavy sweep: seed hot path vs evaluate vs batch, "
        "plus l2-index, parallel and factor-reuse sections"
    ),
    seed=WORKLOAD_SEED,
    repetitions=2,
    params={
        "support_sizes": list(SUPPORT_SIZES),
        "n_queries": N_QUERIES,
        "reuse_rounds": REUSE_ROUNDS,
    },
    quick={
        "support_sizes": list(QUICK_SUPPORT_SIZES),
        "repetitions": 1,
    },
)

_COEFFS = np.array([1.0, -2.0, 0.5, 0.25, 1.5])


def _field(config) -> float:
    c = np.asarray(config, dtype=float)
    return float(c @ np.resize(_COEFFS, c.size) - 60.0)


# ----------------------------------------------------------------------
# Seed-faithful reference implementation (PR-0 hot path)
# ----------------------------------------------------------------------
class _SeedCache:
    """The seed's list-of-rows store: ``points`` vstacks on every access."""

    def __init__(self, num_variables: int) -> None:
        self.num_variables = num_variables
        self._points: list[np.ndarray] = []
        self._values: list[float] = []
        self._index: dict[bytes, int] = {}

    @property
    def points(self) -> np.ndarray:
        if not self._points:
            return np.empty((0, self.num_variables))
        return np.vstack(self._points)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def add(self, config: np.ndarray, value: float) -> None:
        self._index[config.tobytes()] = len(self._points)
        self._points.append(config.copy())
        self._values.append(float(value))

    def lookup(self, config: np.ndarray) -> float | None:
        row = self._index.get(config.tobytes())
        return self._values[row] if row is not None else None


def _seed_sweep(support, support_values, queries, variogram) -> list[float]:
    """The seed's evaluate loop: vstack + brute scan + per-query solve."""
    cache = _SeedCache(support.shape[1])
    for config, value in zip(support, support_values):
        cache.add(config, value)
    out: list[float] = []
    for query in queries:
        cached = cache.lookup(query)
        if cached is not None:
            out.append(cached)
            continue
        points = cache.points  # fresh vstack, every query
        dist = distances_to(points, query)  # brute scan of all points
        inside = np.flatnonzero(dist <= DISTANCE)
        neighbors = inside[np.argsort(dist[inside], kind="stable")]
        if neighbors.size > NN_MIN:
            result = ordinary_kriging(
                points[neighbors], cache.values[neighbors], query, variogram
            )
            out.append(result.estimate)
        else:
            value = _field(query)
            cache.add(query, value)
            out.append(value)
    return out


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def _make_workload(n_support: int, n_queries: int, seed: int = WORKLOAD_SEED):
    rng = np.random.default_rng(seed)
    support = set()
    while len(support) < n_support:
        point = tuple(int(x) for x in rng.integers(0, LATTICE, size=NUM_VARIABLES))
        support.add(point)
    support = np.asarray(sorted(support), dtype=np.float64)
    rng.shuffle(support)
    support_values = np.array([_field(p) for p in support])

    # Clustered fractional queries: each cluster jitters inside one lattice
    # cell around a support point, so its members share a neighbourhood.
    cluster_size = 20
    n_clusters = (n_queries + cluster_size - 1) // cluster_size
    centers = support[rng.integers(0, n_support, size=n_clusters)]
    queries = np.repeat(centers, cluster_size, axis=0)[:n_queries]
    queries = queries + rng.uniform(0.05, 0.45, size=queries.shape)
    return support, support_values, queries


def _engine_estimator(support, support_values, **kwargs) -> KrigingEstimator:
    kwargs.setdefault("distance", DISTANCE)
    kwargs.setdefault("nn_min", NN_MIN)
    kwargs.setdefault("variogram", LinearVariogram(1.0))
    est = KrigingEstimator(_field, NUM_VARIABLES, **kwargs)
    for config, value in zip(support, support_values):
        row = est.cache.add(config, value)
        est.neighbor_index.insert(config, row)
    return est


def _time(fn, *, repetitions: int = 1, samples: SampleLog | None = None, label: str = ""):
    best, result = measure(fn, repetitions)
    if samples is not None:
        samples.record(best, label)
    return best, result


def run_l2_index_benchmark(
    n_support: int = ACCEPTANCE_N,
    n_queries: int = N_QUERIES,
    repetitions: int = 2,
    samples: SampleLog | None = None,
) -> dict:
    """The L2 radius-query path: brute-force index versus the KD-tree.

    The gated ratio times :func:`~repro.core.neighborhood.find_neighbors`
    itself — the exact work the index prunes, and a stable ratio to gate on.
    The full interpolation sweep is recorded alongside for context (there
    the kriging solves dilute the search win).
    """
    support, support_values, queries = _make_workload(n_support, n_queries)
    query_timings = {}
    sweep_timings = {}
    outputs = {}
    for kind in ("brute", "kdtree"):
        est = _engine_estimator(
            support, support_values, metric="l2", neighbor_index=kind
        )
        points = est.cache.points
        index = est.neighbor_index
        find_neighbors(points, queries[0], DISTANCE, metric="l2", index=index)  # warm

        def _queries_only(points=points, index=index):
            return [
                find_neighbors(points, q, DISTANCE, metric="l2", index=index)
                for q in queries
            ]

        def _sweep(kind=kind):
            est = _engine_estimator(
                support, support_values, metric="l2", neighbor_index=kind
            )
            return est.evaluate_batch(queries)

        query_timings[kind], neighbor_lists = _time(
            _queries_only, repetitions=repetitions,
            samples=samples, label=f"l2_index.query_{kind}",
        )
        sweep_timings[kind], outputs[kind] = _time(
            _sweep, repetitions=repetitions,
            samples=samples, label=f"l2_index.sweep_{kind}",
        )
        outputs[f"{kind}_neighbors"] = neighbor_lists

    # The index is a pruning knob only: identical neighbourhoods and values.
    for brute_rows, kd_rows in zip(
        outputs["brute_neighbors"], outputs["kdtree_neighbors"]
    ):
        np.testing.assert_array_equal(brute_rows, kd_rows)
    np.testing.assert_allclose(
        [o.value for o in outputs["brute"]],
        [o.value for o in outputs["kdtree"]],
        rtol=1e-9,
        atol=1e-9,
    )
    return {
        "n_support": n_support,
        "n_queries": n_queries,
        "metric": "l2",
        "query_brute_seconds": round(query_timings["brute"], 6),
        "query_kdtree_seconds": round(query_timings["kdtree"], 6),
        "speedup_kdtree_vs_brute": round(
            query_timings["brute"] / query_timings["kdtree"], 2
        ),
        "sweep_brute_seconds": round(sweep_timings["brute"], 6),
        "sweep_kdtree_seconds": round(sweep_timings["kdtree"], 6),
        "sweep_speedup_kdtree_vs_brute": round(
            sweep_timings["brute"] / sweep_timings["kdtree"], 2
        ),
    }


def run_parallel_benchmark(
    n_support: int = ACCEPTANCE_N,
    n_queries: int = N_QUERIES,
    repetitions: int = 2,
    n_jobs: int = PARALLEL_JOBS,
    samples: SampleLog | None = None,
) -> dict:
    """``evaluate_batch`` wall clock: sequential versus threaded group solves."""
    support, support_values, queries = _make_workload(n_support, n_queries)
    timings = {}
    for jobs in (1, n_jobs):
        def _sweep(jobs=jobs):
            est = _engine_estimator(support, support_values, n_jobs=jobs)
            return est.evaluate_batch(queries)

        timings[jobs], _ = _time(
            _sweep, repetitions=repetitions,
            samples=samples, label=f"parallel.jobs{jobs}",
        )
    return {
        "n_support": n_support,
        "n_queries": n_queries,
        "n_jobs": n_jobs,
        "serial_seconds": round(timings[1], 6),
        "parallel_seconds": round(timings[n_jobs], 6),
        "speedup_parallel_vs_serial": round(timings[1] / timings[n_jobs], 2),
    }


def run_reuse_benchmark(
    n_support: int = ACCEPTANCE_N,
    n_rounds: int = REUSE_ROUNDS,
    n_queries: int = REUSE_QUERIES,
    repetitions: int = 2,
    samples: SampleLog | None = None,
) -> dict:
    """The incremental-growth scenario: factor-cache reuse on versus off.

    Optimizer loops evaluate a cluster of candidates, simulate the winner,
    and re-evaluate — so consecutive rounds krige over support sets that
    differ by exactly one point.  With the reuse layer each round's
    factorizations derive from the previous round's by rank-1 row edits;
    without it every round refactorizes every group from scratch.  Both
    variants must produce the same estimates to 1e-9.
    """
    rng = np.random.default_rng(7)
    support = set()
    while len(support) < n_support:
        point = tuple(int(x) for x in rng.integers(0, REUSE_LATTICE, size=NUM_VARIABLES))
        support.add(point)
    support = np.asarray(sorted(support), dtype=np.float64)
    support_values = np.array([_field(p) for p in support])
    center = support[rng.integers(0, n_support)]
    queries = center[None, :] + rng.uniform(0.1, 0.4, size=(n_queries, NUM_VARIABLES))
    new_points = [
        center + rng.uniform(0.45, 0.55, size=NUM_VARIABLES)
        * rng.choice([-1.0, 1.0], size=NUM_VARIABLES)
        for _ in range(n_rounds)
    ]

    def _incremental(factor_cache: bool, rounds: list | None = None):
        est = _engine_estimator(
            support,
            support_values,
            distance=REUSE_DISTANCE,
            variogram=REUSE_VARIOGRAM,
            factor_cache=factor_cache,
        )
        values = []
        for new_point in rounds if rounds is not None else new_points:
            values.append([o.value for o in est.evaluate_batch(queries)])
            est.force_simulate(new_point)
        return values, est.stats.factor

    # Warm-up (both variants share it): BLAS pools, allocator arenas and the
    # lattice index are all hot before anything is timed, so a single-
    # repetition --quick run measures the same regime as the full run.
    _incremental(True, rounds=new_points[:2])

    timings = {}
    outputs = {}
    factor_stats = None
    for enabled in (True, False):
        key = "reuse" if enabled else "fresh"
        timings[key], (outputs[key], stats) = _time(
            lambda enabled=enabled: _incremental(enabled), repetitions=repetitions,
            samples=samples, label=f"reuse.{key}",
        )
        if enabled:
            factor_stats = stats

    # The reuse layer is a performance knob only: identical estimates.
    np.testing.assert_allclose(
        outputs["reuse"], outputs["fresh"], rtol=1e-9, atol=1e-12
    )
    group_size = int(
        np.flatnonzero(
            np.abs(support - np.floor(queries[0])).sum(axis=1) <= REUSE_DISTANCE
        ).size
    )
    counters = dict(factor_stats.as_pairs())
    return {
        "n_support": n_support,
        "n_rounds": n_rounds,
        "n_queries_per_round": n_queries,
        "n_support_group": group_size,
        "reuse_fresh_seconds": round(timings["fresh"], 6),
        "reuse_cached_seconds": round(timings["reuse"], 6),
        "speedup_reuse_vs_fresh": round(timings["fresh"] / timings["reuse"], 2),
        "reuse_factor_hits": counters["hits"],
        "reuse_factor_updates": counters["updates"],
        "reuse_factor_update_points": counters["update_points"],
        "reuse_factor_fresh": counters["fresh"],
        "reuse_factor_fallbacks": counters["fallbacks"],
    }


def run_benchmark(
    support_sizes=SUPPORT_SIZES,
    n_queries: int = N_QUERIES,
    repetitions: int = 2,
    reuse_rounds: int = REUSE_ROUNDS,
    samples: SampleLog | None = None,
) -> dict:
    variogram = LinearVariogram(1.0)
    results = []
    for n_support in support_sizes:
        support, support_values, queries = _make_workload(n_support, n_queries)

        def _eval_sweep():
            est = _engine_estimator(support, support_values)
            return [est.evaluate(query) for query in queries]

        t_seed, seed_values = _time(
            lambda: _seed_sweep(support, support_values, queries, variogram),
            repetitions=repetitions,
            samples=samples, label=f"n{n_support}.seed",
        )
        t_eval, eval_out = _time(
            _eval_sweep, repetitions=repetitions,
            samples=samples, label=f"n{n_support}.evaluate",
        )
        t_batch, batch_out = _time(
            lambda: _engine_estimator(support, support_values).evaluate_batch(queries),
            repetitions=repetitions,
            samples=samples, label=f"n{n_support}.batch",
        )

        # All three variants answer the sweep identically.
        np.testing.assert_allclose(
            seed_values, [o.value for o in eval_out], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            seed_values, [o.value for o in batch_out], rtol=1e-9, atol=1e-9
        )

        results.append(
            {
                "n_support": n_support,
                "n_queries": n_queries,
                "interpolated": sum(1 for o in batch_out if o.interpolated),
                "seed_seconds": round(t_seed, 6),
                "evaluate_seconds": round(t_eval, 6),
                "evaluate_batch_seconds": round(t_batch, 6),
                "speedup_evaluate_vs_seed": round(t_seed / t_eval, 2),
                "speedup_batch_vs_seed": round(t_seed / t_batch, 2),
                "speedup_batch_vs_evaluate": round(t_eval / t_batch, 2),
            }
        )

    acceptance_row = next(r for r in results if r["n_support"] == ACCEPTANCE_N)
    l2 = run_l2_index_benchmark(
        n_queries=n_queries, repetitions=repetitions, samples=samples
    )
    parallel = run_parallel_benchmark(
        n_queries=n_queries, repetitions=repetitions, samples=samples
    )
    reuse = run_reuse_benchmark(
        n_rounds=reuse_rounds, repetitions=repetitions, samples=samples
    )
    # The zero-copy solve-path sections (shm arena vs pickled process
    # dispatch, stacked vs per-group factorization) ride along at reduced
    # scale; the dedicated ``solve`` workload runs them full-size.  Their
    # ratios gate multi-core-guarded, like the cluster floor.
    from repro.bench.workloads.solve import run_shm_benchmark, run_stacked_benchmark

    shm = run_shm_benchmark(
        n_groups=128, group_size=32, repetitions=repetitions, samples=samples
    )
    stacked = run_stacked_benchmark(
        n_groups=60, repetitions=repetitions, samples=samples
    )
    report = {
        "benchmark": "query_engine",
        "workload": {
            "num_variables": NUM_VARIABLES,
            "lattice": LATTICE,
            "distance": DISTANCE,
            "nn_min": NN_MIN,
            "query_model": "clustered fractional sweep (20 queries/cell)",
        },
        "results": results,
        "l2_index": l2,
        "parallel": parallel,
        "reuse": reuse,
        "shm": shm,
        "stacked": stacked,
        "acceptance": {
            "n_support": ACCEPTANCE_N,
            "speedup_batch_vs_seed": acceptance_row["speedup_batch_vs_seed"],
            "threshold": ACCEPTANCE_SPEEDUP,
            "speedup_kdtree_vs_brute": l2["speedup_kdtree_vs_brute"],
            "speedup_reuse_vs_fresh": reuse["speedup_reuse_vs_fresh"],
            "reuse_threshold": REUSE_ACCEPTANCE_SPEEDUP,
            "passed": (
                acceptance_row["speedup_batch_vs_seed"] >= ACCEPTANCE_SPEEDUP
                and l2["speedup_kdtree_vs_brute"] > 1.0
                and reuse["speedup_reuse_vs_fresh"] >= REUSE_ACCEPTANCE_SPEEDUP
            ),
        },
    }
    return report


def print_summary(report: dict) -> None:
    for row in report["results"]:
        print(
            f"n={row['n_support']:>5}  seed={row['seed_seconds']:.3f}s  "
            f"evaluate={row['evaluate_seconds']:.3f}s  "
            f"batch={row['evaluate_batch_seconds']:.3f}s  "
            f"batch-vs-seed={row['speedup_batch_vs_seed']:.1f}x"
        )
    l2 = report["l2_index"]
    print(
        f"l2 n={l2['n_support']}  queries: brute={l2['query_brute_seconds']:.3f}s  "
        f"kdtree={l2['query_kdtree_seconds']:.3f}s  "
        f"({l2['speedup_kdtree_vs_brute']:.2f}x)  "
        f"sweep: {l2['sweep_speedup_kdtree_vs_brute']:.2f}x"
    )
    par = report["parallel"]
    print(
        f"parallel n={par['n_support']}  serial={par['serial_seconds']:.3f}s  "
        f"n_jobs={par['n_jobs']}: {par['parallel_seconds']:.3f}s  "
        f"({par['speedup_parallel_vs_serial']:.2f}x)"
    )
    reuse = report["reuse"]
    print(
        f"reuse n={reuse['n_support']}  group~{reuse['n_support_group']}  "
        f"fresh={reuse['reuse_fresh_seconds']:.3f}s  "
        f"cached={reuse['reuse_cached_seconds']:.3f}s  "
        f"({reuse['speedup_reuse_vs_fresh']:.2f}x, "
        f"{reuse['reuse_factor_updates']} updates / "
        f"{reuse['reuse_factor_fresh']} fresh)"
    )
    shm = report.get("shm") or {}
    if shm.get("skipped"):
        print(f"shm: skipped ({shm.get('reason', 'unavailable')})")
    elif shm:
        print(
            f"shm n_groups={shm['n_groups']} support={shm['n_support_per_group']}  "
            f"pickled={shm['pickled_seconds']:.3f}s  shm={shm['shm_seconds']:.3f}s  "
            f"({shm['speedup_shm_vs_pickled']:.2f}x)"
        )
    stacked = report.get("stacked")
    if stacked:
        print(
            f"stacked n_groups={stacked['n_groups']}  "
            f"per-group={stacked['per_group_seconds']:.3f}s  "
            f"stacked={stacked['stacked_seconds']:.3f}s  "
            f"({stacked['speedup_stacked_vs_pergroup']:.2f}x)"
        )


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def get_spec(name: str) -> WorkloadSpec:
    return SPEC


def run(name: str, args: argparse.Namespace) -> RunResult:
    spec = SPEC.resolve(quick=getattr(args, "quick", False))
    samples = SampleLog()
    body = run_benchmark(
        support_sizes=tuple(spec.params["support_sizes"]),
        n_queries=spec.params["n_queries"],
        repetitions=spec.repetitions,
        reuse_rounds=spec.params["reuse_rounds"],
        samples=samples,
    )
    report = finalize_report(
        "query_engine", body, seed=spec.seed, argv=sys.argv[1:]
    )
    return RunResult(report=report, config=spec.to_config(), samples=samples.rows())


def main(argv: list[str] | None = None, default_output: pathlib.Path | None = None) -> int:
    """The historical ``bench_query_engine.py`` CLI."""
    default_output = default_output or pathlib.Path("BENCH_query_engine.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer support sizes, one repetition",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=default_output,
        help=f"report destination (default: {default_output})",
    )
    args = parser.parse_args(argv)

    result = run("query-engine", args)
    write_report(result.report, args.output)
    print_summary(result.report)
    print("written:", args.output)
    return 0
