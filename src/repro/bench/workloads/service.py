"""Service workload: multi-client load against the evaluation service.

Measures the cross-client micro-batching win: ``N_CLIENTS`` logical clients
each issue the same interpolation-heavy query stream against one shared
session, four ways —

* ``sequential``          — one client at a time, one query per round trip
  (``max_batch=1``: every request flushes alone).  The N-sequential-loops
  baseline of the acceptance criterion.
* ``concurrent_unbatched``— all clients in flight at once but with
  coalescing disabled (``max_batch=1``): the win from overlapping network
  round trips alone.
* ``concurrent_batched``  — all clients in flight through the
  micro-batcher: concurrent requests coalesce into shared
  ``evaluate_batch`` flushes, so clients working near the same lattice
  cells share one bordered-matrix factorization (and the factor cache's
  rank-1 bridges) instead of paying one solve each.
* ``open_loop``           — the batched path under *open-loop* load: each
  client issues its stream on a fixed arrival schedule
  (:func:`repro.bench.runner.paced_arrivals`), and every latency is
  measured from the request's *scheduled* arrival, so schedule slip and
  queueing delay land in the tail instead of silently throttling the
  offered load.  Recorded (with jitter) but not gated — absolute rates are
  machine-dependent.

Clients interleave over shared cluster centers, the regime of parallel
word-length searches over one application.  Every query interpolates (the
support lattice is pre-seeded over the wire with bulk ``simulate``), so
the scenarios answer identical queries from identical session state and
must agree to 1e-9 — the speedups are pure scheduling.

A snapshot section rides along: the loaded session is snapshotted,
restored twice, and the two restored sessions must match byte for byte —
identical snapshot files (cache arrays and manifest) and identical probe
evaluations (the acceptance criterion's determinism check).

By default the benchmark spawns its own server subprocess on an ephemeral
port; ``--connect HOST:PORT`` targets an already-running ``repro serve``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

import numpy as np

import repro
from repro.bench.registry import RunResult
from repro.bench.report import finalize_report, write_report
from repro.bench.runner import best_of as _best_of_rows
from repro.bench.runner import latency_summary, paced_arrivals
from repro.bench.spec import LoadSpec, WorkloadSpec
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.session import load_snapshot

_SRC_ROOT = pathlib.Path(repro.__file__).resolve().parents[1]

NUM_VARIABLES = 5
LATTICE = 6
DISTANCE = 4.0
N_CLIENTS = 8
N_SUPPORT = 1500
QUERIES_PER_CLIENT = 160
REPETITIONS = 2
QUICK_SUPPORT = 700
QUICK_QUERIES_PER_CLIENT = 48
QUICK_REPETITIONS = 1
MAX_BATCH = 64
MAX_DELAY_MS = 2.0
ACCEPTANCE_SPEEDUP = 1.3
SNAPSHOT_PROBES = 24
OPEN_LOOP_RATE_HZ = 40.0

WORKLOAD_SEED = 0

SIMULATOR = {
    "kind": "linear",
    "coefficients": [1.0, -2.0, 0.5, 0.25, 1.5],
    "offset": -60.0,
}
# A fixed, strictly-PD bounded variogram (shipped as a model-state dict):
# the piecewise-linear model is rank-deficient on dense integer lattices, so
# it would lock the whole run out of the factorization-reuse layer and turn
# the comparison into an lstsq-overhead measurement.
SESSION_KWARGS = dict(
    num_variables=NUM_VARIABLES,
    distance=DISTANCE,
    nn_min=1,
    variogram={
        "family": "ExponentialVariogram",
        "params": {"sill": 25.0, "range_": 8.0, "nugget_": 0.0},
    },
)

SPEC = WorkloadSpec(
    name="service",
    kind="service",
    description=(
        "Multi-client load generator: sequential vs concurrent vs batched "
        "vs open-loop scheduling, plus snapshot round-trip determinism"
    ),
    seed=WORKLOAD_SEED,
    repetitions=REPETITIONS,
    load=LoadSpec(mode="closed", clients=N_CLIENTS),
    params={
        "n_support": N_SUPPORT,
        "queries_per_client": QUERIES_PER_CLIENT,
        "open_loop_rate_hz": OPEN_LOOP_RATE_HZ,
    },
    quick={
        "n_support": QUICK_SUPPORT,
        "queries_per_client": QUICK_QUERIES_PER_CLIENT,
        "repetitions": QUICK_REPETITIONS,
    },
)

#: Per-coordinate query jitter inside a lattice cell; its L1 norm is at most
#: ``0.12 * NUM_VARIABLES = 0.6``, which bounds how much a query can drift
#: from its cluster center (small enough that most of a cluster shares one
#: support signature — the shared-factorization case).
JITTER = (0.02, 0.12)


def _make_workload(n_support: int, queries_per_client: int, seed: int = WORKLOAD_SEED):
    """Support lattice plus per-client query streams over shared clusters.

    Queries jitter inside the lattice cells of shared cluster centers, and
    the streams interleave center-first — so at any instant the concurrent
    clients are asking about the same handful of neighbourhoods, which is
    exactly what the micro-batcher coalesces into shared factorizations.

    Centers are screened so every query is *guaranteed* to interpolate
    (>= 2 support points within ``DISTANCE`` whatever the jitter): the
    scenarios then answer identical queries from identical session state
    and stay comparable — no query ever mutates the cache.
    """
    rng = np.random.default_rng(seed)
    support = set()
    while len(support) < n_support:
        point = tuple(int(x) for x in rng.integers(0, LATTICE, size=NUM_VARIABLES))
        support.add(point)
    support = np.asarray(sorted(support), dtype=np.float64)
    rng.shuffle(support)

    max_jitter = JITTER[1] * NUM_VARIABLES
    candidates = support[rng.permutation(n_support)]
    counts = np.abs(candidates[:, None, :] - support[None, :, :]).sum(axis=2)
    eligible = candidates[(counts <= DISTANCE - max_jitter).sum(axis=1) >= 4]
    n_centers = max(queries_per_client // 4, 1)
    if eligible.shape[0] < n_centers:
        raise RuntimeError(
            f"only {eligible.shape[0]} eligible cluster centers for {n_centers}; "
            "increase n_support or DISTANCE"
        )
    centers = eligible[:n_centers]
    streams = []
    for _ in range(N_CLIENTS):
        jitter = rng.uniform(*JITTER, size=(queries_per_client, NUM_VARIABLES))
        cluster = centers[np.arange(queries_per_client) % n_centers]
        streams.append((cluster + jitter).tolist())
    return support, streams


def _scenario_row(
    seconds: float,
    latencies: list[float],
    values: list[float],
    waits: list[tuple] | None = None,
) -> dict:
    n = len(latencies)
    row = {
        "n_queries": n,
        "seconds": round(seconds, 6),
        "qps": round(n / seconds, 2),
        "latency_ms": latency_summary(latencies),
        "_values": values,  # stripped before writing; equivalence check only
        "_latencies": list(latencies),  # stripped; raw samples for provenance
    }
    if waits:
        # Per-request hop timings the server stamps on every coalesced
        # evaluate response: time spent in the micro-batcher queue and in
        # the flush that solved it (latency_summary wants seconds).
        queue = [w[0] / 1000.0 for w in waits if isinstance(w[0], (int, float))]
        flush = [w[1] / 1000.0 for w in waits if isinstance(w[1], (int, float))]
        row["queue_wait_ms"] = latency_summary(queue)
        row["flush_wait_ms"] = latency_summary(flush)
        row["_waits"] = [list(w) for w in waits]
    return row


def _seed_session(client: ServiceClient, session: str, support, *, max_batch: int) -> None:
    client.create_session(
        session,
        simulator=SIMULATOR,
        replace=True,
        max_batch=max_batch,
        max_delay_ms=MAX_DELAY_MS,
        **SESSION_KWARGS,
    )
    rows = support.tolist()
    for start in range(0, len(rows), 500):
        client.simulate_many(session, rows[start : start + 500])


def _wire_waits(result: dict) -> tuple:
    return (result.get("queue_wait_ms"), result.get("flush_wait_ms"))


def run_sequential(client: ServiceClient, session: str, streams) -> dict:
    """Each client's loop in turn, one blocking round trip per query."""
    latencies: list[float] = []
    values: list[float] = []
    waits: list[tuple] = []
    start = time.perf_counter()
    for stream in streams:
        for query in stream:
            t0 = time.perf_counter()
            result = client.request("evaluate", session=session, config=list(query))
            latencies.append(time.perf_counter() - t0)
            values.append(result["value"])
            waits.append(_wire_waits(result))
    return _scenario_row(time.perf_counter() - start, latencies, values, waits)


async def _client_loop(
    host, port, session, stream, latencies, values, waits, trace_sample=0.0
):
    async with await AsyncServiceClient.connect(
        host, port, trace_sample=trace_sample
    ) as client:
        for query in stream:
            t0 = time.perf_counter()
            result = await client.request(
                "evaluate", session=session, config=list(query)
            )
            latencies.append((query, time.perf_counter() - t0))
            values.append((tuple(query), result["value"]))
            waits.append(_wire_waits(result))


def run_concurrent(
    host: str, port: int, session: str, streams, *, trace_sample: float = 0.0
) -> dict:
    """All client loops at once, each on its own connection."""
    latencies: list = []
    values: list = []
    waits: list = []

    async def main():
        await asyncio.gather(
            *(
                _client_loop(
                    host, port, session, stream, latencies, values, waits,
                    trace_sample,
                )
                for stream in streams
            )
        )

    start = time.perf_counter()
    asyncio.run(main())
    seconds = time.perf_counter() - start
    by_query = {key: value for key, value in values}
    ordered = [by_query[tuple(q)] for stream in streams for q in stream]
    return _scenario_row(seconds, [lat for _, lat in latencies], ordered, waits)


async def _open_loop_client(
    host, port, session, stream, rate_hz, latencies, values, waits
):
    """One paced client: requests due at ``i / rate_hz``; each latency is
    measured from the request's *scheduled* arrival, so a response that
    blocks the connection pushes schedule slip into the next latencies."""
    async with await AsyncServiceClient.connect(host, port) as client:
        t0 = time.perf_counter()
        for due, query in zip(
            paced_arrivals(rate_hz, n_arrivals=len(stream)), stream
        ):
            delay = due - (time.perf_counter() - t0)
            if delay > 0:
                await asyncio.sleep(delay)
            result = await client.request(
                "evaluate", session=session, config=list(query)
            )
            latencies.append((query, time.perf_counter() - t0 - due))
            values.append((tuple(query), result["value"]))
            waits.append(_wire_waits(result))


def run_open_loop(
    host: str, port: int, session: str, streams, rate_hz: float
) -> dict:
    """All clients on fixed arrival schedules against the batched session."""
    latencies: list = []
    values: list = []
    waits: list = []

    async def main():
        await asyncio.gather(
            *(
                _open_loop_client(
                    host, port, session, stream, rate_hz, latencies, values, waits
                )
                for stream in streams
            )
        )

    start = time.perf_counter()
    asyncio.run(main())
    seconds = time.perf_counter() - start
    by_query = {key: value for key, value in values}
    ordered = [by_query[tuple(q)] for stream in streams for q in stream]
    row = _scenario_row(seconds, [lat for _, lat in latencies], ordered, waits)
    row["offered_rate_hz"] = round(rate_hz * len(streams), 2)
    return row


def run_snapshot_roundtrip(
    client: ServiceClient, session: str, streams, tmp_dir: pathlib.Path
) -> dict:
    """Snapshot → restore ×2 → byte-for-byte determinism checks."""
    probes = [q for stream in streams for q in stream][:SNAPSHOT_PROBES]
    original = pathlib.Path(
        client.snapshot(session, path=str(tmp_dir / "original"))["path"]
    )
    t0 = time.perf_counter()
    restored = []
    for copy in ("restore_a", "restore_b"):
        client.restore(path=str(original), session=copy, replace=True)
        restored.append(
            pathlib.Path(client.snapshot(copy, path=str(tmp_dir / copy))["path"])
        )
    roundtrip_seconds = time.perf_counter() - t0

    states = [load_snapshot(path) for path in (original, *restored)]
    arrays_bitwise = all(
        np.array_equal(states[0]["estimator"]["cache"]["points"], s["estimator"]["cache"]["points"])
        and np.array_equal(states[0]["estimator"]["cache"]["values"], s["estimator"]["cache"]["values"])
        for s in states[1:]
    )
    # Two cold restores answer the probes bit-identically; the original
    # (warm factor cache) agrees within the engine's envelope.
    out_a = [o.value for o in client.evaluate_many("restore_a", probes)]
    out_b = [o.value for o in client.evaluate_many("restore_b", probes)]
    out_orig = [o.value for o in client.evaluate_many(session, probes)]
    restored_bitwise = out_a == out_b
    np.testing.assert_allclose(out_orig, out_a, rtol=1e-9, atol=1e-12)
    # Compare the JSON manifests only: the cache and factor-cache sections
    # are array payloads (and re-snapshotting a restored session rebuilds
    # its factors from scratch, so they may legitimately differ).
    _payload_keys = ("cache", "factor_entries")

    def _manifest(state):
        return json.dumps(
            {k: v for k, v in state["estimator"].items() if k not in _payload_keys},
            sort_keys=True,
        )

    manifests_equal = all(_manifest(states[0]) == _manifest(s) for s in states[1:])
    return {
        "cache_size": int(states[0]["estimator"]["cache"]["points"].shape[0]),
        "file_bytes": original.stat().st_size,
        "roundtrip_seconds": round(roundtrip_seconds, 6),
        "n_probes": len(probes),
        "roundtrip_bitwise": bool(
            arrays_bitwise and restored_bitwise and manifests_equal
        ),
    }


def run_benchmark(
    host: str,
    port: int,
    *,
    n_support: int = N_SUPPORT,
    queries_per_client: int = QUERIES_PER_CLIENT,
    repetitions: int = REPETITIONS,
    open_loop_rate_hz: float = OPEN_LOOP_RATE_HZ,
) -> dict:
    support, streams = _make_workload(n_support, queries_per_client)
    scenarios = {}
    with ServiceClient(host, port) as client:
        # Fresh, identically-seeded session per scenario repetition:
        # identical state, identical queries — the timings differ only in
        # scheduling.  Best-of-N, like the query-engine bench, so one noisy
        # scheduler hiccup cannot fail the gate.
        def best_of(session: str, max_batch: int, run) -> dict:
            def run_once() -> dict:
                _seed_session(client, session, support, max_batch=max_batch)
                return run(session)

            return _best_of_rows(repetitions, run_once)

        scenarios["sequential"] = best_of(
            "bench-seq", 1, lambda s: run_sequential(client, s, streams)
        )
        scenarios["concurrent_unbatched"] = best_of(
            "bench-solo", 1, lambda s: run_concurrent(host, port, s, streams)
        )
        scenarios["concurrent_batched"] = best_of(
            "bench-batched", MAX_BATCH, lambda s: run_concurrent(host, port, s, streams)
        )
        # The batched scenario again with every request traced end to end:
        # the qps delta is the tracing overhead, and the value-equivalence
        # check below proves tracing never touches the numerics.
        scenarios["concurrent_batched_traced"] = best_of(
            "bench-traced",
            MAX_BATCH,
            lambda s: run_concurrent(host, port, s, streams, trace_sample=1.0),
        )
        # Open-loop rides on its own batched session, once (fixed offered
        # load: best-of-N would only pick the luckiest schedule).
        scenarios["open_loop"] = best_of(
            "bench-open",
            MAX_BATCH,
            lambda s: run_open_loop(host, port, s, streams, open_loop_rate_hz),
        )

        # Pure-scheduling contract: all scenarios answered identically
        # (tracing included — observability must be invisible to results).
        reference = scenarios["sequential"].pop("_values")
        for name in (
            "concurrent_unbatched",
            "concurrent_batched",
            "concurrent_batched_traced",
            "open_loop",
        ):
            np.testing.assert_allclose(
                reference, scenarios[name].pop("_values"), rtol=1e-9, atol=1e-12
            )
        for name in (
            "bench-seq", "bench-solo", "bench-batched", "bench-traced", "bench-open"
        ):
            stats = client.stats(name)
            assert stats["n_simulated"] == len(support), (
                f"{name}: {stats['n_simulated']} simulations != {len(support)} "
                "support points — a query fell back to simulation, the "
                "scenarios are no longer comparable"
            )
        batcher_stats = client.stats("bench-batched")["batcher"]

        with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as tmp:
            snapshot = run_snapshot_roundtrip(
                client, "bench-batched", streams, pathlib.Path(tmp)
            )

        # Whatever the server promoted to its slow-trace buffer during the
        # run rides into the provenance dir (slow_traces.json).
        slow_traces = client.traces().get("slow_traces", [])

    traced_qps = scenarios["concurrent_batched_traced"]["qps"]
    untraced_qps = scenarios["concurrent_batched"]["qps"]
    tracing = {
        "sample_rate": 1.0,
        "qps_untraced": untraced_qps,
        "qps_traced": traced_qps,
        "overhead_pct": round(100.0 * (untraced_qps / traced_qps - 1.0), 2),
    }

    speedup_seq = round(
        scenarios["concurrent_batched"]["qps"] / scenarios["sequential"]["qps"], 2
    )
    speedup_solo = round(
        scenarios["concurrent_batched"]["qps"]
        / scenarios["concurrent_unbatched"]["qps"],
        2,
    )
    return {
        "benchmark": "service",
        "workload": {
            "num_variables": NUM_VARIABLES,
            "lattice": LATTICE,
            "distance": DISTANCE,
            "n_clients": N_CLIENTS,
            "n_support": n_support,
            "queries_per_client": queries_per_client,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY_MS,
            "open_loop_rate_hz": open_loop_rate_hz,
            "query_model": "interleaved clustered sweep (shared centers)",
        },
        "scenarios": scenarios,
        "batcher": batcher_stats,
        "snapshot": snapshot,
        "tracing": tracing,
        "_slow_traces": slow_traces,  # stripped from the report; provenance only
        "speedup_batched_vs_sequential": speedup_seq,
        "speedup_batched_vs_unbatched": speedup_solo,
        "acceptance": {
            "n_clients": N_CLIENTS,
            "speedup_batched_vs_sequential": speedup_seq,
            "threshold": ACCEPTANCE_SPEEDUP,
            "snapshot_roundtrip_bitwise": snapshot["roundtrip_bitwise"],
            "passed": (
                speedup_seq >= ACCEPTANCE_SPEEDUP and snapshot["roundtrip_bitwise"]
            ),
        },
    }


# ---------------------------------------------------------------------------
# server lifecycle
# ---------------------------------------------------------------------------
#: Dispatch spans at least this slow are always captured by a spawned
#: server, whatever the client sampling rate — they land in the provenance
#: dir as ``slow_traces.json``.
SLOW_TRACE_MS = 250.0


class _SpawnedServer:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, *, slow_trace_ms: float = SLOW_TRACE_MS) -> None:
        self._dir = tempfile.TemporaryDirectory(prefix="repro-bench-serve-")
        port_file = pathlib.Path(self._dir.name) / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--slow-trace-ms",
                str(float(slow_trace_ms)),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            if port_file.exists() and port_file.read_text().strip():
                break
            if self.process.poll() is not None:
                raise RuntimeError("server subprocess died during startup")
            time.sleep(0.05)
        else:
            raise RuntimeError("server did not report a port within 30s")
        self.host = "127.0.0.1"
        self.port = int(port_file.read_text().strip())

    def stop(self) -> None:
        try:
            with ServiceClient(self.host, self.port, timeout=5.0) as client:
                client.shutdown()
            self.process.wait(timeout=10.0)
        except Exception:
            self.process.kill()
            self.process.wait(timeout=10.0)
        finally:
            self._dir.cleanup()


def print_summary(report: dict) -> None:
    for name in (
        "sequential",
        "concurrent_unbatched",
        "concurrent_batched",
        "concurrent_batched_traced",
        "open_loop",
    ):
        row = report["scenarios"][name]
        print(
            f"{name:<25s} {row['seconds']:>7.3f}s  {row['qps']:>8.1f} q/s  "
            f"p50={row['latency_ms']['p50']:.2f}ms  p99={row['latency_ms']['p99']:.2f}ms"
        )
    batched = report["scenarios"]["concurrent_batched"]
    if batched.get("queue_wait_ms"):
        print(
            f"batched waits: queue p50={batched['queue_wait_ms']['p50']:.2f}ms "
            f"p99={batched['queue_wait_ms']['p99']:.2f}ms, "
            f"flush p50={batched['flush_wait_ms']['p50']:.2f}ms "
            f"p99={batched['flush_wait_ms']['p99']:.2f}ms"
        )
    tracing = report.get("tracing", {})
    if tracing:
        print(
            f"tracing: {tracing['qps_traced']:.1f} q/s traced vs "
            f"{tracing['qps_untraced']:.1f} untraced "
            f"({tracing['overhead_pct']:+.1f}% overhead)"
        )
    batcher = report["batcher"]
    print(
        f"batcher: {batcher['requests']} requests in {batcher['flushes']} flushes "
        f"(mean batch {batcher['batch_size']['mean']:.1f}, "
        f"max {batcher['batch_size']['max']:.0f})"
    )
    snapshot = report["snapshot"]
    print(
        f"snapshot: {snapshot['cache_size']} cache rows, "
        f"{snapshot['file_bytes']} bytes, bitwise={snapshot['roundtrip_bitwise']}"
    )
    print(
        f"speedup: batched-vs-sequential {report['speedup_batched_vs_sequential']:.2f}x, "
        f"batched-vs-unbatched {report['speedup_batched_vs_unbatched']:.2f}x"
    )


def _extract_samples(report: dict) -> list[dict]:
    """Pull the private per-request latency lists into provenance rows."""
    samples: list[dict] = []
    for name, row in (report.get("scenarios") or {}).items():
        waits = row.get("_waits") or []
        for i, seconds in enumerate(row.get("_latencies", [])):
            sample = {"label": name, "seconds": round(seconds, 6)}
            if i < len(waits):
                sample["queue_wait_ms"], sample["flush_wait_ms"] = waits[i]
            samples.append(sample)
    return samples


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def get_spec(name: str) -> WorkloadSpec:
    return SPEC


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="target an already-running 'repro serve' instead of spawning one",
    )


def run(name: str, args: argparse.Namespace) -> RunResult:
    spec = SPEC.resolve(quick=getattr(args, "quick", False))
    connect = getattr(args, "connect", None)
    server = None
    if connect is not None:
        host, _, port = connect.rpartition(":")
        host, port = host or "127.0.0.1", int(port)
    else:
        server = _SpawnedServer()
        host, port = server.host, server.port
    try:
        body = run_benchmark(
            host,
            port,
            n_support=spec.params["n_support"],
            queries_per_client=spec.params["queries_per_client"],
            repetitions=spec.repetitions,
            open_loop_rate_hz=spec.params["open_loop_rate_hz"],
        )
    finally:
        if server is not None:
            server.stop()
    samples = _extract_samples(body)
    slow_traces = body.pop("_slow_traces", [])
    report = finalize_report("service", body, seed=spec.seed, argv=sys.argv[1:])
    return RunResult(
        report=report,
        config=spec.to_config(),
        samples=samples,
        slow_traces=slow_traces,
    )


def main(argv: list[str] | None = None, default_output: pathlib.Path | None = None) -> int:
    """The historical ``bench_service.py`` CLI."""
    default_output = default_output or pathlib.Path("BENCH_service.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller support set and fewer queries per client",
    )
    add_arguments(parser)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=default_output,
        help=f"report destination (default: {default_output})",
    )
    args = parser.parse_args(argv)

    result = run("service", args)
    write_report(result.report, args.output)
    print_summary(result.report)
    print("written:", args.output)
    return 0
