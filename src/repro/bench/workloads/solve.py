"""Solve-path workload: zero-copy dispatch, stacked factorization, warm restore.

Three sections, one per lever of the zero-copy solve path:

* ``shm``     — the grouped process-backend dispatch with supports shipped
  as pickled arrays versus published once through the shared-memory arena
  (:mod:`repro.core.shm`) and gathered worker-side.  Both paths run the
  same pool and must answer **bit-identically**; the speedup is purely the
  removed serialization tax.
* ``stacked`` — ``ordinary_kriging_grouped`` with per-group bordered-system
  solves versus same-size systems stacked into one batched LAPACK call per
  size bin (serial, factor cache off, so the ratio isolates the stacking).
* ``warm_restore`` — a factor-cache-bearing format-v2 session snapshot
  restored warm versus the same snapshot with its factor section stripped
  (a v1-style cold restore), replaying the exact pre-snapshot query batch.
  The warm replay must refactorize **zero** groups — counter-asserted here
  and gated in CI.

The speedup ratios are multi-core-guarded like the cluster floors: on a
small box they are recorded with a note, on ``>= 4`` CPUs they gate
against absolute floors (shm ``>= 1.3x``, stacked ``>= 1.2x``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.bench.registry import RunResult
from repro.bench.report import finalize_report, write_report
from repro.bench.runner import SampleLog, measure
from repro.bench.spec import WorkloadSpec
from repro.core.estimator import KrigingEstimator
from repro.core.kriging import (
    ordinary_kriging_grouped,
    ordinary_kriging_grouped_shm,
)
from repro.core.models import ExponentialVariogram
from repro.core.shm import ShmArena, shm_available
from repro.service.session import load_snapshot, save_snapshot

NUM_VARIABLES = 5
WORKLOAD_SEED = 11
VARIOGRAM = ExponentialVariogram(sill=25.0, range_=8.0)

#: shm section: many *small* groups.  The serialization tax scales with
#: payload per unit compute (~ d/n^2 for an n-point bordered system), so
#: the dispatch-dominated regime — lots of tiny flushes — is where the
#: arena's zero-copy handoff shows up, not a few big solves.
SHM_GROUPS = 256
SHM_GROUP_SIZE = 32
SHM_QUERIES_PER_GROUP = 4
SHM_WORKERS = 2
SHM_ACCEPTANCE_SPEEDUP = 1.3

#: stacked section: many small same-size systems so batching the LAPACK
#: calls (and dropping the per-group Python dispatch) dominates.
STACKED_GROUPS = 120
STACKED_SIZES = (16, 24, 32)
STACKED_QUERIES_PER_GROUP = 8
STACKED_ACCEPTANCE_SPEEDUP = 1.2

#: warm_restore section: a dense lattice so the query clusters krige over
#: groups big enough that refactorizing them is the visible cost.
WARM_LATTICE = 5
WARM_SUPPORT = 1800
WARM_DISTANCE = 5.0
WARM_CLUSTERS = 3
WARM_QUERIES_PER_CLUSTER = 16

SPEC = WorkloadSpec(
    name="solve",
    kind="solve",
    description=(
        "Zero-copy solve path: shm vs pickled process dispatch, stacked vs "
        "per-group factorization, warm vs cold factor-cache restore"
    ),
    seed=WORKLOAD_SEED,
    repetitions=3,
    params={
        "shm_groups": SHM_GROUPS,
        "shm_group_size": SHM_GROUP_SIZE,
        "stacked_groups": STACKED_GROUPS,
        "warm_support": WARM_SUPPORT,
    },
    quick={
        "shm_groups": 128,
        "shm_group_size": 32,
        "stacked_groups": 60,
        "warm_support": 1200,
        "repetitions": 2,
    },
)

_COEFFS = np.array([1.0, -2.0, 0.5, 0.25, 1.5])


def _field(config) -> float:
    c = np.asarray(config, dtype=float)
    return float(c @ np.resize(_COEFFS, c.size) - 60.0)


def _time(fn, *, repetitions: int = 1, samples: SampleLog | None = None, label: str = ""):
    best, result = measure(fn, repetitions)
    if samples is not None:
        samples.record(best, label)
    return best, result


def _estimates(results: list) -> np.ndarray:
    return np.asarray(
        [r.estimate for group in results for r in group], dtype=np.float64
    )


def _reference_pool(rng: np.random.Generator, n_points: int) -> tuple[np.ndarray, np.ndarray]:
    """A shared support pool the groups index into (the cache's role)."""
    seen = set()
    while len(seen) < n_points:
        seen.add(tuple(int(x) for x in rng.integers(0, 12, size=NUM_VARIABLES)))
    points = np.asarray(sorted(seen), dtype=np.float64)
    rng.shuffle(points)
    values = np.array([_field(p) for p in points])
    return points, values


def _indexed_groups(
    rng: np.random.Generator,
    points: np.ndarray,
    n_groups: int,
    sizes: tuple[int, ...],
    queries_per_group: int,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Row-index supports plus jittered query clusters, per group."""
    supports: list[np.ndarray] = []
    queries_list: list[np.ndarray] = []
    for g in range(n_groups):
        size = sizes[g % len(sizes)]
        rows = rng.choice(points.shape[0], size=size, replace=False).astype(np.int64)
        center = points[rows[0]]
        queries = center[None, :] + rng.uniform(
            0.05, 0.45, size=(queries_per_group, NUM_VARIABLES)
        )
        supports.append(rows)
        queries_list.append(queries)
    return supports, queries_list


# ----------------------------------------------------------------------
# shm: pickled process dispatch vs the shared-memory arena
# ----------------------------------------------------------------------
def run_shm_benchmark(
    n_groups: int = SHM_GROUPS,
    group_size: int = SHM_GROUP_SIZE,
    n_queries: int = SHM_QUERIES_PER_GROUP,
    repetitions: int = 3,
    samples: SampleLog | None = None,
) -> dict:
    """Time one grouped flush dispatched to a process pool both ways.

    Identical groups, identical pool, identical worker arithmetic — the
    pickled path ships every group's support arrays per call, the shm path
    publishes the pool's arrays once and ships row offsets.  Platforms
    without working shared memory report ``{"skipped": true}`` and the
    gate records a note instead of failing.
    """
    if not shm_available():
        return {"skipped": True, "reason": "multiprocessing.shared_memory unavailable"}
    rng = np.random.default_rng(WORKLOAD_SEED)
    points, values = _reference_pool(rng, max(group_size * 2, 1024))
    supports, queries_list = _indexed_groups(
        rng, points, n_groups, (group_size,), n_queries
    )
    groups = [
        (points[rows], values[rows], queries)
        for rows, queries in zip(supports, queries_list)
    ]

    timings = {}
    arena = ShmArena()
    with ProcessPoolExecutor(max_workers=SHM_WORKERS) as pool:
        # Warm the pool (worker spawn + first-import cost stays untimed)
        # and the arena (the first publish copies the whole pool; steady-
        # state flushes copy only appended rows — i.e. nothing here).
        list(pool.map(abs, range(SHM_WORKERS)))
        ordinary_kriging_grouped_shm(
            arena, points, values, supports[:2], queries_list[:2], VARIOGRAM,
            metric="l1", n_jobs=SHM_WORKERS, executor=pool,
        )

        def _pickled():
            return ordinary_kriging_grouped(
                groups, VARIOGRAM, metric="l1", n_jobs=SHM_WORKERS,
                executor=pool, backend="process",
            )

        def _shm():
            return ordinary_kriging_grouped_shm(
                arena, points, values, supports, queries_list, VARIOGRAM,
                metric="l1", n_jobs=SHM_WORKERS, executor=pool,
            )

        timings["pickled"], out_pickled = _time(
            _pickled, repetitions=repetitions, samples=samples, label="shm.pickled"
        )
        timings["shm"], out_shm = _time(
            _shm, repetitions=repetitions, samples=samples, label="shm.shm"
        )
    arena.close()

    # Zero-copy is a dispatch knob only: bit-identical answers.
    np.testing.assert_array_equal(_estimates(out_pickled), _estimates(out_shm))
    return {
        "n_groups": n_groups,
        "n_support_per_group": group_size,
        "n_queries_per_group": n_queries,
        "n_workers": SHM_WORKERS,
        "pickled_seconds": round(timings["pickled"], 6),
        "shm_seconds": round(timings["shm"], 6),
        "speedup_shm_vs_pickled": round(timings["pickled"] / timings["shm"], 2),
        "bitwise_equal": True,
    }


# ----------------------------------------------------------------------
# stacked: per-group factorization vs one batched call per size bin
# ----------------------------------------------------------------------
def run_stacked_benchmark(
    n_groups: int = STACKED_GROUPS,
    sizes: tuple[int, ...] = STACKED_SIZES,
    n_queries: int = STACKED_QUERIES_PER_GROUP,
    repetitions: int = 3,
    samples: SampleLog | None = None,
) -> dict:
    """Serial grouped solve, stacking off versus on (factor cache off).

    Every group's bordered system is regular on this workload, so the
    stacked path really does run one batched ``numpy.linalg.solve`` per
    size bin; the two variants must agree bit for bit (the batched call
    loops the same LAPACK routine over the stack).
    """
    rng = np.random.default_rng(WORKLOAD_SEED + 1)
    points, values = _reference_pool(rng, 1024)
    supports, queries_list = _indexed_groups(rng, points, n_groups, sizes, n_queries)
    groups = [
        (points[rows], values[rows], queries)
        for rows, queries in zip(supports, queries_list)
    ]

    def _per_group():
        return ordinary_kriging_grouped(groups, VARIOGRAM, metric="l1", n_jobs=1)

    def _stacked():
        return ordinary_kriging_grouped(
            groups, VARIOGRAM, metric="l1", n_jobs=1, stacking=True
        )

    _stacked()  # warm-up: allocator + BLAS regime hot before timing
    timings = {}
    timings["per_group"], out_per_group = _time(
        _per_group, repetitions=repetitions, samples=samples, label="stacked.per_group"
    )
    timings["stacked"], out_stacked = _time(
        _stacked, repetitions=repetitions, samples=samples, label="stacked.stacked"
    )
    np.testing.assert_array_equal(_estimates(out_per_group), _estimates(out_stacked))
    return {
        "n_groups": n_groups,
        "group_sizes": list(sizes),
        "n_queries_per_group": n_queries,
        "per_group_seconds": round(timings["per_group"], 6),
        "stacked_seconds": round(timings["stacked"], 6),
        "speedup_stacked_vs_pergroup": round(
            timings["per_group"] / timings["stacked"], 2
        ),
        "bitwise_equal": True,
    }


# ----------------------------------------------------------------------
# warm_restore: factor-cache-bearing snapshot vs a cold (v1-style) restore
# ----------------------------------------------------------------------
def run_warm_restore_benchmark(
    n_support: int = WARM_SUPPORT,
    repetitions: int = 3,
    samples: SampleLog | None = None,
) -> dict:
    """Replay the pre-snapshot query batch from a warm and a cold restore.

    One estimator kriges a few query clusters over a dense lattice (big
    shared-support groups), so its factor cache holds exactly the
    factorizations the replay needs.  The session snapshot (format v2)
    carries them; stripping the factor section reproduces what a
    version-1 snapshot restores to.  The warm replay must serve every
    group from the restored cache — ``warm_fresh_factorizations == 0`` is
    the gated contract, the wall-clock ratio is the payoff.
    """
    rng = np.random.default_rng(WORKLOAD_SEED + 2)
    seen = set()
    while len(seen) < n_support:
        seen.add(tuple(int(x) for x in rng.integers(0, WARM_LATTICE, size=NUM_VARIABLES)))
    support = np.asarray(sorted(seen), dtype=np.float64)
    rng.shuffle(support)
    support_values = np.array([_field(p) for p in support])
    centers = support[rng.integers(0, support.shape[0], size=WARM_CLUSTERS)]
    queries = np.vstack(
        [
            center[None, :]
            + rng.uniform(0.1, 0.4, size=(WARM_QUERIES_PER_CLUSTER, NUM_VARIABLES))
            for center in centers
        ]
    )

    def _build() -> KrigingEstimator:
        est = KrigingEstimator(
            _field,
            NUM_VARIABLES,
            distance=WARM_DISTANCE,
            nn_min=1,
            variogram=VARIOGRAM,
        )
        for config, value in zip(support, support_values):
            row = est.cache.add(config, value)
            est.neighbor_index.insert(config, row)
        return est

    source = _build()
    source.evaluate_batch(queries)  # populates the factor cache
    assert dict(source.stats.factor.as_pairs())["fresh"] > 0

    with tempfile.TemporaryDirectory() as tmp:
        path = save_snapshot(
            pathlib.Path(tmp) / "warm",
            {
                "name": "bench-solve",
                "simulator": {"kind": "linear", "coefficients": _COEFFS.tolist(),
                              "offset": -60.0},
                "estimator": source.to_state(),
            },
        )
        warm_state = load_snapshot(path)["estimator"]
    cold_state = {**warm_state, "factor_entries": None}

    fresh_deltas = {}
    timings = {}
    for key, state in (("warm", warm_state), ("cold", cold_state)):
        def _replay(state=state):
            est = KrigingEstimator.from_state(_field, state)
            before = dict(est.stats.factor.as_pairs())["fresh"]
            est.evaluate_batch(queries)
            return dict(est.stats.factor.as_pairs())["fresh"] - before

        timings[key], fresh_deltas[key] = _time(
            _replay, repetitions=repetitions,
            samples=samples, label=f"warm_restore.{key}",
        )

    if fresh_deltas["warm"] != 0:
        raise AssertionError(
            f"warm restore refactorized {fresh_deltas['warm']} groups (expected 0)"
        )
    return {
        "n_support": n_support,
        "n_queries": int(queries.shape[0]),
        "n_clusters": WARM_CLUSTERS,
        "cold_seconds": round(timings["cold"], 6),
        "warm_seconds": round(timings["warm"], 6),
        "speedup_warm_vs_cold": round(timings["cold"] / timings["warm"], 2),
        "warm_fresh_factorizations": int(fresh_deltas["warm"]),
        "cold_fresh_factorizations": int(fresh_deltas["cold"]),
    }


def run_benchmark(
    shm_groups: int = SHM_GROUPS,
    shm_group_size: int = SHM_GROUP_SIZE,
    stacked_groups: int = STACKED_GROUPS,
    warm_support: int = WARM_SUPPORT,
    repetitions: int = 3,
    samples: SampleLog | None = None,
) -> dict:
    shm = run_shm_benchmark(
        n_groups=shm_groups, group_size=shm_group_size,
        repetitions=repetitions, samples=samples,
    )
    stacked = run_stacked_benchmark(
        n_groups=stacked_groups, repetitions=repetitions, samples=samples
    )
    warm = run_warm_restore_benchmark(
        n_support=warm_support, repetitions=repetitions, samples=samples
    )
    return {
        "benchmark": "solve",
        "workload": {
            "num_variables": NUM_VARIABLES,
            "variogram": "exponential(sill=25, range=8)",
        },
        "shm": shm,
        "stacked": stacked,
        "warm_restore": warm,
        "acceptance": {
            "shm_threshold": SHM_ACCEPTANCE_SPEEDUP,
            "stacked_threshold": STACKED_ACCEPTANCE_SPEEDUP,
            "warm_fresh_factorizations": warm["warm_fresh_factorizations"],
            "passed": warm["warm_fresh_factorizations"] == 0,
        },
    }


def print_summary(report: dict) -> None:
    shm = report["shm"]
    if shm.get("skipped"):
        print(f"shm: skipped ({shm.get('reason', 'unavailable')})")
    else:
        print(
            f"shm n_groups={shm['n_groups']} support={shm['n_support_per_group']}  "
            f"pickled={shm['pickled_seconds']:.3f}s  shm={shm['shm_seconds']:.3f}s  "
            f"({shm['speedup_shm_vs_pickled']:.2f}x)"
        )
    st = report["stacked"]
    print(
        f"stacked n_groups={st['n_groups']} sizes={st['group_sizes']}  "
        f"per-group={st['per_group_seconds']:.3f}s  "
        f"stacked={st['stacked_seconds']:.3f}s  "
        f"({st['speedup_stacked_vs_pergroup']:.2f}x)"
    )
    warm = report["warm_restore"]
    print(
        f"warm-restore n={warm['n_support']}  cold={warm['cold_seconds']:.3f}s "
        f"({warm['cold_fresh_factorizations']} fresh)  "
        f"warm={warm['warm_seconds']:.3f}s "
        f"({warm['warm_fresh_factorizations']} fresh)  "
        f"({warm['speedup_warm_vs_cold']:.2f}x)"
    )


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def get_spec(name: str) -> WorkloadSpec:
    return SPEC


def run(name: str, args: argparse.Namespace) -> RunResult:
    spec = SPEC.resolve(quick=getattr(args, "quick", False))
    samples = SampleLog()
    body = run_benchmark(
        shm_groups=spec.params["shm_groups"],
        shm_group_size=spec.params["shm_group_size"],
        stacked_groups=spec.params["stacked_groups"],
        warm_support=spec.params["warm_support"],
        repetitions=spec.repetitions,
        samples=samples,
    )
    report = finalize_report("solve", body, seed=spec.seed, argv=sys.argv[1:])
    return RunResult(report=report, config=spec.to_config(), samples=samples.rows())


def main(argv: list[str] | None = None, default_output: pathlib.Path | None = None) -> int:
    """The ``bench_solve.py`` CLI."""
    default_output = default_output or pathlib.Path("BENCH_solve.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller groups, fewer repetitions",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=default_output,
        help=f"report destination (default: {default_output})",
    )
    args = parser.parse_args(argv)

    result = run("solve", args)
    write_report(result.report, args.output)
    print_summary(result.report)
    print("written:", args.output)
    return 0
