"""Table I and ablation replay sweeps as harness workloads.

One module serves ten registry entries: ``table1-{fir,iir,fft,hevc,
squeezenet,dct}`` replay the recorded ground-truth trajectory over the
paper's distance sweep and reproduce that benchmark's Table I rows;
``ablation-{distance,nnmin,variogram,universal}`` sweep one estimator
axis and assert the paper's qualitative claims as invariants.

The sweep definitions — distances, envelope checks, ablation axes —
live here as data so the pytest benches (``benchmarks/bench_table1.py``,
``benchmarks/bench_ablation_*.py`` via ``_table1_common``) and the
``repro bench`` CLI replay the exact same cells and enforce the exact
same envelopes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.registry import RunResult
from repro.bench.report import finalize_report, write_report
from repro.bench.runner import SampleLog, measure
from repro.bench.spec import WorkloadSpec
from repro.experiments.registry import build_benchmark
from repro.experiments.replay import replay_trace
from repro.experiments.reporting import format_row
from repro.experiments.table1 import Table1Row

DISTANCES = (2, 3, 4, 5)
REPETITIONS = 2

#: Reproduction-shape envelopes (calibrated at ``full`` scale): the paper's
#: Table I values sit comfortably inside; a regression that changes the
#: estimator's interpolation behaviour falls outside.
TABLE1_CHECKS: dict[str, dict[str, float]] = {
    # paper: p = 33.3 / 52.8 / 58.3 / 66.7 %
    "fir": {"min_p": 15.0, "max_p": 85.0, "max_mean_error": 4.0},
    # paper: p = 47.5 / 64.5 / 70.9 / 77.3 %, mu eps = 0.44-1.24 bits
    "iir": {"min_p": 30.0, "max_p": 95.0, "max_mean_error": 2.5},
    # paper: p = 78.1 / 89.1 / 91.9 / 95.6 %, mu eps = 0.18-0.68 bits
    "fft": {"min_p": 55.0, "max_p": 100.0, "max_mean_error": 1.5},
    # paper: p = 87.4 / 93.3 / 95.6 / 96.0 %, mu eps = 0.07-0.52 bits
    "hevc": {"min_p": 70.0, "max_p": 100.0, "max_mean_error": 1.0},
    # paper: p = 78.3 / 89.3 / 91.4 / 93.1 %, mu eps = 3.5-12.2 % relative
    "squeezenet": {"min_p": 60.0, "max_p": 100.0, "max_mean_error": 0.25},
    # ours (beyond the paper): Nv = 6 sits between IIR and FFT
    "dct": {"min_p": 30.0, "max_p": 95.0, "max_mean_error": 2.0},
}

#: DCT is the "extends to new kernels" demo: two distances are enough.
TABLE1_DISTANCES: dict[str, tuple[int, ...]] = {"dct": (2, 3)}

#: Ablation sweeps: which trajectory, which axis, which cells.
ABLATIONS: dict[str, dict] = {
    "ablation-distance": {
        "benchmark": "fft",
        "axis": "metric",
        "values": ("l1", "l2", "linf"),
        "overrides": {"distance": 3},
        "claim": "L2/Linf balls contain the L1 ball: p never drops vs l1",
    },
    "ablation-nnmin": {
        "benchmark": "fft",
        "axis": "nn_min",
        "values": (1, 2, 3),
        "overrides": {"distance": 3},
        "claim": "stricter Nn_min only reduces interpolations (p non-increasing)",
    },
    "ablation-variogram": {
        "benchmark": "iir",
        "axis": "variogram",
        "values": ("linear", "spherical", "exponential", "gaussian", "power", "auto"),
        "overrides": {"distance": 3},
        "claim": "p is a pure neighbourhood property: identical across models",
    },
    "ablation-universal": {
        "benchmark": ("fir", "iir"),
        "axis": "interpolator",
        "values": ("ordinary", "universal"),
        "overrides": {"distance": 4},
        "claim": "universal kriging bounds the error on directional walks",
    },
}


def replay_call(setup, trace, **overrides):
    """The one replay entry point shared by the harness and the pytest
    benches: paper defaults, per-cell overrides on top."""
    kwargs = dict(
        benchmark=setup.name,
        metric_kind=setup.metric_kind,
        distance=3,
        nn_min=1,
        variogram="auto",
    )
    kwargs.update(overrides)
    return replay_trace(trace, **kwargs)


def check_row(name: str, row) -> list[str]:
    """Envelope check for one Table I row; empty list means in-envelope."""
    checks = TABLE1_CHECKS[name]
    failures = []
    if not checks["min_p"] <= row.p_percent <= checks["max_p"]:
        failures.append(
            f"{name} d={row.distance:g}: p={row.p_percent:.2f}% outside "
            f"[{checks['min_p']:g}, {checks['max_p']:g}]"
        )
    if not row.mean_error < checks["max_mean_error"]:
        failures.append(
            f"{name} d={row.distance:g}: mean_error={row.mean_error:.4f} "
            f">= {checks['max_mean_error']:g}"
        )
    return failures


def _row_dict(row: Table1Row, seconds: float) -> dict:
    return {
        "distance": row.distance,
        "p_percent": round(row.p_percent, 2),
        "mean_neighbors": round(row.mean_neighbors, 2),
        "max_error": round(row.max_error, 4),
        "mean_error": round(row.mean_error, 4),
        "n_configs": row.n_configs,
        "replay_seconds": round(seconds, 6),
        "table_text": format_row(row),
    }


def run_table1_sweep(
    bench: str,
    *,
    scale: str = "full",
    repetitions: int = REPETITIONS,
    samples: SampleLog | None = None,
) -> dict:
    """Replay one benchmark's trajectory over its distance sweep."""
    setup = build_benchmark(bench, scale)
    trace = setup.record_trajectory()
    distances = TABLE1_DISTANCES.get(bench, DISTANCES)
    rows, failures = [], []
    for distance in distances:
        seconds, stats = measure(
            lambda: replay_call(setup, trace, distance=distance),
            repetitions=repetitions,
        )
        if samples is not None:
            samples.record(seconds, label=f"{bench}:d{distance}")
        row = Table1Row.from_stats(
            stats, metric_label=setup.metric_label, nv=setup.problem.num_variables
        )
        rows.append(_row_dict(row, seconds))
        if scale == "full":
            failures.extend(check_row(bench, row))
    return {
        "benchmark": f"table1-{bench}",
        "workload": {
            "kind": "table1",
            "target": bench,
            "scale": scale,
            "distances": list(distances),
            "n_configs": rows[0]["n_configs"] if rows else 0,
        },
        "rows": rows,
        "acceptance": {
            "envelope": TABLE1_CHECKS[bench],
            "enforced": scale == "full",
            "failures": failures,
            "passed": not failures,
        },
    }


def _ablation_invariants(name: str, cells: list[dict]) -> dict[str, bool]:
    """The paper's qualitative claims, checked over the finished sweep."""
    by_axis = {cell["value"]: cell for cell in cells}
    if name == "ablation-distance":
        base = by_axis["l1"]["p_percent"]
        return {
            "p_never_drops_vs_l1": all(
                by_axis[m]["p_percent"] >= base - 1e-9 for m in ("l2", "linf")
            )
        }
    if name == "ablation-nnmin":
        base = by_axis[1]["p_percent"]
        return {
            "p_non_increasing": all(
                by_axis[v]["p_percent"] <= base + 1e-9 for v in (2, 3)
            )
        }
    if name == "ablation-variogram":
        p0 = cells[0]["p_percent"]
        return {
            "p_identical_across_models": all(
                abs(cell["p_percent"] - p0) < 1e-6 for cell in cells
            ),
            "mean_error_bounded": all(cell["mean_error"] < 3.0 for cell in cells),
        }
    if name == "ablation-universal":
        return {"mean_error_bounded": all(cell["mean_error"] < 4.0 for cell in cells)}
    return {}


def run_ablation_sweep(
    name: str,
    *,
    scale: str = "full",
    repetitions: int = REPETITIONS,
    samples: SampleLog | None = None,
) -> dict:
    """Sweep one estimator axis and check the paper's claims."""
    definition = ABLATIONS[name]
    benches = definition["benchmark"]
    if isinstance(benches, str):
        benches = (benches,)
    axis = definition["axis"]
    cells = []
    for bench in benches:
        setup = build_benchmark(bench, scale)
        trace = setup.record_trajectory()
        for value in definition["values"]:
            overrides = {**definition["overrides"], axis: value}
            seconds, stats = measure(
                lambda: replay_call(setup, trace, **overrides),
                repetitions=repetitions,
            )
            label = f"{bench}:{axis}={value}"
            if samples is not None:
                samples.record(seconds, label=label)
            cells.append(
                {
                    "benchmark": bench,
                    "axis": axis,
                    "value": value,
                    "p_percent": round(stats.p_percent, 2),
                    "mean_neighbors": round(stats.mean_neighbors, 2),
                    "max_error": round(stats.max_error, 4),
                    "mean_error": round(stats.mean_error, 4),
                    "replay_seconds": round(seconds, 6),
                }
            )
    invariants = (
        _ablation_invariants(name, cells) if scale == "full" else {}
    )
    return {
        "benchmark": name,
        "workload": {
            "kind": "ablation",
            "targets": list(benches),
            "axis": axis,
            "values": list(definition["values"]),
            "scale": scale,
            "claim": definition["claim"],
        },
        "cells": cells,
        "acceptance": {
            "invariants": invariants,
            "enforced": scale == "full",
            "passed": all(invariants.values()),
        },
    }


def print_summary(report: dict) -> None:
    for row in report.get("rows", []):
        print(row["table_text"])
    for cell in report.get("cells", []):
        print(
            f"{cell['benchmark']:<12} {cell['axis']}={cell['value']!s:<12} "
            f"p={cell['p_percent']:>6.2f}%  j={cell['mean_neighbors']:>5.2f}  "
            f"mu_eps={cell['mean_error']:.4f}"
        )
    acceptance = report["acceptance"]
    scope = "enforced" if acceptance["enforced"] else "recorded only (small scale)"
    print(f"{report['benchmark']}: passed={acceptance['passed']} ({scope})")


# ---------------------------------------------------------------------------
# registry contract
# ---------------------------------------------------------------------------
def get_spec(name: str) -> WorkloadSpec:
    if name.startswith("table1-"):
        bench = name.removeprefix("table1-")
        if bench not in TABLE1_CHECKS:
            raise KeyError(f"unknown table1 target {bench!r}")
        return WorkloadSpec(
            name=name,
            kind="replay_sweep",
            description=f"Table I replay sweep on {bench}",
            seed=0,
            repetitions=REPETITIONS,
            params={
                "benchmark": bench,
                "distances": list(TABLE1_DISTANCES.get(bench, DISTANCES)),
                "scale": "full",
            },
            quick={"scale": "small", "repetitions": 1},
        )
    if name in ABLATIONS:
        definition = ABLATIONS[name]
        return WorkloadSpec(
            name=name,
            kind="replay_sweep",
            description=definition["claim"],
            seed=0,
            repetitions=REPETITIONS,
            params={
                "benchmark": definition["benchmark"],
                "axis": definition["axis"],
                "values": list(definition["values"]),
                "scale": "full",
            },
            quick={"scale": "small", "repetitions": 1},
        )
    raise KeyError(f"unknown replay sweep {name!r}")


def run(name: str, args: argparse.Namespace) -> RunResult:
    spec = get_spec(name).resolve(quick=getattr(args, "quick", False))
    scale = spec.params.get("scale", "full")
    samples = SampleLog()
    if name.startswith("table1-"):
        body = run_table1_sweep(
            spec.params["benchmark"],
            scale=scale,
            repetitions=spec.repetitions,
            samples=samples,
        )
    else:
        body = run_ablation_sweep(
            name, scale=scale, repetitions=spec.repetitions, samples=samples
        )
    report = finalize_report(body["benchmark"], body, seed=spec.seed, argv=sys.argv[1:])
    print_summary(report)
    return RunResult(report=report, config=spec.to_config(), samples=samples.rows())


def main(argv: list[str] | None = None, default_output: pathlib.Path | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "name",
        choices=sorted(
            [f"table1-{b}" for b in TABLE1_CHECKS] + list(ABLATIONS)
        ),
        help="which replay sweep to run",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small-scale smoke mode"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=default_output, help="report destination"
    )
    args = parser.parse_args(argv)
    result = run(args.name, args)
    if args.output is not None:
        write_report(result.report, args.output)
        print("written:", args.output)
    return 0 if result.report["acceptance"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
