"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table1``
    Record (or load) a benchmark trajectory and print its Table I rows.
``figure1``
    Render the FIR noise-power surface (paper Figure 1).
``record``
    Run a benchmark's reference optimization and save the trajectory JSON.
``replay``
    Replay a saved trajectory under the kriging policy.
``benchmarks``
    List the available benchmark setups.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figure1 import fir_noise_surface, render_surface
from repro.experiments.registry import (
    BENCHMARK_NAMES,
    EXTRA_BENCHMARK_NAMES,
    SCALES,
    build_benchmark,
)
from repro.core.kriging import SOLVE_BACKENDS
from repro.experiments.replay import MetricKind, replay_trace
from repro.experiments.reporting import (
    format_factor_reuse,
    format_neighbor_distribution,
    format_table1,
)
from repro.experiments.table1 import DISTANCES, rows_for_setup
from repro.optimization.serialize import load_trace, save_trace

__all__ = ["main", "build_parser"]

ALL_BENCHMARKS = BENCHMARK_NAMES + EXTRA_BENCHMARK_NAMES


def _jobs_arg(value: str) -> int:
    """argparse type for --jobs: a positive thread count or -1 (all cores)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if jobs != -1 and jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 or -1 (all cores), got {jobs}"
        )
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kriging-based error evaluation for approximate computing "
        "(reproduction of Bonnot et al., DATE 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="reproduce Table I rows for a benchmark")
    p_table.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p_table.add_argument("--scale", choices=SCALES, default="small")
    p_table.add_argument(
        "--distances", type=int, nargs="+", default=list(DISTANCES), metavar="D"
    )
    p_table.add_argument("--nn-min", type=int, default=1)
    p_table.add_argument("--variogram", default="auto")
    p_table.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="workers for grouped kriging solves (-1: one per CPU)",
    )
    p_table.add_argument(
        "--backend",
        choices=SOLVE_BACKENDS,
        default="thread",
        help="executor for grouped kriging solves (process: for workloads "
        "dominated by GIL-holding group assembly)",
    )

    p_fig = sub.add_parser("figure1", help="render the FIR noise-power surface")
    p_fig.add_argument("--min-wl", type=int, default=6)
    p_fig.add_argument("--max-wl", type=int, default=20)
    p_fig.add_argument("--samples", type=int, default=1024)

    p_rec = sub.add_parser("record", help="record a benchmark trajectory to JSON")
    p_rec.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p_rec.add_argument("output", help="output JSON path")
    p_rec.add_argument("--scale", choices=SCALES, default="small")

    p_rep = sub.add_parser("replay", help="replay a recorded trajectory")
    p_rep.add_argument("trace", help="trajectory JSON from 'record'")
    p_rep.add_argument("--distance", type=float, default=3.0)
    p_rep.add_argument("--nn-min", type=int, default=1)
    p_rep.add_argument("--variogram", default="auto")
    p_rep.add_argument(
        "--metric-kind",
        choices=[k.value for k in MetricKind],
        default=MetricKind.NOISE_POWER_DB.value,
    )
    p_rep.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="workers for grouped kriging solves (-1: one per CPU)",
    )
    p_rep.add_argument(
        "--backend",
        choices=SOLVE_BACKENDS,
        default="thread",
        help="executor for grouped kriging solves (process: for workloads "
        "dominated by GIL-holding group assembly)",
    )

    sub.add_parser("benchmarks", help="list available benchmarks")
    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    setup = build_benchmark(args.benchmark, args.scale)
    rows = rows_for_setup(
        setup,
        distances=tuple(args.distances),
        nn_min=args.nn_min,
        variogram=args.variogram,
        n_jobs=args.jobs,
        backend=args.backend,
    )
    print(format_table1(rows))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    if args.min_wl >= args.max_wl:
        print("error: --min-wl must be below --max-wl", file=sys.stderr)
        return 2
    surface, grid = fir_noise_surface(
        word_lengths=range(args.min_wl, args.max_wl + 1), n_samples=args.samples
    )
    print(render_surface(surface, grid))
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    setup = build_benchmark(args.benchmark, args.scale)
    trace = setup.record_trajectory()
    path = save_trace(trace, args.output)
    unique = trace.unique_first_visits()
    print(f"recorded {len(unique)} configurations to {path}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    stats = replay_trace(
        trace,
        metric_kind=MetricKind(args.metric_kind),
        distance=args.distance,
        nn_min=args.nn_min,
        variogram=args.variogram,
        n_jobs=args.jobs,
        backend=args.backend,
    )
    unit = "bits" if stats.metric_kind is MetricKind.NOISE_POWER_DB else "rel"
    print(
        f"configs={stats.n_configs} p={stats.p_percent:.2f}% "
        f"j={stats.mean_neighbors:.2f} "
        f"max_eps={stats.max_error:.4f} {unit} mu_eps={stats.mean_error:.4f} {unit}"
    )
    print(format_neighbor_distribution(stats))
    print(format_factor_reuse(stats))
    return 0


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    for name in ALL_BENCHMARKS:
        setup = build_benchmark(name, "small")
        print(
            f"{name:<12s} Nv={setup.problem.num_variables:<3d} "
            f"metric={setup.metric_label:<20s} optimizer={setup.optimizer_kind}"
        )
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "figure1": _cmd_figure1,
    "record": _cmd_record,
    "replay": _cmd_replay,
    "benchmarks": _cmd_benchmarks,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
