"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table1``
    Record (or load) a benchmark trajectory and print its Table I rows.
``figure1``
    Render the FIR noise-power surface (paper Figure 1).
``record``
    Run a benchmark's reference optimization and save the trajectory JSON.
``replay``
    Replay a saved trajectory under the kriging policy.
``benchmarks``
    List the available benchmark setups.
``bench``
    Run a registered benchmark through the load/latency harness
    (``repro bench --list`` for the registry; see :mod:`repro.bench.cli`).
``serve``
    Run the multi-client kriging evaluation service (TCP, JSON lines).
``cluster``
    Run a sharded cluster: a router plus N worker services, with session
    replication, live migration and failover.
``client``
    Talk to a running service or cluster (create/eval/simulate/fit/stats/
    snapshot/restore/delete/migrate/replicate/cluster-stats/shutdown).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.figure1 import fir_noise_surface, render_surface
from repro.experiments.registry import (
    BENCHMARK_NAMES,
    EXTRA_BENCHMARK_NAMES,
    SCALES,
    build_benchmark,
)
from repro.core.kriging import SOLVE_BACKENDS
from repro.experiments.replay import MetricKind, replay_trace
from repro.experiments.reporting import (
    format_factor_reuse,
    format_neighbor_distribution,
    format_solve_phases,
    format_table1,
)
from repro.experiments.table1 import DISTANCES, rows_for_setup
from repro.optimization.serialize import load_trace, save_trace

__all__ = ["main", "build_parser"]

ALL_BENCHMARKS = BENCHMARK_NAMES + EXTRA_BENCHMARK_NAMES


def _jobs_arg(value: str) -> int:
    """argparse type for --jobs: a positive thread count or -1 (all cores)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if jobs != -1 and jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 or -1 (all cores), got {jobs}"
        )
    return jobs


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability knobs shared by ``serve`` and ``cluster``."""
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve GET /metrics (Prometheus text) on this extra port",
    )
    parser.add_argument(
        "--slow-trace-ms",
        type=float,
        default=None,
        help="always capture (and log) traces whose root span is at least "
        "this slow, regardless of the client sampling rate",
    )
    parser.add_argument(
        "--trace-ring",
        type=int,
        default=2048,
        help="finished spans kept per process (oldest evicted first)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="structured (JSON lines) log level on stderr",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kriging-based error evaluation for approximate computing "
        "(reproduction of Bonnot et al., DATE 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="reproduce Table I rows for a benchmark")
    p_table.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p_table.add_argument("--scale", choices=SCALES, default="small")
    p_table.add_argument(
        "--distances", type=int, nargs="+", default=list(DISTANCES), metavar="D"
    )
    p_table.add_argument("--nn-min", type=int, default=1)
    p_table.add_argument("--variogram", default="auto")
    p_table.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="workers for grouped kriging solves (-1: one per CPU)",
    )
    p_table.add_argument(
        "--backend",
        choices=SOLVE_BACKENDS,
        default="thread",
        help="executor for grouped kriging solves (process: for workloads "
        "dominated by GIL-holding group assembly)",
    )

    p_fig = sub.add_parser("figure1", help="render the FIR noise-power surface")
    p_fig.add_argument("--min-wl", type=int, default=6)
    p_fig.add_argument("--max-wl", type=int, default=20)
    p_fig.add_argument("--samples", type=int, default=1024)

    p_rec = sub.add_parser("record", help="record a benchmark trajectory to JSON")
    p_rec.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p_rec.add_argument("output", help="output JSON path")
    p_rec.add_argument("--scale", choices=SCALES, default="small")

    p_rep = sub.add_parser("replay", help="replay a recorded trajectory")
    p_rep.add_argument("trace", help="trajectory JSON from 'record'")
    p_rep.add_argument("--distance", type=float, default=3.0)
    p_rep.add_argument("--nn-min", type=int, default=1)
    p_rep.add_argument("--variogram", default="auto")
    p_rep.add_argument(
        "--metric-kind",
        choices=[k.value for k in MetricKind],
        default=MetricKind.NOISE_POWER_DB.value,
    )
    p_rep.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="workers for grouped kriging solves (-1: one per CPU)",
    )
    p_rep.add_argument(
        "--backend",
        choices=SOLVE_BACKENDS,
        default="thread",
        help="executor for grouped kriging solves (process: for workloads "
        "dominated by GIL-holding group assembly)",
    )

    sub.add_parser("benchmarks", help="list available benchmarks")

    # ``bench`` owns its own two-stage parser (workloads add flags); main()
    # dispatches to repro.bench.cli before this parser ever sees the args.
    sub.add_parser(
        "bench",
        help="run a registered benchmark through the load/latency harness",
        add_help=False,
    )

    p_serve = sub.add_parser(
        "serve", help="run the multi-client kriging evaluation service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7331, help="TCP port (0: ephemeral)"
    )
    p_serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port number to this file once listening",
    )
    p_serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for named session snapshots (snapshot/restore verbs)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="micro-batcher: flush once this many requests are pending",
    )
    p_serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="micro-batcher: flush an incomplete batch after this delay",
    )
    _add_obs_args(p_serve)

    p_cluster = sub.add_parser(
        "cluster", help="run a sharded multi-worker kriging cluster"
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument(
        "--port", type=int, default=7330, help="router TCP port (0: ephemeral)"
    )
    p_cluster.add_argument(
        "--port-file",
        default=None,
        help="write the router's bound port number to this file once listening",
    )
    p_cluster.add_argument(
        "--workers", type=int, default=2, help="worker processes to spawn"
    )
    p_cluster.add_argument(
        "--replica-dir",
        default=None,
        help="shared directory for replicated session snapshots "
        "(default: a per-run temporary directory)",
    )
    p_cluster.add_argument(
        "--replication-interval",
        type=float,
        default=5.0,
        help="seconds between replica refreshes (the durability window)",
    )
    p_cluster.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between worker health pings",
    )
    p_cluster.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="admission control: concurrent requests per worker",
    )
    p_cluster.add_argument(
        "--max-queue",
        type=int,
        default=128,
        help="admission control: requests allowed to wait per worker "
        "(beyond it: structured 'Overloaded' rejection)",
    )
    p_cluster.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="worker micro-batcher: flush once this many requests are pending",
    )
    p_cluster.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="worker micro-batcher: flush an incomplete batch after this delay",
    )
    p_cluster.add_argument(
        "--worker-timeout",
        type=float,
        default=30.0,
        help="ceiling in seconds on any proxied worker call "
        "(a hung worker fails the call with a retryable 'Unavailable')",
    )
    p_cluster.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="circuit breaker: consecutive transport failures that trip "
        "a worker's breaker open",
    )
    p_cluster.add_argument(
        "--breaker-reset-ms",
        type=float,
        default=250.0,
        help="circuit breaker: cool-off before the half-open probe",
    )
    _add_obs_args(p_cluster)

    p_client = sub.add_parser("client", help="talk to a running service")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7331)
    verb = p_client.add_subparsers(dest="verb", required=True)

    v_create = verb.add_parser("create", help="create an estimator session")
    v_create.add_argument("session")
    v_create.add_argument(
        "--simulator",
        default='{"kind": "linear"}',
        help="simulator spec as JSON (kinds: linear, quadratic, benchmark)",
    )
    v_create.add_argument("--num-variables", type=int, default=None)
    v_create.add_argument("--distance", type=float, default=3.0)
    v_create.add_argument("--nn-min", type=int, default=1)
    v_create.add_argument("--variogram", default="auto")
    v_create.add_argument("--replace", action="store_true")

    v_eval = verb.add_parser("eval", help="evaluate one configuration")
    v_eval.add_argument("session")
    v_eval.add_argument("values", type=float, nargs="+", metavar="V")

    v_sim = verb.add_parser("simulate", help="force-simulate one configuration")
    v_sim.add_argument("session")
    v_sim.add_argument("values", type=float, nargs="+", metavar="V")
    v_sim.add_argument(
        "--value",
        type=float,
        default=None,
        help="record this externally measured metric value instead of simulating",
    )

    v_fit = verb.add_parser("fit", help="force a variogram re-identification")
    v_fit.add_argument("session")

    v_stats = verb.add_parser("stats", help="session (or whole-service) statistics")
    v_stats.add_argument("session", nargs="?", default=None)

    v_metrics = verb.add_parser(
        "metrics",
        help="unified metrics snapshot (a cluster router aggregates its fleet)",
    )
    v_metrics.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus text exposition instead of JSON",
    )

    v_traces = verb.add_parser(
        "traces", help="recent spans and captured slow traces"
    )
    v_traces.add_argument(
        "--trace-id", default=None, help="only spans of this trace"
    )

    v_snap = verb.add_parser("snapshot", help="snapshot a session to disk")
    v_snap.add_argument("session")
    v_snap.add_argument("--path", default=None)
    v_snap.add_argument("--name", default=None)

    v_restore = verb.add_parser("restore", help="restore a session from a snapshot")
    v_restore.add_argument("--path", default=None)
    v_restore.add_argument("--name", default=None, help="snapshot name in the server's dir")
    v_restore.add_argument("--session", default=None, help="restore under this name")
    v_restore.add_argument("--replace", action="store_true")

    v_delete = verb.add_parser("delete", help="delete a session")
    v_delete.add_argument("session")

    v_migrate = verb.add_parser(
        "migrate", help="live-migrate a session to another worker (cluster only)"
    )
    v_migrate.add_argument("session")
    v_migrate.add_argument(
        "--worker", default=None, help="target worker id (default: least loaded)"
    )

    v_repl = verb.add_parser(
        "replicate", help="force a replica refresh (cluster only)"
    )
    v_repl.add_argument(
        "session", nargs="?", default=None, help="one session (default: all)"
    )

    verb.add_parser("cluster-stats", help="cluster topology and counters")

    verb.add_parser("shutdown", help="stop the service")
    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    setup = build_benchmark(args.benchmark, args.scale)
    rows = rows_for_setup(
        setup,
        distances=tuple(args.distances),
        nn_min=args.nn_min,
        variogram=args.variogram,
        n_jobs=args.jobs,
        backend=args.backend,
    )
    print(format_table1(rows))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    if args.min_wl >= args.max_wl:
        print("error: --min-wl must be below --max-wl", file=sys.stderr)
        return 2
    surface, grid = fir_noise_surface(
        word_lengths=range(args.min_wl, args.max_wl + 1), n_samples=args.samples
    )
    print(render_surface(surface, grid))
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    setup = build_benchmark(args.benchmark, args.scale)
    trace = setup.record_trajectory()
    path = save_trace(trace, args.output)
    unique = trace.unique_first_visits()
    print(f"recorded {len(unique)} configurations to {path}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    stats = replay_trace(
        trace,
        metric_kind=MetricKind(args.metric_kind),
        distance=args.distance,
        nn_min=args.nn_min,
        variogram=args.variogram,
        n_jobs=args.jobs,
        backend=args.backend,
    )
    unit = "bits" if stats.metric_kind is MetricKind.NOISE_POWER_DB else "rel"
    print(
        f"configs={stats.n_configs} p={stats.p_percent:.2f}% "
        f"j={stats.mean_neighbors:.2f} "
        f"max_eps={stats.max_error:.4f} {unit} mu_eps={stats.mean_error:.4f} {unit}"
    )
    print(format_neighbor_distribution(stats))
    print(format_factor_reuse(stats))
    print(format_solve_phases(stats))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server

    try:
        run_server(
            args.host,
            args.port,
            snapshot_dir=args.snapshot_dir,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            slow_trace_ms=args.slow_trace_ms,
            trace_ring=args.trace_ring,
            metrics_port=args.metrics_port,
            log_level=args.log_level,
            port_file=args.port_file,
            on_ready=lambda host, port: print(
                f"repro service listening on {host}:{port}", flush=True
            ),
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import run_cluster

    try:
        run_cluster(
            args.host,
            args.port,
            workers=args.workers,
            replica_dir=args.replica_dir,
            replication_interval=args.replication_interval,
            health_interval=args.health_interval,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            worker_timeout=args.worker_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_ms=args.breaker_reset_ms,
            slow_trace_ms=args.slow_trace_ms,
            trace_ring=args.trace_ring,
            metrics_port=args.metrics_port,
            log_level=args.log_level,
            port_file=args.port_file,
            on_ready=lambda host, port: print(
                f"repro cluster router listening on {host}:{port} "
                f"({args.workers} workers)",
                flush=True,
            ),
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.service.protocol import RemoteError

    try:
        with ServiceClient(args.host, args.port) as client:
            if args.verb == "create":
                try:
                    simulator = json.loads(args.simulator)
                except json.JSONDecodeError as exc:
                    print(f"error: --simulator is not valid JSON: {exc}", file=sys.stderr)
                    return 2
                result: object = client.create_session(
                    args.session,
                    simulator=simulator,
                    num_variables=args.num_variables,
                    replace=args.replace,
                    distance=args.distance,
                    nn_min=args.nn_min,
                    variogram=args.variogram,
                )
            elif args.verb == "eval":
                outcome = client.evaluate(args.session, args.values)
                result = {
                    "value": outcome.value,
                    "interpolated": outcome.interpolated,
                    "n_neighbors": outcome.n_neighbors,
                }
            elif args.verb == "simulate":
                outcome = client.simulate(args.session, args.values, value=args.value)
                result = {"value": outcome.value, "exact_hit": outcome.exact_hit}
            elif args.verb == "fit":
                result = client.fit(args.session)
            elif args.verb == "stats":
                result = client.stats(args.session)
            elif args.verb == "metrics":
                families = client.metrics()
                if args.prometheus:
                    from repro.obs.metrics import render_prometheus

                    print(render_prometheus(families), end="")
                    return 0
                result = {"families": families}
            elif args.verb == "traces":
                result = client.traces(trace_id=args.trace_id)
            elif args.verb == "snapshot":
                result = client.snapshot(args.session, name=args.name, path=args.path)
            elif args.verb == "restore":
                result = client.restore(
                    path=args.path,
                    name=args.name,
                    session=args.session,
                    replace=args.replace,
                )
            elif args.verb == "delete":
                result = client.delete_session(args.session)
            elif args.verb == "migrate":
                result = client.migrate(args.session, worker=args.worker)
            elif args.verb == "replicate":
                result = client.replicate(args.session)
            elif args.verb == "cluster-stats":
                result = client.cluster_stats()
            else:  # shutdown
                result = client.shutdown()
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach service at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    except RemoteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    for name in ALL_BENCHMARKS:
        setup = build_benchmark(name, "small")
        print(
            f"{name:<12s} Nv={setup.problem.num_variables:<3d} "
            f"metric={setup.metric_label:<20s} optimizer={setup.optimizer_kind}"
        )
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "figure1": _cmd_figure1,
    "record": _cmd_record,
    "replay": _cmd_replay,
    "benchmarks": _cmd_benchmarks,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "client": _cmd_client,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["bench"]:
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
