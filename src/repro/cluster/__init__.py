"""repro.cluster: sharded multi-worker serving for the kriging service.

One router socket, many ``KrigingService`` worker processes.  Sessions are
placed on workers by a consistent-hash ring and proxied transparently —
clients built for a single ``repro serve`` (including
:class:`repro.service.client.ServiceClient`) work against a cluster
unchanged.  On top of the proxy: per-worker admission control with
structured ``Overloaded`` rejections, periodic snapshot replication, live
session migration (``migrate`` verb) and automatic failover when a worker
dies.

Layout
------

``ring``        consistent-hash placement (stable across processes)
``admission``   per-worker in-flight caps + bounded wait queue
``router``      the TCP front end (a :class:`~repro.service.server.JsonLineServer`)
``migration``   drain → snapshot → restore → flip choreography; failover restore
``supervisor``  worker spawning, health pings, replication loop, reaping

Entry point: ``repro cluster`` (CLI) or :func:`run_cluster`.
"""

from __future__ import annotations

import asyncio
import tempfile
from typing import Callable

from repro.cluster.admission import AdmissionController, Overloaded, WorkerLost
from repro.cluster.breaker import CircuitBreaker
from repro.cluster.migration import migrate_session, restore_lost_sessions
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.router import ClusterRouter, WorkerHandle
from repro.cluster.supervisor import WorkerSupervisor
from repro.obs.logs import configure_logging

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ClusterRouter",
    "DEFAULT_REPLICAS",
    "HashRing",
    "Overloaded",
    "WorkerHandle",
    "WorkerLost",
    "WorkerSupervisor",
    "migrate_session",
    "restore_lost_sessions",
    "run_cluster",
]


def run_cluster(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 2,
    replica_dir: object | None = None,
    replication_interval: float = 5.0,
    health_interval: float = 1.0,
    max_inflight: int = 32,
    max_queue: int = 128,
    max_batch: int = 64,
    max_delay_ms: float = 2.0,
    worker_timeout: float = 30.0,
    breaker_threshold: int = 3,
    breaker_reset_ms: float = 250.0,
    slow_trace_ms: float | None = None,
    trace_ring: int = 2048,
    metrics_port: int | None = None,
    log_level: str = "info",
    port_file: object | None = None,
    on_ready: Callable[[str, int], None] | None = None,
) -> None:
    """Blocking entry point used by ``repro cluster``.

    Spawns ``workers`` subprocess workers, then serves the router until a
    ``shutdown`` request or SIGTERM/SIGINT; both paths drain in-flight
    requests, stop the workers cleanly and reap their processes.  Without
    ``replica_dir`` a temporary directory holds the replicas (fine for a
    single run; pass a real directory to survive router restarts).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    configure_logging(log_level)

    async def _amain(replicas: object) -> None:
        router = ClusterRouter(
            replica_dir=replicas,
            max_inflight=max_inflight,
            max_queue=max_queue,
            worker_timeout=worker_timeout,
            breaker_threshold=breaker_threshold,
            breaker_reset_ms=breaker_reset_ms,
            slow_trace_ms=slow_trace_ms,
            trace_ring=trace_ring,
            metrics_port=metrics_port,
        )
        supervisor = WorkerSupervisor(
            router,
            health_interval=health_interval,
            replication_interval=replication_interval,
        )
        await supervisor.spawn_workers(
            workers,
            host=host,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            slow_trace_ms=slow_trace_ms,
        )
        await router.serve(
            host, port, port_file=port_file, on_ready=on_ready, handle_signals=True
        )

    if replica_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
            asyncio.run(_amain(tmp))
    else:
        asyncio.run(_amain(replica_dir))
