"""Admission control: per-worker in-flight caps with a bounded queue.

Without backpressure, a front-end melting one estimator manifests as an
unbounded pile of buffered requests inside the router — latency grows
without limit and memory with it, and by the time anything fails, every
queued client has already timed out.  The controller keeps two small,
hard numbers per worker instead:

* ``max_inflight`` — requests concurrently forwarded to one worker; and
* ``max_queue`` — requests allowed to *wait* for a slot on that worker.

A request beyond both is rejected **immediately** with a structured
``Overloaded`` error carrying a ``retry_after_ms`` hint (the moral
equivalent of HTTP 503 + ``Retry-After``), so well-behaved clients back
off instead of stampeding, and the router's memory stays bounded no
matter the offered load.

Waiters are FIFO per worker; releasing a slot hands it directly to the
oldest waiter (no thundering herd).  When a worker dies, its waiters fail
fast with :class:`WorkerLost` so the failover window never strands them.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from typing import AsyncIterator

__all__ = ["AdmissionController", "Overloaded", "WorkerLost"]


class Overloaded(Exception):
    """Both the in-flight cap and the wait queue of a worker are full.

    ``retry_after_ms`` is the back-off hint shipped to the client.
    """

    def __init__(self, worker: str, retry_after_ms: float) -> None:
        super().__init__(
            f"worker {worker!r} is at capacity; retry in ~{retry_after_ms:.0f} ms"
        )
        self.worker = worker
        self.retry_after_ms = retry_after_ms


class WorkerLost(Exception):
    """The worker a request was queued for was declared dead."""

    def __init__(self, worker: str) -> None:
        super().__init__(f"worker {worker!r} was lost while the request waited")
        self.worker = worker


class _WorkerGate:
    """In-flight count plus FIFO waiters of one worker."""

    __slots__ = ("inflight", "waiters")

    def __init__(self) -> None:
        self.inflight = 0
        self.waiters: deque[asyncio.Future] = deque()


class AdmissionController:
    """Bounded concurrency per worker, structured rejection beyond it."""

    #: Base of the ``retry_after_ms`` hint; scaled by how full the queue is
    #: so clients rejected from a deeper backlog back off longer.
    RETRY_HINT_MS = 50.0

    def __init__(self, *, max_inflight: int = 32, max_queue: int = 128) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self._gates: dict[str, _WorkerGate] = {}
        #: Slots still held against workers already dropped by forget();
        #: their release() calls are absorbed here instead of raising.
        self._forgotten_inflight: dict[str, int] = {}
        self.admitted = 0
        self.queued = 0
        self.rejected = 0
        self.peak_queue = 0

    def _gate(self, worker: str) -> _WorkerGate:
        gate = self._gates.get(worker)
        if gate is None:
            gate = self._gates[worker] = _WorkerGate()
        return gate

    def retry_hint_ms(self, gate_depth: int) -> float:
        return self.RETRY_HINT_MS * (1.0 + gate_depth / max(1, self.max_inflight))

    async def acquire(self, worker: str) -> None:
        """Take an in-flight slot on ``worker``; may wait in the bounded
        queue; raises :class:`Overloaded` beyond it."""
        gate = self._gate(worker)
        if gate.inflight < self.max_inflight and not gate.waiters:
            gate.inflight += 1
            self.admitted += 1
            return
        if len(gate.waiters) >= self.max_queue:
            self.rejected += 1
            raise Overloaded(worker, self.retry_hint_ms(len(gate.waiters)))
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        gate.waiters.append(future)
        self.queued += 1
        self.peak_queue = max(self.peak_queue, len(gate.waiters))
        try:
            await future
        except asyncio.CancelledError:
            # The request task was cancelled while waiting.  If the slot
            # was already granted, pass it on; otherwise just leave.
            if future.cancelled():
                with contextlib.suppress(ValueError):
                    gate.waiters.remove(future)
            elif future.done() and future.exception() is None:
                self._grant_next(gate)
            raise
        self.admitted += 1

    def _grant_next(self, gate: _WorkerGate) -> None:
        """Hand the (already-counted) in-flight slot to the next waiter, or
        free it."""
        while gate.waiters:
            future = gate.waiters.popleft()
            if not future.done():
                future.set_result(None)
                return  # the slot transfers: inflight count unchanged
        gate.inflight -= 1

    def release(self, worker: str) -> None:
        """Return an in-flight slot (wakes the oldest waiter, FIFO).

        A slot acquired before the worker was dropped by :meth:`forget`
        releases into the void: that is the expected tail of a request
        that was in flight when the worker died, so it is absorbed
        silently — raising here would mask the connection error the
        caller is in the middle of propagating.
        """
        left = self._forgotten_inflight.get(worker)
        if left is not None:
            if left <= 1:
                del self._forgotten_inflight[worker]
            else:
                self._forgotten_inflight[worker] = left - 1
            return
        gate = self._gates.get(worker)
        if gate is None or gate.inflight <= 0:
            raise RuntimeError(f"release without acquire for worker {worker!r}")
        self._grant_next(gate)

    @contextlib.asynccontextmanager
    async def admit(self, worker: str) -> AsyncIterator[None]:
        await self.acquire(worker)
        try:
            yield
        finally:
            self.release(worker)

    def forget(self, worker: str) -> None:
        """Drop a dead worker: fail its waiters fast with
        :class:`WorkerLost` and discard its counters.

        Slots still held by in-flight requests are remembered so their
        eventual :meth:`release` is a no-op rather than an error."""
        gate = self._gates.pop(worker, None)
        if gate is None:
            return
        if gate.inflight > 0:
            self._forgotten_inflight[worker] = (
                self._forgotten_inflight.get(worker, 0) + gate.inflight
            )
        for future in gate.waiters:
            if not future.done():
                future.set_exception(WorkerLost(worker))
        gate.waiters.clear()

    def inflight(self, worker: str) -> int:
        gate = self._gates.get(worker)
        return gate.inflight if gate is not None else 0

    def waiting(self, worker: str) -> int:
        gate = self._gates.get(worker)
        return len(gate.waiters) if gate is not None else 0

    def stats(self) -> dict:
        """JSON-safe counters for ``cluster_stats``."""
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "peak_queue": self.peak_queue,
            "inflight": {
                worker: gate.inflight
                for worker, gate in sorted(self._gates.items())
                if gate.inflight
            },
        }
