"""Per-worker circuit breakers for the cluster router.

A worker that stops answering — hung process, dead TCP peer, a garbled
stream — fails every request sent to it, each one burning a full timeout.
Without a breaker the router keeps queueing new work onto the sick worker:
every caller pays the timeout, the admission queue fills with doomed
requests, and the fleet's tail latency is set by its slowest member.

:class:`CircuitBreaker` is the classic three-state machine:

``closed``
    Healthy: requests flow.  Each transport failure or timeout increments
    a *consecutive*-failure counter (any success resets it); reaching
    ``failure_threshold`` trips the breaker open.
``open``
    Fast-fail: the router answers new requests immediately with a
    retryable ``Unavailable`` carrying a ``retry_after_ms`` hint, instead
    of queueing them onto the sick worker.  After ``reset_after_ms`` the
    breaker moves to half-open.
``half_open``
    Exactly one request is let through as the *probe*; everyone else
    still fast-fails.  The probe's success closes the breaker, its
    failure re-opens it (restarting the cool-off).  A probe whose caller
    vanished without reporting (e.g. cancelled mid-flight) stops blocking
    after ``reset_after_ms``: the next caller becomes the new probe.

Only *transport* outcomes drive the machine: a structured error from the
worker (``Overloaded``, ``UnknownSession`` …) proves the worker is alive
and counts as a success.  The clock is injectable so tests can step time
instead of sleeping.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker (see module docstring).

    Parameters
    ----------
    failure_threshold:
        Consecutive transport failures that trip a closed breaker open.
    reset_after_ms:
        Cool-off after a trip before the first half-open probe — and how
        long a half-open probe may stay unreported before another caller
        is allowed to probe in its place.
    clock:
        Monotonic seconds source (injectable for tests).
    on_trip / on_reset:
        Optional observers: ``on_trip`` fires each time the breaker trips
        open (closed→open and a failed half-open probe), ``on_reset`` when
        a success closes a non-closed breaker.  The router hangs its
        structured log lines here so the state machine itself stays free
        of logging concerns.  Observer exceptions are swallowed — a broken
        log sink must not change breaker behaviour.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_after_ms: float = 250.0,
        clock: Callable[[], float] = time.monotonic,
        on_trip: Callable[[], None] | None = None,
        on_reset: Callable[[], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_after_ms <= 0:
            raise ValueError(f"reset_after_ms must be > 0, got {reset_after_ms}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_ms = float(reset_after_ms)
        self._clock = clock
        self._on_trip = on_trip
        self._on_reset = on_reset
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.fast_fails = 0
        self._opened_at = 0.0
        self._probe_at: float | None = None

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a request go to the worker right now?

        Called once per request *before* sending; a ``False`` means
        fast-fail with :meth:`retry_after_ms` as the hint.  In half-open
        state the first ``True`` caller *is* the probe — it must report
        back through :meth:`record_success` or :meth:`record_failure`.
        """
        now = self._clock()
        if self.state == OPEN:
            if (now - self._opened_at) * 1000.0 < self.reset_after_ms:
                self.fast_fails += 1
                return False
            self.state = HALF_OPEN
            self._probe_at = None
        if self.state == HALF_OPEN:
            if (
                self._probe_at is not None
                and (now - self._probe_at) * 1000.0 < self.reset_after_ms
            ):
                self.fast_fails += 1
                return False
            self._probe_at = now
            return True
        return True

    def retry_after_ms(self) -> float:
        """Back-off hint for a fast-failed caller: time until the breaker
        will next let a probe through (floored at 1 ms so a client never
        spins)."""
        if self.state == OPEN:
            elapsed = (self._clock() - self._opened_at) * 1000.0
            return max(1.0, self.reset_after_ms - elapsed)
        if self.state == HALF_OPEN and self._probe_at is not None:
            elapsed = (self._clock() - self._probe_at) * 1000.0
            return max(1.0, self.reset_after_ms - elapsed)
        return 1.0

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A request reached the worker and got an answer (any answer)."""
        recovered = self.state != CLOSED
        self.consecutive_failures = 0
        self.state = CLOSED
        self._probe_at = None
        if recovered and self._on_reset is not None:
            with contextlib.suppress(Exception):
                self._on_reset()

    def record_failure(self) -> None:
        """A request failed at the transport level (reset, EOF, garbled
        frame, timeout) — the kind of failure that says the *worker* is
        sick, not the request."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        tripped = self.state != OPEN
        if tripped:
            self.trips += 1
        self.state = OPEN
        self._opened_at = self._clock()
        self._probe_at = None
        if tripped and self._on_trip is not None:
            with contextlib.suppress(Exception):
                self._on_trip()

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-safe state for ``cluster_stats``."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "fast_fails": self.fast_fails,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}, trips={self.trips})"
        )
