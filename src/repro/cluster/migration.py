"""Live session migration and failover restore.

Both operations are built from the same primitive the snapshot format
already guarantees: a drained session's NPZ snapshot restores **bit for
bit** anywhere.  Migration is the planned form — drain, snapshot at the
source, restore at the target, flip the routing entry, delete the source
copy — and failover is the unplanned one: the source is gone, so the
latest *replicated* snapshot stands in for the drain point (anything
simulated after the last replication interval is lost, which is the
replication-lag trade every snapshot-replicated system makes).

The functions here operate on the router's state (workers, routing table,
hash ring, draining markers) but are kept out of :mod:`.router` so the
choreography — the part with ordering bugs — is readable and testable on
its own.
"""

from __future__ import annotations

import asyncio
import pathlib
import time

from repro.obs.logs import get_logger
from repro.service.server import ServiceError

logger = get_logger("cluster.migration")

__all__ = [
    "STEP_TIMEOUT",
    "drain_worker_session",
    "migrate_session",
    "pick_target",
    "replica_path",
    "restore_lost_sessions",
]

#: Ceiling (seconds) on each worker round trip these choreographies make
#: (snapshot, restore, delete).  A hung worker mid-migration or
#: mid-failover must fail the step — and move on to the next candidate —
#: not park the supervisor's loops forever.
STEP_TIMEOUT = 30.0


def replica_path(replica_dir: pathlib.Path, session: str) -> pathlib.Path:
    """Where ``session``'s replicated (and migration) snapshot lives."""
    return pathlib.Path(replica_dir) / f"{session}.npz"


async def drain_worker_session(
    handle, session: str, *, timeout: float = 30.0, poll: float = 0.005
) -> None:
    """Wait until the source worker has zero in-flight requests for
    ``session`` (the router must already be holding new ones)."""
    deadline = time.monotonic() + timeout
    while handle.session_inflight.get(session, 0) > 0:
        if time.monotonic() > deadline:
            raise ServiceError(
                "MigrationFailed",
                f"session {session!r} did not drain within {timeout:.0f}s "
                f"({handle.session_inflight.get(session, 0)} requests in flight)",
            )
        await asyncio.sleep(poll)


def pick_target(router, *, exclude: set[str]) -> str:
    """The least-loaded live worker outside ``exclude`` (session count,
    then in-flight requests, then id for determinism)."""
    candidates = [
        handle
        for handle in router.workers.values()
        if handle.alive and handle.id not in exclude
    ]
    if not candidates:
        raise ServiceError("Unavailable", "no live worker available as migration target")
    return min(
        candidates,
        key=lambda h: (len(h.sessions), sum(h.session_inflight.values()), h.id),
    ).id


async def migrate_session(
    router,
    session: str,
    *,
    target: str | None = None,
    drain_timeout: float = 30.0,
) -> dict:
    """Move a live session to another worker without losing a request.

    Order matters:

    1. mark the session *draining* — the router holds new requests for it
       (they resume against whatever the routing table says afterwards);
    2. wait for the source's in-flight requests for the session to finish;
    3. snapshot at the source (this also refreshes the session's replica —
       the file doubles as the failover copy);
    4. restore at the target (``replace`` in case a stale copy exists);
    5. flip the routing entry;
    6. delete the source copy.

    A failure before step 5 leaves the session where it was.  Step 6 runs
    *after* the migration has committed, so a failure there is logged and
    reported as ``source_deleted: false`` rather than raised — the shadow
    copy on the source is harmless (the routing table already points at
    the target) and raising would make a successful migration look failed.
    """
    source_id = router.table.get(session)
    if source_id is None:
        raise ServiceError("UnknownSession", f"no session named {session!r}")
    source = router.workers[source_id]
    if not source.alive:
        raise ServiceError(
            "Unavailable", f"session {session!r}'s worker {source_id!r} is down"
        )
    if target is None:
        target = pick_target(router, exclude={source_id})
    handle = router.workers.get(target)
    if handle is None or not handle.alive:
        raise ServiceError("BadRequest", f"no live worker named {target!r}")
    if target == source_id:
        raise ServiceError(
            "BadRequest", f"session {session!r} is already on worker {target!r}"
        )

    t0 = time.perf_counter()
    event = asyncio.Event()
    router.draining[session] = event
    try:
        await drain_worker_session(source, session, timeout=drain_timeout)
        path = replica_path(router.replica_dir, session)
        try:
            await source.client.request(
                "snapshot", session=session, path=str(path), timeout=STEP_TIMEOUT
            )
            await handle.client.request(
                "restore", path=str(path), session=session, replace=True,
                timeout=STEP_TIMEOUT,
            )
        except (asyncio.TimeoutError, TimeoutError, ConnectionError) as exc:
            # Pre-flip failure: the session stays where it was; surface a
            # structured error instead of an InternalError.
            raise ServiceError(
                "MigrationFailed",
                f"migrating {session!r} to {target!r} failed mid-step: {exc!r}",
            ) from exc
        router.table[session] = target
        handle.sessions.add(session)
        source.sessions.discard(session)
        router.migrations += 1
        # The source copy is now shadow state; drop it so its memory (and
        # any confusion about ownership) goes with it.  The migration has
        # already committed, so a failed delete must not raise.
        source_deleted = True
        try:
            await source.client.request(
                "delete_session", session=session, timeout=STEP_TIMEOUT
            )
        except Exception as exc:  # noqa: BLE001 - post-commit cleanup only
            source_deleted = False
            logger.warning(
                "migration committed but deleting the source copy failed; "
                "a harmless shadow copy is left behind",
                extra={
                    "session": session,
                    "source": source_id,
                    "target": target,
                    "reason": repr(exc),
                },
            )
    finally:
        router.draining.pop(session, None)
        event.set()
    return {
        "session": session,
        "source": source_id,
        "target": target,
        "source_deleted": source_deleted,
        "snapshot": str(replica_path(router.replica_dir, session)),
        "seconds": round(time.perf_counter() - t0, 6),
    }


async def restore_lost_sessions(router, dead) -> dict:
    """Failover: rehome every session of a dead worker from its replica.

    Sessions are restored onto their ring-preferred surviving worker (the
    same answer :meth:`HashRing.preference` gives every process, so even
    two routers would agree).  A session with no replica on disk — created
    and never yet replicated — is *lost*: it is dropped from the routing
    table and counted, because routing traffic to a ghost would just turn
    every request into an error.
    """
    restored: list[dict] = []
    lost: list[str] = []
    for session in sorted(dead.sessions):
        path = replica_path(router.replica_dir, session)
        candidates = [
            candidate
            for candidate in router.ring.preference(session)
            if (handle := router.workers.get(candidate)) is not None and handle.alive
        ]
        if not candidates or not path.exists():
            lost.append(session)
            router.table.pop(session, None)
            router.sessions_lost += 1
            continue
        # Walk the ring preference instead of betting everything on its
        # first entry: during a multi-failure event the preferred survivor
        # may itself be sick (hung but not yet declared dead) — each
        # attempt is bounded so one such candidate costs a timeout, not
        # the whole failover.
        target_id = None
        for candidate in candidates:
            handle = router.workers[candidate]
            try:
                await handle.ensure_connected()
                await handle.client.request(
                    "restore", path=str(path), session=session, replace=True,
                    timeout=STEP_TIMEOUT,
                )
            except Exception as exc:  # noqa: BLE001 - try the next candidate
                logger.warning(
                    "failover restore attempt failed; trying the next "
                    "ring-preferred survivor",
                    extra={
                        "session": session,
                        "candidate": candidate,
                        "reason": repr(exc),
                    },
                )
                continue
            target_id = candidate
            break
        if target_id is None:
            lost.append(session)
            router.table.pop(session, None)
            router.sessions_lost += 1
            continue
        router.table[session] = target_id
        router.workers[target_id].sessions.add(session)
        restored.append({"session": session, "worker": target_id})
    dead.sessions.clear()
    return {"restored": restored, "lost": lost}
