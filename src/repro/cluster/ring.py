"""Consistent-hash ring placing sessions on workers.

Placement must be *stable* — adding or removing one worker may only move
the sessions that hash between the changed worker's points and their
predecessors, never reshuffle the whole fleet (a reshuffle would turn
every worker change into a mass migration).  The classic construction:
each worker owns :data:`DEFAULT_REPLICAS` pseudo-random points on a hash
circle, and a key belongs to the first worker point at or after the key's
own hash, wrapping around.

Hashing is BLAKE2b (stdlib, keyed by nothing) rather than ``hash()``:
Python's string hash is salted per process, and the router, the
supervisor's failover path and any future peer must all agree on
placement across processes and runs.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Iterable, Iterator

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual points per worker.  More points = smoother balance (stddev of
#: the per-worker share shrinks like 1/sqrt(replicas)) at the cost of a
#: larger sorted array; 64 keeps a 2-16 worker fleet within a few percent.
DEFAULT_REPLICAS = 64


def _hash(key: str) -> int:
    """A stable 64-bit position on the circle."""
    return int.from_bytes(blake2b(key.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash assignment of string keys to named workers."""

    def __init__(self, workers: Iterable[str] = (), *, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._workers: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for worker in workers:
            self.add(worker)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    @property
    def workers(self) -> list[str]:
        """The current fleet, sorted for deterministic iteration."""
        return sorted(self._workers)

    def _rebuild(self) -> None:
        pairs = sorted(
            (_hash(f"{worker}#{replica}"), worker)
            for worker in self._workers
            for replica in range(self.replicas)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def add(self, worker: str) -> None:
        """Add a worker (idempotent)."""
        if not worker:
            raise ValueError("worker id must be a non-empty string")
        if worker not in self._workers:
            self._workers.add(worker)
            self._rebuild()

    def remove(self, worker: str) -> None:
        """Remove a worker; keys it owned move to their ring successors."""
        if worker in self._workers:
            self._workers.remove(worker)
            self._rebuild()

    def assign(self, key: str) -> str:
        """The worker owning ``key`` (first point at or after its hash)."""
        if not self._points:
            raise LookupError("hash ring is empty: no workers registered")
        index = bisect.bisect_left(self._points, _hash(key))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def preference(self, key: str) -> Iterator[str]:
        """Distinct workers in ring order starting at ``key``'s owner.

        The failover path walks this to find the next-best home for a
        session whose owner died: the first yielded worker is
        :meth:`assign`'s answer, the second is where the key lands if that
        worker disappears, and so on.
        """
        if not self._points:
            return
        start = bisect.bisect_left(self._points, _hash(key))
        seen: set[str] = set()
        n = len(self._owners)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner not in seen:
                seen.add(owner)
                yield owner
