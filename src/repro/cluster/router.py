"""The cluster router: one address, many workers, the same protocol.

:class:`ClusterRouter` listens exactly like ``repro serve`` and speaks the
same newline-delimited JSON verbs, so every existing client — the sync and
async :mod:`repro.service.client`, the CLI, the load generators — works
against a cluster unchanged.  Behind the socket it keeps a fleet of
:class:`WorkerHandle`\\ s (one ``KrigingService`` process each), places
sessions on them with a consistent-hash ring keyed on session name, and
proxies each request to its session's owner over a pipelined connection.

What the router adds on top of transparent proxying:

* **admission control** — per-worker in-flight caps with a bounded wait
  queue (:mod:`repro.cluster.admission`); beyond both, clients get a
  structured ``Overloaded`` error with a ``retry_after_ms`` hint instead
  of unbounded buffering;
* **deadline enforcement** — the client's ``deadline_ms`` budget is
  restamped (minus router queueing time) onto every proxied request and
  bounds the proxied call with :func:`asyncio.wait_for`; requests whose
  budget ran out waiting are shed with ``DeadlineExceeded``, and calls
  with no deadline still hit the ``worker_timeout`` ceiling so a hung
  worker can never park a request forever;
* **circuit breakers** — per-worker (:mod:`repro.cluster.breaker`):
  consecutive transport failures or timeouts trip the worker's breaker
  open and new requests fast-fail with a retryable ``Unavailable`` +
  ``retry_after_ms`` instead of queueing onto the sick worker; a
  half-open probe closes the breaker once the worker answers again;
* **live migration** — the ``migrate`` verb drains a session, snapshots
  it, restores it on another worker, flips the routing entry and deletes
  the source copy, all while new requests for the session wait at the
  router (:mod:`repro.cluster.migration`);
* **failover** — together with :mod:`repro.cluster.supervisor`: dead
  workers are detected by health pings and their sessions restored onto
  survivors from replicated snapshots;
* **admin verbs** — ``cluster_stats``, ``replicate`` (force a replication
  pass) and ``kill_worker`` (chaos drill: SIGKILL one worker so a test or
  benchmark can watch failover happen).

Cross-host note: workers are subprocesses on the router's host and
snapshots travel through a shared directory; the wire protocol is already
host-agnostic, but a remote-worker transport for snapshot files is future
work (see ROADMAP).
"""

from __future__ import annotations

import asyncio
import contextlib
import pathlib
import time
from typing import Awaitable, Callable

from repro.cluster import migration
from repro.cluster.admission import AdmissionController, Overloaded, WorkerLost
from repro.cluster.breaker import CLOSED, HALF_OPEN, CircuitBreaker
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.obs.httpexp import start_metrics_http
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, aggregate_families
from repro.obs.trace import Tracer
from repro.service import protocol
from repro.service.client import AsyncServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import JsonLineServer, ServiceError
from repro.service.session import check_name

__all__ = ["ClusterRouter", "WorkerHandle"]

#: Fields of a request that never forward to a worker.
_LOCAL_FIELDS = ("id", "op", "worker")

#: ``retry_after_ms`` hint sent with ``Unavailable`` errors during a
#: failover window — long enough for a health-check round plus a restore.
FAILOVER_RETRY_HINT_MS = 250.0


def _forwarded(request: dict) -> dict:
    """The worker-bound copy of a request.

    Strips the router-local fields and every underscore-prefixed internal
    annotation (``_deadline`` is a live object, not JSON), and restamps
    ``deadline_ms`` with the budget actually *left* — the time the request
    spent queued at the router is gone and must not be granted again
    downstream.  ``parent_span`` is restamped the same way: the worker's
    spans must hang under the router's dispatch span, not the client's
    (``trace_id`` forwards untouched, as the wire contract says).
    """
    fields = {
        key: value
        for key, value in request.items()
        if key not in _LOCAL_FIELDS and not key.startswith("_")
    }
    deadline = request.get("_deadline")
    if deadline is not None:
        fields["deadline_ms"] = max(0.0, deadline.remaining_ms())
    span = request.get("_span")
    if span is not None:
        fields["trace_id"] = span.trace_id
        fields["parent_span"] = span.span_id
    return fields


class WorkerHandle:
    """The router's view of one worker: address, connection, placement."""

    def __init__(
        self,
        worker_id: str,
        host: str,
        port: int,
        *,
        process: object | None = None,
    ) -> None:
        self.id = str(worker_id)
        self.host = host
        self.port = int(port)
        self.process = process  # subprocess.Popen when the supervisor spawned it
        self.alive = True
        self.sessions: set[str] = set()
        self.session_inflight: dict[str, int] = {}
        self.ping_failures = 0
        self.breaker = CircuitBreaker()
        self.client: AsyncServiceClient | None = None
        self._connect_lock = asyncio.Lock()

    async def connect(self) -> None:
        self.client = await AsyncServiceClient.connect(self.host, self.port)

    async def ensure_connected(self) -> None:
        """Reconnect when the pipelined connection has died.

        A garbled frame (or reset) kills the async client's receive loop;
        requests written to such a *broken* client would sit unanswered
        until their timeout.  Serialized on a per-handle lock so a burst of
        requests reconnects once, not once each.
        """
        if self.client is not None and not self.client.is_broken:
            return
        async with self._connect_lock:
            if self.client is not None:
                if not self.client.is_broken:
                    return
                old, self.client = self.client, None
                with contextlib.suppress(Exception):
                    await old.close()
            await self.connect()

    async def close(self) -> None:
        if self.client is not None:
            await self.client.close()
            self.client = None

    def describe(self, admission: AdmissionController) -> dict:
        return {
            "worker": self.id,
            "host": self.host,
            "port": self.port,
            "alive": self.alive,
            "sessions": sorted(self.sessions),
            "inflight": admission.inflight(self.id),
            "waiting": admission.waiting(self.id),
            "breaker": self.breaker.describe(),
        }


class ClusterRouter(JsonLineServer):
    """Sharded serving front end (see module docstring).

    Parameters
    ----------
    replica_dir:
        Shared directory for replicated snapshots — the failover source
        and the migration channel.  Created on first use.
    max_inflight / max_queue:
        Admission-control knobs, per worker.
    ring_replicas:
        Virtual points per worker on the consistent-hash ring.
    worker_timeout:
        Ceiling (seconds) on any proxied worker call, deadline or not — a
        hung worker fails the call with a retryable ``Unavailable``
        instead of parking it until the health loop notices.
    breaker_threshold / breaker_reset_ms:
        Per-worker circuit-breaker knobs (consecutive transport failures
        that trip it open; cool-off before the half-open probe).
    slow_trace_ms / trace_ring:
        Router-side tracer knobs (see :class:`~repro.obs.trace.Tracer`);
        like the workers, the router never samples — it traces whatever
        arrives already stamped with a ``trace_id``.
    metrics_port:
        When set, ``GET /metrics`` on this port serves the router's *own*
        metrics in Prometheus text (the ``metrics`` verb additionally
        aggregates the workers').
    """

    span_prefix = "router"

    def __init__(
        self,
        *,
        replica_dir: object,
        max_inflight: int = 32,
        max_queue: int = 128,
        ring_replicas: int = DEFAULT_REPLICAS,
        worker_timeout: float = 30.0,
        breaker_threshold: int = 3,
        breaker_reset_ms: float = 250.0,
        slow_trace_ms: float | None = None,
        trace_ring: int = 2048,
        metrics_port: int | None = None,
    ) -> None:
        super().__init__()
        self.replica_dir = pathlib.Path(replica_dir)
        self.worker_timeout = float(worker_timeout)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_ms = float(breaker_reset_ms)
        self.workers: dict[str, WorkerHandle] = {}
        self.ring = HashRing(replicas=ring_replicas)
        self.table: dict[str, str] = {}
        self.draining: dict[str, asyncio.Event] = {}
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_queue=max_queue
        )
        self.migrations = 0
        self.failovers = 0
        self.sessions_lost = 0
        self.proxied = 0
        self.deadline_misses = 0
        self.breaker_fast_fails = 0
        self.supervisor = None  # attached by WorkerSupervisor
        self.logger = get_logger("cluster")
        self.tracer = Tracer(
            ring_size=trace_ring,
            slow_ms=float("inf") if slow_trace_ms is None else float(slow_trace_ms),
        )
        self.metrics_port = metrics_port
        self._metrics_http: asyncio.AbstractServer | None = None
        self.metrics = MetricsRegistry()
        self._register_metrics()
        self._ops: dict[str, Callable[[dict], Awaitable[dict]]] = {
            "ping": self._op_ping,
            "create_session": self._op_create_session,
            "restore": self._op_restore,
            "list_sessions": self._op_list_sessions,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "traces": self._op_traces,
            "delete_session": self._op_delete_session,
            "migrate": self._op_migrate,
            "replicate": self._op_replicate,
            "cluster_stats": self._op_cluster_stats,
            "kill_worker": self._op_kill_worker,
            "shutdown": self._op_shutdown,
        }

    def _register_metrics(self) -> None:
        """The router's plain counter attributes under the one registry.

        The attributes stay the storage (``cluster_stats`` and existing
        tests read them directly); the registry reads them at collect time.
        Families that both sides export (``repro_deadline_misses_total``,
        ``repro_slow_traces_total``) aggregate across the fleet when the
        ``metrics`` verb merges worker snapshots into this one.
        """
        m = self.metrics
        for name, attr, help_text in (
            ("repro_proxied_requests_total", "proxied", "requests proxied to workers"),
            ("repro_migrations_total", "migrations", "completed live migrations"),
            ("repro_failovers_total", "failovers", "workers declared dead"),
            (
                "repro_sessions_lost_total",
                "sessions_lost",
                "sessions lost in failover (no usable replica)",
            ),
            (
                "repro_deadline_misses_total",
                "deadline_misses",
                "requests shed because their deadline budget ran out (all sheds)",
            ),
            (
                "repro_breaker_fast_fails_total",
                "breaker_fast_fails",
                "requests fast-failed by an open circuit breaker",
            ),
        ):
            m.counter_fn(name, lambda a=attr: float(getattr(self, a)), help_text)
        m.counter_fn(
            "repro_breaker_trips_total",
            lambda: [
                ({"worker": handle.id}, float(handle.breaker.trips))
                for _, handle in sorted(self.workers.items())
            ],
            "circuit-breaker trips per worker",
        )
        m.gauge_fn(
            "repro_breaker_state",
            lambda: [
                (
                    {"worker": handle.id},
                    {CLOSED: 0.0, HALF_OPEN: 1.0}.get(handle.breaker.state, 2.0),
                )
                for _, handle in sorted(self.workers.items())
            ],
            "per-worker breaker state (0 closed, 1 half-open, 2 open)",
        )
        m.gauge_fn(
            "repro_admission_inflight",
            lambda: [
                ({"worker": handle.id}, float(self.admission.inflight(handle.id)))
                for handle in self.live_workers()
            ],
            "admitted in-flight requests per worker",
        )
        m.gauge_fn(
            "repro_admission_waiting",
            lambda: [
                ({"worker": handle.id}, float(self.admission.waiting(handle.id)))
                for handle in self.live_workers()
            ],
            "requests waiting in the admission queue per worker",
        )
        # Deliberately NOT named repro_sessions: the workers export that,
        # and the fan-out merge would double-count every session.
        m.gauge_fn(
            "repro_routed_sessions", lambda: float(len(self.table)), "routed sessions"
        )
        m.gauge_fn(
            "repro_workers", lambda: float(len(self.live_workers())), "live workers"
        )
        m.counter_fn(
            "repro_slow_traces_total",
            lambda: float(self.tracer.slow_traces_captured),
            "traces promoted to the slow-trace buffer",
        )

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        self.logger.info(message)

    async def add_worker(self, handle: WorkerHandle) -> None:
        """Register (and connect to) a worker; it starts receiving sessions."""
        if handle.id in self.workers:
            raise ValueError(f"worker {handle.id!r} already registered")
        handle.breaker = CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            reset_after_ms=self.breaker_reset_ms,
            on_trip=lambda wid=handle.id: self._breaker_tripped(wid),
            on_reset=lambda wid=handle.id: self._breaker_reset(wid),
        )
        if handle.client is None:
            await handle.connect()
        self.workers[handle.id] = handle
        self.ring.add(handle.id)

    def live_workers(self) -> list[WorkerHandle]:
        return [handle for handle in self.workers.values() if handle.alive]

    def _breaker_tripped(self, worker_id: str) -> None:
        handle = self.workers.get(worker_id)
        breaker = handle.breaker if handle is not None else None
        self.logger.warning(
            "circuit breaker tripped open; requests to this worker will "
            "fast-fail until a half-open probe succeeds",
            extra={
                "worker": worker_id,
                "trips": breaker.trips if breaker is not None else None,
                "consecutive_failures": (
                    breaker.consecutive_failures if breaker is not None else None
                ),
            },
        )

    def _breaker_reset(self, worker_id: str) -> None:
        self.logger.info(
            "circuit breaker closed; worker is answering again",
            extra={"worker": worker_id},
        )

    async def mark_dead(self, handle: WorkerHandle) -> dict:
        """Declare a worker dead and fail its sessions over to survivors.

        Called by the supervisor's health loop; safe to call once per
        worker (subsequent calls are no-ops).
        """
        if not handle.alive:
            return {"restored": [], "lost": []}
        handle.alive = False
        self.ring.remove(handle.id)
        self.admission.forget(handle.id)
        self.failovers += 1
        with contextlib.suppress(Exception):
            await handle.close()
        outcome = await migration.restore_lost_sessions(self, handle)
        self.logger.warning(
            "worker died; sessions failed over from replicas",
            extra={
                "worker": handle.id,
                "restored": [r["session"] for r in outcome["restored"]],
                "lost": outcome["lost"],
            },
        )
        return outcome

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _wait_not_draining(self, session: str) -> None:
        while (event := self.draining.get(session)) is not None:
            await event.wait()

    def _live_handle(self, worker_id: str, *, context: str) -> WorkerHandle:
        handle = self.workers.get(worker_id)
        if handle is None or not handle.alive:
            raise ServiceError(
                "Unavailable",
                f"{context} (worker {worker_id!r} is down)",
                retry_after_ms=FAILOVER_RETRY_HINT_MS,
            )
        return handle

    async def _forward(
        self,
        handle: WorkerHandle,
        op: str,
        fields: dict,
        deadline: protocol.Deadline | None = None,
        span: object | None = None,
    ) -> dict:
        """One admitted, breaker-gated, deadline-bounded round trip.

        The ``asyncio.wait_for`` budget is the request's remaining
        deadline, capped by :attr:`worker_timeout` (which also bounds
        deadline-less calls) — and the admission-queue wait counts against
        it, so a request cannot outlive its budget queueing.  Transport
        failures and timeouts feed the worker's circuit breaker; answers
        of any kind (including structured errors) feed it successes.
        """
        breaker = handle.breaker
        if not breaker.allow():
            self.breaker_fast_fails += 1
            raise ServiceError(
                "Unavailable",
                f"worker {handle.id!r} circuit is open "
                f"(tripped after {breaker.failure_threshold} consecutive "
                "transport failures)",
                retry_after_ms=breaker.retry_after_ms(),
            )
        timeout = self.worker_timeout
        if deadline is not None:
            deadline.raise_if_expired(f"proxy to worker {handle.id!r}")
            timeout = min(timeout, deadline.remaining_ms() / 1000.0)
        session = fields.get("session") if isinstance(fields.get("session"), str) else None
        # Count the request against its session *before* it can wait in
        # the admission queue (synchronously, so no drain can start in
        # between): a migration drain must also wait for queued requests,
        # or it would flip the table and delete the source under them.
        if session is not None:
            self.session_inflight_inc(handle, session)
        try:
            try:
                result = await asyncio.wait_for(
                    self._admitted_request(handle, op, fields, span), timeout
                )
                breaker.record_success()
                return result
            finally:
                if session is not None:
                    self.session_inflight_dec(handle, session)
        except Overloaded as exc:
            raise ServiceError(
                "Overloaded", str(exc), retry_after_ms=exc.retry_after_ms
            ) from exc
        except WorkerLost as exc:
            raise ServiceError(
                "Unavailable", str(exc), retry_after_ms=FAILOVER_RETRY_HINT_MS
            ) from exc
        except RemoteError as exc:
            # The worker answered — a structured error is a healthy
            # transport, whatever the verb thinks of the request.
            breaker.record_success()
            raise ServiceError(exc.kind, str(exc), **exc.details) from exc
        except (asyncio.TimeoutError, TimeoutError) as exc:
            breaker.record_failure()
            if deadline is not None and deadline.expired:
                self.deadline_misses += 1
                raise protocol.DeadlineExceeded(
                    f"proxied call to worker {handle.id!r} outlived the "
                    f"request deadline ({deadline.budget_ms:.0f} ms budget)"
                ) from exc
            raise ServiceError(
                "Unavailable",
                f"worker {handle.id!r} did not answer within {timeout:.1f}s",
                retry_after_ms=FAILOVER_RETRY_HINT_MS,
            ) from exc
        except (ConnectionError, protocol.ProtocolError) as exc:
            # The worker died mid-request; the health loop will confirm and
            # fail its sessions over.  The client retries through the window.
            breaker.record_failure()
            raise ServiceError(
                "Unavailable",
                f"worker {handle.id!r} connection failed: {exc}",
                retry_after_ms=FAILOVER_RETRY_HINT_MS,
            ) from exc

    async def _admitted_request(
        self,
        handle: WorkerHandle,
        op: str,
        fields: dict,
        span: object | None = None,
    ) -> dict:
        """Admission slot + (re)connect + the actual worker round trip —
        one awaitable so :meth:`_forward` can bound all of it at once."""
        t_admit = time.perf_counter()
        async with self.admission.admit(handle.id):
            if span is not None:
                # Post-hoc: how long this request waited for a worker slot.
                self.tracer.emit(
                    "router.admission",
                    span.trace_id,
                    span.span_id,
                    t_admit,
                    time.perf_counter(),
                    attrs={"worker": handle.id},
                )
            self.proxied += 1
            await handle.ensure_connected()
            return await handle.client.request(op, **fields)

    @staticmethod
    def session_inflight_inc(handle: WorkerHandle, session: str) -> None:
        handle.session_inflight[session] = handle.session_inflight.get(session, 0) + 1

    @staticmethod
    def session_inflight_dec(handle: WorkerHandle, session: str) -> None:
        left = handle.session_inflight.get(session, 0) - 1
        if left > 0:
            handle.session_inflight[session] = left
        else:
            handle.session_inflight.pop(session, None)

    async def _proxy_session_op(self, request: dict) -> dict:
        """Route a session-scoped verb to the session's owner."""
        name = request.get("session")
        if not isinstance(name, str):
            raise ServiceError("BadRequest", "missing 'session' field")
        await self._wait_not_draining(name)
        worker_id = self.table.get(name)
        if worker_id is None:
            raise ServiceError("UnknownSession", f"no session named {name!r}")
        handle = self._live_handle(
            worker_id, context=f"session {name!r} is failing over"
        )
        return await self._forward(
            handle,
            request["op"],
            _forwarded(request),
            request.get("_deadline"),
            span=request.get("_span"),
        )

    def _placement(self, name: str, pin: object) -> WorkerHandle:
        """Owner for a new session: existing entry > explicit pin > ring."""
        existing = self.table.get(name)
        if existing is not None:
            return self._live_handle(
                existing, context=f"session {name!r} is failing over"
            )
        if pin is not None:
            if not isinstance(pin, str) or pin not in self.workers:
                raise ServiceError("BadRequest", f"no worker named {pin!r}")
            return self._live_handle(pin, context=f"worker {pin!r} requested")
        if not self.ring.workers:
            raise ServiceError("Unavailable", "no live workers registered")
        return self._live_handle(
            self.ring.assign(name), context=f"placing session {name!r}"
        )

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    async def _op_ping(self, request: dict) -> dict:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "role": "router",
            "sessions": len(self.table),
            "workers": len(self.live_workers()),
        }

    async def _op_create_session(self, request: dict) -> dict:
        name = check_name(request.get("session"))
        await self._wait_not_draining(name)
        handle = self._placement(name, request.get("worker"))
        result = await self._forward(
            handle,
            "create_session",
            _forwarded(request),
            request.get("_deadline"),
            span=request.get("_span"),
        )
        self.table[name] = handle.id
        handle.sessions.add(name)
        return {**result, "worker": handle.id}

    async def _op_restore(self, request: dict) -> dict:
        # The worker would take the restored name from the snapshot
        # manifest; the router cannot read the file before routing it, so
        # a cluster restore must name its session explicitly.
        name = request.get("session", request.get("name"))
        if not isinstance(name, str):
            raise ServiceError(
                "BadRequest",
                "cluster restore requires an explicit 'session' (or 'name')",
            )
        name = check_name(name)
        await self._wait_not_draining(name)
        handle = self._placement(name, request.get("worker"))
        fields = {**_forwarded(request), "session": name}
        result = await self._forward(
            handle, "restore", fields, request.get("_deadline"),
            span=request.get("_span"),
        )
        self.table[name] = handle.id
        handle.sessions.add(name)
        return {**result, "worker": handle.id}

    async def _op_list_sessions(self, request: dict) -> dict:
        return {"sessions": await self._fanout("list_sessions", request)}

    async def _op_stats(self, request: dict) -> dict:
        if "session" in request:
            return await self._proxy_session_op(request)
        merged = await self._fanout("stats", request)
        return {"sessions": merged, "cluster": self._describe()}

    async def _fanout(self, op: str, request: dict) -> list[dict]:
        """Merge one read-only verb's per-session rows across the fleet."""
        deadline = request.get("_deadline")
        merged: list[dict] = []
        for handle in self.live_workers():
            result = await self._forward(handle, op, {}, deadline)
            for row in result.get("sessions", []):
                merged.append({**row, "worker": handle.id})
        merged.sort(key=lambda row: row.get("session", ""))
        return merged

    async def _op_metrics(self, request: dict) -> dict:
        """One metric snapshot for the whole cluster.

        The router's own families and every live worker's are merged with
        :func:`~repro.obs.metrics.aggregate_families`, so the response has
        exactly the shape a single worker's ``metrics`` verb has — scrape
        tooling points at either without caring which one it found.  Pass
        ``local: true`` for the router's families alone.
        """
        local = self.metrics.collect()
        if request.get("local"):
            return protocol.json_safe({"families": local})
        deadline = request.get("_deadline")
        family_lists = [local]
        for handle in self.live_workers():
            result = await self._forward(handle, "metrics", {}, deadline)
            family_lists.append(result.get("families", []))
        return protocol.json_safe({"families": aggregate_families(family_lists)})

    async def _op_traces(self, request: dict) -> dict:
        """Span rings and slow-trace buffers of the router and the fleet.

        Worker spans are tagged with their worker id so a merged trace can
        still say which process measured what (the clocks are per-process
        and must never be compared across the tag boundary).
        """
        trace_id = request.get("trace_id")
        wanted = trace_id if isinstance(trace_id, str) else None
        spans = self.tracer.spans(wanted)
        slow = self.tracer.slow_traces()
        deadline = request.get("_deadline")
        fields = {} if wanted is None else {"trace_id": wanted}
        for handle in self.live_workers():
            result = await self._forward(handle, "traces", dict(fields), deadline)
            for record in result.get("spans", []):
                spans.append({**record, "worker": handle.id})
            for trace in result.get("slow_traces", []):
                slow.append({**trace, "worker": handle.id})
        return protocol.json_safe({"spans": spans, "slow_traces": slow})

    async def _op_delete_session(self, request: dict) -> dict:
        result = await self._proxy_session_op(request)
        # The worker confirmed the delete: forget the route, the placement
        # and the replica, so a later failover cannot resurrect the session.
        name = request["session"]
        worker_id = self.table.pop(name, None)
        if worker_id is not None:
            handle = self.workers.get(worker_id)
            if handle is not None:
                handle.sessions.discard(name)
        with contextlib.suppress(FileNotFoundError):
            migration.replica_path(self.replica_dir, name).unlink()
        return result

    async def _op_migrate(self, request: dict) -> dict:
        name = request.get("session")
        if not isinstance(name, str):
            raise ServiceError("BadRequest", "missing 'session' field")
        if name in self.draining:
            raise ServiceError(
                "BadRequest", f"session {name!r} is already migrating"
            )
        target = request.get("worker")
        if target is not None and not isinstance(target, str):
            raise ServiceError("BadRequest", "'worker' must be a worker id string")
        return await migration.migrate_session(self, name, target=target)

    async def replicate_session(self, session: str) -> bool:
        """Refresh one session's replica; False when skipped (draining or
        its worker is down)."""
        if session in self.draining:
            return False
        worker_id = self.table.get(session)
        if worker_id is None:
            return False
        handle = self.workers.get(worker_id)
        if handle is None or not handle.alive:
            return False
        path = migration.replica_path(self.replica_dir, session)
        await self._forward(
            handle, "snapshot", {"session": session, "path": str(path)}
        )
        return True

    async def _op_replicate(self, request: dict) -> dict:
        names = (
            [request["session"]]
            if isinstance(request.get("session"), str)
            else sorted(self.table)
        )
        replicated: list[str] = []
        skipped: list[str] = []
        for name in names:
            if name not in self.table:
                raise ServiceError("UnknownSession", f"no session named {name!r}")
            (replicated if await self.replicate_session(name) else skipped).append(name)
        return {"replicated": replicated, "skipped": skipped}

    def _describe(self) -> dict:
        return {
            "workers": [
                handle.describe(self.admission)
                for _, handle in sorted(self.workers.items())
            ],
            "table": dict(sorted(self.table.items())),
            "draining": sorted(self.draining),
            "admission": self.admission.stats(),
            "counters": {
                "proxied": self.proxied,
                "migrations": self.migrations,
                "failovers": self.failovers,
                "sessions_lost": self.sessions_lost,
                "deadline_misses": self.deadline_misses,
                "breaker_fast_fails": self.breaker_fast_fails,
            },
            "replica_dir": str(self.replica_dir),
        }

    async def _op_cluster_stats(self, request: dict) -> dict:
        return self._describe()

    async def _op_kill_worker(self, request: dict) -> dict:
        """Chaos drill: SIGKILL a spawned worker (no clean shutdown), so
        tests and benchmarks can watch the health loop + failover react."""
        worker_id = request.get("worker")
        if not isinstance(worker_id, str) or worker_id not in self.workers:
            raise ServiceError("BadRequest", f"no worker named {worker_id!r}")
        handle = self.workers[worker_id]
        if handle.process is None:
            raise ServiceError(
                "BadRequest", f"worker {worker_id!r} was not spawned by this router"
            )
        handle.process.kill()
        return {"worker": worker_id, "killed": True}

    async def _op_shutdown(self, request: dict) -> dict:
        return {"stopping": True}

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    async def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if not isinstance(op, str):
            raise ServiceError("UnknownOp", f"unknown op {op!r}")
        handler = self._ops.get(op)
        if handler is not None:
            return await handler(request)
        if isinstance(request.get("session"), str):
            # Unknown-to-the-router session verbs (evaluate, simulate, fit,
            # snapshot, delete_session, future additions) proxy untouched.
            return await self._proxy_session_op(request)
        raise ServiceError("UnknownOp", f"unknown op {op!r}")

    async def _started(self) -> None:
        self.replica_dir.mkdir(parents=True, exist_ok=True)
        if self.metrics_port is not None and self.address is not None:
            self._metrics_http = await start_metrics_http(
                self._collect_cluster_metrics, self.address[0], self.metrics_port
            )
        if self.supervisor is not None:
            self.supervisor.start()

    async def _collect_cluster_metrics(self) -> list[dict]:
        result = await self._op_metrics({})
        return result["families"]

    async def _cleanup(self) -> None:
        if self._metrics_http is not None:
            self._metrics_http.close()
            with contextlib.suppress(Exception):
                await self._metrics_http.wait_closed()
            self._metrics_http = None
        if self.supervisor is not None:
            await self.supervisor.stop()
        for handle in self.workers.values():
            if handle.alive and handle.client is not None:
                with contextlib.suppress(Exception):
                    await asyncio.wait_for(handle.client.request("shutdown"), 5)
            with contextlib.suppress(Exception):
                await handle.close()
        if self.supervisor is not None:
            await self.supervisor.reap()
