"""Worker lifecycle: spawn, watch, replicate, fail over.

The supervisor owns the two background loops that make the cluster more
than a static proxy:

* the **health loop** pings every live worker each ``health_interval``
  seconds (and checks its process for an exit code, which catches a
  SIGKILL faster than a timed-out ping).  A worker that misses
  ``max_ping_failures`` consecutive pings — or whose process is simply
  gone — is declared dead: the router pulls it off the ring, fails its
  queued admissions fast, and restores its sessions from their replicas
  onto survivors (:func:`repro.cluster.migration.restore_lost_sessions`);
* the **replication loop** refreshes every session's replica snapshot
  each ``replication_interval`` seconds.  The interval is the cluster's
  durability knob: at most that many seconds of simulated observations
  can be lost when a worker dies.

Workers are plain ``repro serve`` subprocesses bound to ephemeral ports
(discovered through per-worker port files), with their snapshot dir
pointed at the cluster's replica dir so named snapshots and replicas
share one namespace.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import pathlib
import subprocess
import sys
import time

from repro.cluster.router import ClusterRouter, WorkerHandle
from repro.obs.logs import get_logger

__all__ = ["WorkerSupervisor", "spawn_worker_process"]

logger = get_logger("cluster.supervisor")

#: How long to wait for a freshly spawned worker's port file.
SPAWN_TIMEOUT = 60.0


def _worker_env() -> dict:
    """Subprocess environment that can ``import repro`` the way we did."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def spawn_worker_process(
    *,
    port_file: pathlib.Path,
    snapshot_dir: pathlib.Path,
    host: str = "127.0.0.1",
    max_batch: int = 64,
    max_delay_ms: float = 2.0,
    slow_trace_ms: float | None = None,
    timeout: float = SPAWN_TIMEOUT,
) -> tuple[subprocess.Popen, int]:
    """Start one ``repro serve`` worker and wait for its bound port.

    Blocking (file polling) — call via ``asyncio.to_thread`` from a loop.
    """
    port_file = pathlib.Path(port_file)
    with contextlib.suppress(FileNotFoundError):
        port_file.unlink()
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        "0",
        "--port-file",
        str(port_file),
        "--snapshot-dir",
        str(snapshot_dir),
        "--max-batch",
        str(int(max_batch)),
        "--max-delay-ms",
        str(float(max_delay_ms)),
    ]
    if slow_trace_ms is not None:
        argv += ["--slow-trace-ms", str(float(slow_trace_ms))]
    process = subprocess.Popen(
        argv,
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout
    while True:
        if process.poll() is not None:
            raise RuntimeError(
                f"worker exited with code {process.returncode} before binding"
            )
        try:
            text = port_file.read_text().strip()
            if text:
                return process, int(text)
        except (FileNotFoundError, ValueError):
            pass
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(f"worker did not bind within {timeout:.0f}s")
        time.sleep(0.02)


class WorkerSupervisor:
    """Health checking, replication and process reaping for a router's fleet."""

    def __init__(
        self,
        router: ClusterRouter,
        *,
        health_interval: float = 1.0,
        replication_interval: float = 5.0,
        ping_timeout: float = 5.0,
        max_ping_failures: int = 2,
    ) -> None:
        self.router = router
        self.health_interval = float(health_interval)
        self.replication_interval = float(replication_interval)
        self.ping_timeout = float(ping_timeout)
        self.max_ping_failures = int(max_ping_failures)
        self._tasks: list[asyncio.Task] = []
        self._spawned = 0  # monotonic: worker ids are never reused
        router.supervisor = self

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    async def spawn_workers(
        self,
        count: int,
        *,
        host: str = "127.0.0.1",
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        slow_trace_ms: float | None = None,
    ) -> list[WorkerHandle]:
        """Spawn ``count`` subprocess workers and register them."""
        replica_dir = self.router.replica_dir
        replica_dir.mkdir(parents=True, exist_ok=True)
        handles: list[WorkerHandle] = []
        for _ in range(count):
            worker_id = f"w{self._spawned}"
            self._spawned += 1
            process, port = await asyncio.to_thread(
                lambda wid=worker_id: spawn_worker_process(
                    port_file=replica_dir / f"{wid}.port",
                    snapshot_dir=replica_dir,
                    host=host,
                    max_batch=max_batch,
                    max_delay_ms=max_delay_ms,
                    slow_trace_ms=slow_trace_ms,
                )
            )
            handle = WorkerHandle(worker_id, host, port, process=process)
            await self.router.add_worker(handle)
            handles.append(handle)
        return handles

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the health and replication loops (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.create_task(self._health_loop(), name="cluster-health"),
            asyncio.create_task(self._replication_loop(), name="cluster-replication"),
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks = []

    async def check_health(self) -> None:
        """One health pass over the fleet (what the loop runs each tick).

        Workers are pinged **concurrently**: one hung worker costs the
        pass a single ``ping_timeout``, not one per sick worker — serial
        pings would delay dead-worker detection for the whole fleet by
        however many workers hang in front of it.
        """

        async def check_one(handle: WorkerHandle) -> None:
            process = handle.process
            if process is not None and process.poll() is not None:
                await self.router.mark_dead(handle)
                return
            try:
                # ensure_connected first: a connection whose receive loop
                # died (e.g. a garbled frame) would otherwise fail every
                # future ping and condemn a perfectly healthy worker.
                await asyncio.wait_for(handle.ensure_connected(), self.ping_timeout)
                await handle.client.request("ping", timeout=self.ping_timeout)
            except Exception:
                handle.ping_failures += 1
                if handle.ping_failures >= self.max_ping_failures:
                    await self.router.mark_dead(handle)
            else:
                handle.ping_failures = 0

        alive = [h for h in list(self.router.workers.values()) if h.alive]
        if alive:
            await asyncio.gather(*(check_one(handle) for handle in alive))

    async def replicate_all(self) -> list[str]:
        """One replication pass; returns the sessions refreshed."""
        refreshed: list[str] = []
        for session in sorted(self.router.table):
            try:
                if await self.router.replicate_session(session):
                    refreshed.append(session)
            except Exception as exc:  # noqa: BLE001 - keep replicating the rest
                # Not silent: every failed pass widens the durability window
                # (how much simulated data a worker death can lose).
                logger.warning(
                    "replication failed; replica is stale until the next pass",
                    extra={"session": session, "reason": repr(exc)},
                )
        return refreshed

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.check_health()

    async def _replication_loop(self) -> None:
        while True:
            await asyncio.sleep(self.replication_interval)
            await self.replicate_all()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    async def reap(self) -> None:
        """Make sure no worker process outlives the router."""

        def _reap_one(process: subprocess.Popen) -> None:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=10)

        for handle in self.router.workers.values():
            if handle.process is not None:
                await asyncio.to_thread(_reap_one, handle.process)
