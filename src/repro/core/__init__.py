"""Kriging-based metric estimation — the paper's core contribution.

The package implements the full geostatistical pipeline of Section III:

1. :mod:`~repro.core.variogram` — the empirical semi-variogram of the metric
   values measured so far (paper Eq. 4);
2. :mod:`~repro.core.models` / :mod:`~repro.core.fitting` — parametric
   variogram models and their weighted-least-squares identification;
3. :mod:`~repro.core.kriging` — the ordinary-kriging linear system
   (paper Eqs. 7–10, "simple kriging" in the paper's nomenclature) and the
   textbook simple-kriging variant;
4. :mod:`~repro.core.estimator` — :class:`KrigingEstimator`, the
   interpolate-or-simulate policy of Algorithms 1–2: a configuration with
   more than ``Nn_min`` previously *simulated* configurations within L1
   distance ``d`` is interpolated, anything else is simulated and added to
   the support cache;
5. :mod:`~repro.core.factor_cache` / :mod:`~repro.core.lowrank` — the
   factorization-reuse layer under the batch engine: an LRU of Cholesky
   factors of the (shifted) Gamma matrices keyed by support-set signature,
   bridged across near-identical support sets by rank-1 row edits;
6. :mod:`~repro.core.shm` — the shared-memory arena of the zero-copy
   process solve path: the support cache is published once, workers attach
   by segment name and per-flush payloads shrink to row offsets.
"""

from repro.core.cache import SimulationCache
from repro.core.crossval import (
    CrossValidationResult,
    loo_cross_validate,
    select_variogram_loo,
)
from repro.core.distances import (
    DistanceMetric,
    cross_distances,
    distance,
    pairwise_distances,
)
from repro.core.estimator import (
    EstimationOutcome,
    KrigingEstimator,
    SolvePhaseStats,
)
from repro.core.factor_cache import FactorCache, FactorCacheStats, GammaFactor
from repro.core.fitting import FittedVariogram, fit_variogram, select_variogram
from repro.core.index import (
    BruteForceIndex,
    LatticeBucketIndex,
    NeighborIndex,
    make_index,
)
from repro.core.kriging import (
    KrigingResult,
    SolvePhases,
    ordinary_kriging,
    ordinary_kriging_batch,
    ordinary_kriging_grouped,
    ordinary_kriging_grouped_shm,
    resolve_backend,
    resolve_n_jobs,
    simple_kriging,
    solve_groups_stacked,
)
from repro.core.shm import ShmArena, ShmAttachError, shm_available
from repro.core.lowrank import chol_append, chol_delete, choldowndate, cholupdate
from repro.core.universal import linear_drift, quadratic_drift, universal_kriging
from repro.core.models import (
    ExponentialVariogram,
    GaussianVariogram,
    LinearVariogram,
    NuggetVariogram,
    PowerVariogram,
    SphericalVariogram,
    VariogramModel,
)
from repro.core.neighborhood import find_neighbors
from repro.core.variogram import EmpiricalVariogram, empirical_semivariogram

__all__ = [
    "DistanceMetric",
    "distance",
    "pairwise_distances",
    "cross_distances",
    "empirical_semivariogram",
    "EmpiricalVariogram",
    "VariogramModel",
    "LinearVariogram",
    "SphericalVariogram",
    "ExponentialVariogram",
    "GaussianVariogram",
    "PowerVariogram",
    "NuggetVariogram",
    "fit_variogram",
    "select_variogram",
    "FittedVariogram",
    "ordinary_kriging",
    "ordinary_kriging_batch",
    "ordinary_kriging_grouped",
    "ordinary_kriging_grouped_shm",
    "solve_groups_stacked",
    "SolvePhases",
    "SolvePhaseStats",
    "ShmArena",
    "ShmAttachError",
    "shm_available",
    "resolve_backend",
    "resolve_n_jobs",
    "simple_kriging",
    "universal_kriging",
    "linear_drift",
    "quadratic_drift",
    "KrigingResult",
    "find_neighbors",
    "NeighborIndex",
    "BruteForceIndex",
    "LatticeBucketIndex",
    "make_index",
    "SimulationCache",
    "KrigingEstimator",
    "EstimationOutcome",
    "FactorCache",
    "FactorCacheStats",
    "GammaFactor",
    "cholupdate",
    "choldowndate",
    "chol_append",
    "chol_delete",
    "loo_cross_validate",
    "select_variogram_loo",
    "CrossValidationResult",
]
