"""Store of simulated configurations (the paper's ``W_sim`` / ``lambda_sim``).

Only *simulated* configurations enter the cache: "If the configuration is
interpolated, it is not used for kriging other configurations"
(Section III-B).  The cache also serves as an exact-hit memo so a
configuration is never simulated twice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimulationCache"]


class SimulationCache:
    """Append-only store of ``(configuration, metric value)`` pairs.

    Parameters
    ----------
    num_variables:
        Dimension ``Nv`` of the configuration vectors.
    """

    def __init__(self, num_variables: int) -> None:
        if num_variables < 1:
            raise ValueError(f"num_variables must be >= 1, got {num_variables}")
        self.num_variables = num_variables
        self._points: list[np.ndarray] = []
        self._values: list[float] = []
        self._index: dict[tuple[int, ...], int] = {}

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """``(n, Nv)`` matrix of simulated configurations (``W_sim``)."""
        if not self._points:
            return np.empty((0, self.num_variables))
        return np.vstack(self._points)

    @property
    def values(self) -> np.ndarray:
        """Metric values aligned with :attr:`points` (``lambda_sim``)."""
        return np.asarray(self._values, dtype=np.float64)

    @staticmethod
    def _key(configuration: np.ndarray) -> tuple[int, ...]:
        return tuple(int(round(float(x))) for x in configuration)

    def add(self, configuration: object, value: float) -> None:
        """Record a simulated configuration and its measured metric value."""
        config = np.asarray(configuration, dtype=np.float64)
        if config.ndim != 1 or config.size != self.num_variables:
            raise ValueError(
                f"configuration must have shape ({self.num_variables},), got {config.shape}"
            )
        if not np.isfinite(value):
            raise ValueError(f"metric value must be finite, got {value}")
        key = self._key(config)
        if key in self._index:
            raise ValueError(f"configuration {key} already simulated")
        self._index[key] = len(self._points)
        self._points.append(config.copy())
        self._values.append(float(value))

    def lookup(self, configuration: object) -> float | None:
        """Exact-hit value for ``configuration``, or ``None`` if never simulated."""
        config = np.asarray(configuration, dtype=np.float64)
        index = self._index.get(self._key(config))
        return self._values[index] if index is not None else None

    def __contains__(self, configuration: object) -> bool:
        config = np.asarray(configuration, dtype=np.float64)
        return self._key(config) in self._index
