"""Store of simulated configurations (the paper's ``W_sim`` / ``lambda_sim``).

Only *simulated* configurations enter the cache: "If the configuration is
interpolated, it is not used for kriging other configurations"
(Section III-B).  The cache also serves as an exact-hit memo so a
configuration is never simulated twice.

Performance
-----------
The store is the innermost data structure of the query engine, so both of
its access patterns are O(1):

* **Growth** — rows live in a single contiguous ``(capacity, Nv)`` array
  that doubles whenever it fills (geometric growth), so ``add`` is
  amortized O(1) and the rows of a given configuration never move relative
  to each other (indices handed to a
  :class:`~repro.core.index.NeighborIndex` stay valid).
* **Access** — :attr:`points` / :attr:`values` return zero-copy, read-only
  views of the filled prefix; no per-access materialization happens.  Views
  taken before a growth keep the old buffer alive and stay valid (append-
  only rows never change), they just do not see later additions.

Exact-hit keys are the raw ``float64`` bytes of the configuration, so two
configurations collide only when they are bit-identical (``-0.0`` is
normalized to ``0.0`` first); non-lattice configurations such as ``[0.4]``
and ``[0.2]`` are distinct keys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimulationCache"]

_INITIAL_CAPACITY = 64


class SimulationCache:
    """Append-only store of ``(configuration, metric value)`` pairs.

    Parameters
    ----------
    num_variables:
        Dimension ``Nv`` of the configuration vectors.
    """

    def __init__(self, num_variables: int) -> None:
        if num_variables < 1:
            raise ValueError(f"num_variables must be >= 1, got {num_variables}")
        self.num_variables = num_variables
        self._data = np.empty((_INITIAL_CAPACITY, num_variables), dtype=np.float64)
        self._vals = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        self._index: dict[bytes, int] = {}

    def __len__(self) -> int:
        return self._n

    @property
    def points(self) -> np.ndarray:
        """``(n, Nv)`` matrix of simulated configurations (``W_sim``).

        A zero-copy, read-only view of the backing store — O(1) per access.
        """
        view = self._data[: self._n]
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Metric values aligned with :attr:`points` (``lambda_sim``).

        A zero-copy, read-only view of the backing store — O(1) per access.
        """
        view = self._vals[: self._n]
        view.flags.writeable = False
        return view

    @staticmethod
    def _key(configuration: np.ndarray) -> bytes:
        # + 0.0 folds -0.0 into 0.0 so the two hash identically; the raw
        # float64 bytes then key on the *exact* coordinates — no rounding,
        # so distinct non-lattice configurations never collide.
        config = np.ascontiguousarray(configuration, dtype=np.float64) + 0.0
        return config.tobytes()

    def _coerce(self, configuration: object) -> np.ndarray:
        config = np.asarray(configuration, dtype=np.float64)
        if config.ndim != 1 or config.size != self.num_variables:
            raise ValueError(
                f"configuration must have shape ({self.num_variables},), got {config.shape}"
            )
        return config

    def _grow(self) -> None:
        capacity = 2 * self._data.shape[0]
        data = np.empty((capacity, self.num_variables), dtype=np.float64)
        vals = np.empty(capacity, dtype=np.float64)
        data[: self._n] = self._data[: self._n]
        vals[: self._n] = self._vals[: self._n]
        self._data = data
        self._vals = vals

    def add(self, configuration: object, value: float) -> int:
        """Record a simulated configuration; returns its row index."""
        config = self._coerce(configuration)
        if not np.isfinite(value):
            raise ValueError(f"metric value must be finite, got {value}")
        key = self._key(config)
        if key in self._index:
            raise ValueError(
                f"configuration {config.tolist()} already simulated"
            )
        if self._n == self._data.shape[0]:
            self._grow()
        row = self._n
        self._index[key] = row
        self._data[row] = config
        self._vals[row] = float(value)
        self._n = row + 1
        return row

    def lookup(self, configuration: object) -> float | None:
        """Exact-hit value for ``configuration``, or ``None`` if never simulated."""
        config = self._coerce(configuration)
        index = self._index.get(self._key(config))
        return float(self._vals[index]) if index is not None else None

    def to_state(self) -> dict:
        """Serializable state: dimension plus copies of the filled rows.

        The arrays are float64 copies (safe to hand to ``np.savez``); the
        exact-hit key index is derived data and rebuilt on
        :meth:`from_state`, so a round-trip reproduces the cache bit for
        bit — same rows, same order, same keys.
        """
        return {
            "version": 1,
            "num_variables": self.num_variables,
            "points": self._data[: self._n].copy(),
            "values": self._vals[: self._n].copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SimulationCache":
        """Rebuild a cache from :meth:`to_state` output."""
        if state.get("version") != 1:
            raise ValueError(f"unsupported cache state version {state.get('version')!r}")
        points = np.ascontiguousarray(state["points"], dtype=np.float64)
        values = np.ascontiguousarray(state["values"], dtype=np.float64)
        if points.ndim != 2 or values.shape != (points.shape[0],):
            raise ValueError(
                f"inconsistent cache state arrays: {points.shape} vs {values.shape}"
            )
        cache = cls(int(state["num_variables"]))
        n = points.shape[0]
        capacity = cache._data.shape[0]
        while capacity < n:
            capacity *= 2
        cache._data = np.empty((capacity, cache.num_variables), dtype=np.float64)
        cache._vals = np.empty(capacity, dtype=np.float64)
        cache._data[:n] = points
        cache._vals[:n] = values
        cache._n = n
        cache._index = {cls._key(points[row]): row for row in range(n)}
        if len(cache._index) != n:
            raise ValueError("cache state contains duplicate configurations")
        return cache

    def __contains__(self, configuration: object) -> bool:
        config = self._coerce(configuration)
        return self._key(config) in self._index
