"""Leave-one-out cross-validation diagnostics for kriging setups.

Standard geostatistical practice for choosing a variogram model and judging
whether kriging is trustworthy on a data set: predict each sample from all
the others and score the residuals.  Two scores are reported:

* RMSE of the residuals (absolute interpolation quality);
* the mean *standardized* squared residual ``(z - z_hat)^2 / sigma^2``,
  which should be close to 1 when the kriging variance is well calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.distances import DistanceMetric
from repro.core.fitting import MODEL_KINDS, fit_variogram
from repro.core.kriging import ordinary_kriging
from repro.core.variogram import empirical_semivariogram

__all__ = ["CrossValidationResult", "loo_cross_validate", "select_variogram_loo"]


@dataclass(frozen=True)
class CrossValidationResult:
    """Leave-one-out diagnostics of one variogram model on one data set."""

    kind: str
    residuals: np.ndarray
    variances: np.ndarray

    @property
    def rmse(self) -> float:
        """Root-mean-square leave-one-out prediction error."""
        return float(np.sqrt(np.mean(self.residuals**2)))

    @property
    def mean_standardized_square(self) -> float:
        """Mean of ``residual^2 / kriging_variance`` (ideal: ~1)."""
        safe = np.maximum(self.variances, 1e-12)
        return float(np.mean(self.residuals**2 / safe))

    @property
    def n_points(self) -> int:
        """Number of cross-validated samples."""
        return int(self.residuals.size)


def loo_cross_validate(
    points: np.ndarray,
    values: np.ndarray,
    variogram: Callable[[np.ndarray], np.ndarray],
    *,
    kind: str = "custom",
    metric: DistanceMetric | str = DistanceMetric.L1,
    max_support: int | None = None,
) -> CrossValidationResult:
    """Leave-one-out kriging residuals under a fixed variogram.

    Parameters
    ----------
    points, values:
        The sampled configurations and metric values.
    variogram:
        The variogram function under test.
    max_support:
        Optional cap on the support size per prediction (closest first) to
        keep the n^2 solve affordable on large samples.
    """
    pts = np.asarray(points, dtype=np.float64)
    vals = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] < 3:
        raise ValueError("cross-validation needs at least 3 points")
    if vals.shape != (pts.shape[0],):
        raise ValueError("values length mismatch")

    residuals = np.empty(pts.shape[0])
    variances = np.empty(pts.shape[0])
    for i in range(pts.shape[0]):
        mask = np.arange(pts.shape[0]) != i
        support_pts = pts[mask]
        support_vals = vals[mask]
        if max_support is not None and support_pts.shape[0] > max_support:
            dist = np.sum(np.abs(support_pts - pts[i]), axis=1)
            closest = np.argsort(dist, kind="stable")[:max_support]
            support_pts = support_pts[closest]
            support_vals = support_vals[closest]
        result = ordinary_kriging(support_pts, support_vals, pts[i], variogram, metric=metric)
        residuals[i] = result.estimate - vals[i]
        variances[i] = result.variance
    return CrossValidationResult(kind=kind, residuals=residuals, variances=variances)


def select_variogram_loo(
    points: np.ndarray,
    values: np.ndarray,
    *,
    kinds: Sequence[str] = MODEL_KINDS,
    metric: DistanceMetric | str = DistanceMetric.L1,
    max_support: int | None = 24,
) -> CrossValidationResult:
    """Pick the variogram family with the lowest leave-one-out RMSE.

    A heavier but more honest alternative to the weighted-SSE selection of
    :func:`repro.core.fitting.select_variogram`: it scores models by actual
    prediction quality instead of curve fit.
    """
    if not kinds:
        raise ValueError("kinds must be non-empty")
    emp = empirical_semivariogram(points, values, metric=metric)
    results = []
    for kind in kinds:
        fit = fit_variogram(emp, kind)
        results.append(
            loo_cross_validate(
                points, values, fit.model, kind=kind, metric=metric, max_support=max_support
            )
        )
    return min(results, key=lambda r: r.rmse)
