"""Distances between approximation-source configurations.

The paper measures configuration proximity with the L1 norm (Algorithms 1-2,
line "dCur = ||w - w_sim||_1"); L2 and Linf are provided for the ablation
study (experiment E11 in DESIGN.md).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "DistanceMetric",
    "distance",
    "pairwise_distances",
    "distances_to",
    "cross_distances",
]

_PAIRWISE_BLOCK_BYTES = 32 * 1024 * 1024
"""Upper bound on the broadcast temporary of one pairwise block."""


class DistanceMetric(enum.Enum):
    """Norm used to compare configurations in the ``Nv``-cube."""

    L1 = "l1"
    L2 = "l2"
    LINF = "linf"

    @classmethod
    def coerce(cls, value: "DistanceMetric | str") -> "DistanceMetric":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown distance metric {value!r}; expected one of {valid}") from exc


def _as_2d(x: np.ndarray) -> np.ndarray:
    array = np.asarray(x, dtype=np.float64)
    if array.ndim == 1:
        return array[None, :]
    if array.ndim != 2:
        raise ValueError(f"configurations must be 1-D or 2-D, got shape {array.shape}")
    return array


def distance(
    a: np.ndarray, b: np.ndarray, metric: DistanceMetric | str = DistanceMetric.L1
) -> float:
    """Distance between two configuration vectors."""
    metric = DistanceMetric.coerce(metric)
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    if diff.ndim != 1:
        raise ValueError(f"expected 1-D configurations, got shape {diff.shape}")
    if metric is DistanceMetric.L1:
        return float(np.sum(np.abs(diff)))
    if metric is DistanceMetric.L2:
        return float(np.sqrt(np.sum(diff * diff)))
    return float(np.max(np.abs(diff)))


def distances_to(
    points: np.ndarray,
    query: np.ndarray,
    metric: DistanceMetric | str = DistanceMetric.L1,
) -> np.ndarray:
    """Distances from every row of ``points`` to the single ``query`` vector."""
    metric = DistanceMetric.coerce(metric)
    pts = _as_2d(points)
    q = np.asarray(query, dtype=np.float64)
    if q.ndim != 1 or q.size != pts.shape[1]:
        raise ValueError(
            f"query shape {q.shape} incompatible with points of dim {pts.shape[1]}"
        )
    diff = pts - q[None, :]
    if metric is DistanceMetric.L1:
        return np.sum(np.abs(diff), axis=1)
    if metric is DistanceMetric.L2:
        return np.sqrt(np.sum(diff * diff, axis=1))
    return np.max(np.abs(diff), axis=1)


def _reduce(diff: np.ndarray, metric: DistanceMetric) -> np.ndarray:
    if metric is DistanceMetric.L1:
        return np.sum(np.abs(diff), axis=-1)
    if metric is DistanceMetric.L2:
        return np.sqrt(np.sum(diff * diff, axis=-1))
    return np.max(np.abs(diff), axis=-1)


def cross_distances(
    a: np.ndarray,
    b: np.ndarray,
    metric: DistanceMetric | str = DistanceMetric.L1,
) -> np.ndarray:
    """``(len(a), len(b))`` distance matrix between two point sets.

    Like :func:`pairwise_distances`, computed in row blocks so the
    broadcast temporary stays bounded regardless of the input sizes.
    """
    metric = DistanceMetric.coerce(metric)
    pa = _as_2d(a)
    pb = _as_2d(b)
    if pa.shape[1] != pb.shape[1]:
        raise ValueError(
            f"dimension mismatch: {pa.shape[1]} vs {pb.shape[1]} coordinates"
        )
    na, nv = pa.shape
    nb = pb.shape[0]
    if na * nb * max(nv, 1) * 8 <= _PAIRWISE_BLOCK_BYTES:
        return _reduce(pa[:, None, :] - pb[None, :, :], metric)

    block = max(1, _PAIRWISE_BLOCK_BYTES // (nb * max(nv, 1) * 8))
    out = np.empty((na, nb), dtype=np.float64)
    for start in range(0, na, block):
        stop = min(start + block, na)
        out[start:stop] = _reduce(pa[start:stop, None, :] - pb[None, :, :], metric)
    return out


def pairwise_distances(
    points: np.ndarray, metric: DistanceMetric | str = DistanceMetric.L1
) -> np.ndarray:
    """Full symmetric distance matrix between the rows of ``points``.

    Computed in row blocks over the upper triangle (mirrored into the lower)
    so the broadcast temporary stays bounded (~32 MB) instead of
    materializing the full ``(n, n, Nv)`` cube — past a few thousand points
    the naive broadcast exhausts memory.
    """
    metric = DistanceMetric.coerce(metric)
    pts = _as_2d(points)
    n, nv = pts.shape
    if n * n * max(nv, 1) * 8 <= _PAIRWISE_BLOCK_BYTES:
        return _reduce(pts[:, None, :] - pts[None, :, :], metric)

    block = max(1, _PAIRWISE_BLOCK_BYTES // (n * max(nv, 1) * 8))
    out = np.empty((n, n), dtype=np.float64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        # Columns >= start only: earlier iterations already mirrored the
        # columns < start of these rows (symmetry halves the work).
        d = _reduce(pts[start:stop, None, :] - pts[None, start:, :], metric)
        out[start:stop, start:] = d
        out[start:, start:stop] = d.T
    return out
