"""The interpolate-or-simulate policy (Algorithms 1-2, lines 6-24).

:class:`KrigingEstimator` wraps a simulation function and answers metric
queries: a configuration whose neighbourhood (L1 distance ``<= d``) contains
strictly more than ``Nn_min`` previously *simulated* configurations is
interpolated by ordinary kriging over exactly those neighbours; otherwise it
is simulated and added to the support cache.  Interpolated configurations
never become support points (Section III-B).

The semi-variogram is identified from the simulated values, once per
metric/application (Section III-A) or periodically — both behaviours are
available through ``refit_interval``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.cache import SimulationCache
from repro.core.distances import DistanceMetric
from repro.core.fitting import MODEL_KINDS, fit_variogram, select_variogram
from repro.core.kriging import ordinary_kriging
from repro.core.models import LinearVariogram, VariogramModel
from repro.core.neighborhood import find_neighbors
from repro.core.universal import adaptive_linear_drift, universal_kriging
from repro.core.variogram import empirical_semivariogram

__all__ = ["EstimationOutcome", "KrigingEstimator"]

SimulateFn = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class EstimationOutcome:
    """Result of one metric query.

    Attributes
    ----------
    value:
        The metric estimate (simulated or interpolated).
    interpolated:
        ``True`` when kriging produced the value without a simulation.
    n_neighbors:
        Number of support points inside the distance ball (the paper's
        ``Nn``; equals the number used for kriging when interpolated).
    variance:
        Kriging variance when interpolated, ``nan`` otherwise.
    exact_hit:
        ``True`` when the configuration had already been simulated and the
        cached value was returned (kriging is exact at support points).
    """

    value: float
    interpolated: bool
    n_neighbors: int
    variance: float = float("nan")
    exact_hit: bool = False


@dataclass
class EstimatorStats:
    """Aggregate counters of a :class:`KrigingEstimator`."""

    n_simulated: int = 0
    n_interpolated: int = 0
    n_exact_hits: int = 0
    neighbor_counts: list[int] = field(default_factory=list)
    simulation_seconds: float = 0.0
    kriging_seconds: float = 0.0

    @property
    def n_queries(self) -> int:
        """Total number of metric queries answered."""
        return self.n_simulated + self.n_interpolated + self.n_exact_hits

    @property
    def interpolated_fraction(self) -> float:
        """Share of queries answered without a fresh simulation (paper ``p``)."""
        total = self.n_queries
        if total == 0:
            return 0.0
        return (self.n_interpolated + self.n_exact_hits) / total

    @property
    def mean_neighbors(self) -> float:
        """Mean support size per interpolation (paper's ``j`` column)."""
        if not self.neighbor_counts:
            return float("nan")
        return float(np.mean(self.neighbor_counts))


class KrigingEstimator:
    """Kriging-accelerated metric evaluator.

    Parameters
    ----------
    simulate:
        Function returning the true metric value of a configuration (the
        paper's ``evaluateAccuracy(I, w)``).
    num_variables:
        Dimension ``Nv`` of configuration vectors.
    distance:
        Neighbourhood radius ``d`` (paper studies ``d in {2, 3, 4, 5}``).
    nn_min:
        Minimum neighbour threshold ``Nn_min``; interpolation requires
        ``Nn > nn_min`` (strict, as in Algorithms 1-2 line 17).
    metric:
        Distance metric between configurations (paper: L1).
    variogram:
        Either a fixed :class:`~repro.core.models.VariogramModel` / callable,
        one of the model-kind strings (``"linear"``, ``"spherical"``, ...),
        or ``"auto"`` to select the best-fitting family.  Kind strings are
        identified from the simulated values once ``min_fit_points``
        simulations exist.
    min_fit_points:
        Simulations required before a parametric identification is attempted
        (a scale-free linear variogram is used until then).
    refit_interval:
        Re-identify the variogram every that-many new simulations;
        ``None`` identifies once and keeps the model (the paper's stated
        usage).
    max_neighbors:
        Optional cap on the kriging support size (closest first).
    max_variance:
        Optional guard: interpolations whose kriging variance exceeds this
        bound are rejected and the configuration is simulated instead
        (an extension over the paper, disabled by default).
    interpolator:
        ``"ordinary"`` (the paper's Eqs. 7-10, default) or ``"universal"``
        — kriging with an adaptive linear drift, which follows affine
        trends when extrapolating.  Ill-posed drift systems (too few or
        degenerate support points) transparently fall back to ordinary
        kriging.
    """

    def __init__(
        self,
        simulate: SimulateFn,
        num_variables: int,
        *,
        distance: float = 3.0,
        nn_min: int = 1,
        metric: DistanceMetric | str = DistanceMetric.L1,
        variogram: VariogramModel | Callable[[np.ndarray], np.ndarray] | str = "linear",
        min_fit_points: int = 10,
        refit_interval: int | None = None,
        max_neighbors: int | None = None,
        max_variance: float | None = None,
        interpolator: str = "ordinary",
    ) -> None:
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        if nn_min < 0:
            raise ValueError(f"nn_min must be >= 0, got {nn_min}")
        if min_fit_points < 2:
            raise ValueError(f"min_fit_points must be >= 2, got {min_fit_points}")
        if refit_interval is not None and refit_interval < 1:
            raise ValueError(f"refit_interval must be >= 1, got {refit_interval}")
        if isinstance(variogram, str) and variogram not in (*MODEL_KINDS, "auto"):
            raise ValueError(
                f"unknown variogram spec {variogram!r}; expected a model, a callable, "
                f"'auto' or one of {MODEL_KINDS}"
            )
        if interpolator not in ("ordinary", "universal"):
            raise ValueError(
                f"interpolator must be 'ordinary' or 'universal', got {interpolator!r}"
            )

        self.interpolator = interpolator
        self._simulate = simulate
        self.distance = float(distance)
        self.nn_min = int(nn_min)
        self.metric = DistanceMetric.coerce(metric)
        self.cache = SimulationCache(num_variables)
        self.stats = EstimatorStats()
        self._variogram_spec = variogram
        self._min_fit_points = min_fit_points
        self._refit_interval = refit_interval
        self._max_neighbors = max_neighbors
        self._max_variance = max_variance
        self._fitted: Callable[[np.ndarray], np.ndarray] | None = None
        self._fitted_at: int = -1

    # ------------------------------------------------------------------
    # variogram management
    # ------------------------------------------------------------------
    def _current_variogram(self) -> Callable[[np.ndarray], np.ndarray]:
        spec = self._variogram_spec
        if callable(spec):
            return spec
        n_sim = len(self.cache)
        if n_sim < self._min_fit_points:
            return LinearVariogram(1.0)
        needs_fit = self._fitted is None or (
            self._refit_interval is not None
            and n_sim - self._fitted_at >= self._refit_interval
        )
        if needs_fit:
            emp = empirical_semivariogram(
                self.cache.points, self.cache.values, metric=self.metric
            )
            if spec == "auto":
                self._fitted = select_variogram(emp).model
            else:
                self._fitted = fit_variogram(emp, str(spec)).model
            self._fitted_at = n_sim
        assert self._fitted is not None
        return self._fitted

    @property
    def variogram(self) -> Callable[[np.ndarray], np.ndarray]:
        """The variogram currently used for interpolation."""
        return self._current_variogram()

    # ------------------------------------------------------------------
    # the policy
    # ------------------------------------------------------------------
    def evaluate(self, configuration: object) -> EstimationOutcome:
        """Answer a metric query per the interpolate-or-simulate policy."""
        config = np.asarray(configuration, dtype=np.float64)

        cached = self.cache.lookup(config)
        if cached is not None:
            self.stats.n_exact_hits += 1
            return EstimationOutcome(
                value=cached,
                interpolated=True,
                n_neighbors=1,
                variance=0.0,
                exact_hit=True,
            )

        neighbors = find_neighbors(
            self.cache.points,
            config,
            self.distance,
            metric=self.metric,
            max_neighbors=self._max_neighbors,
        )
        n_neighbors = int(neighbors.size)

        if n_neighbors > self.nn_min:
            start = time.perf_counter()
            support_points = self.cache.points[neighbors]
            support_values = self.cache.values[neighbors]
            if self.interpolator == "universal":
                # Drift over the coordinates the support can identify; the
                # rank guard inside universal_kriging degrades gracefully to
                # ordinary kriging when even that is ill-posed.
                result = universal_kriging(
                    support_points,
                    support_values,
                    config,
                    self._current_variogram(),
                    drift=adaptive_linear_drift(support_points),
                    metric=self.metric,
                )
            else:
                result = ordinary_kriging(
                    support_points,
                    support_values,
                    config,
                    self._current_variogram(),
                    metric=self.metric,
                )
            self.stats.kriging_seconds += time.perf_counter() - start
            if self._max_variance is None or result.variance <= self._max_variance:
                self.stats.n_interpolated += 1
                self.stats.neighbor_counts.append(n_neighbors)
                return EstimationOutcome(
                    value=result.estimate,
                    interpolated=True,
                    n_neighbors=n_neighbors,
                    variance=result.variance,
                )

        start = time.perf_counter()
        value = float(self._simulate(config))
        self.stats.simulation_seconds += time.perf_counter() - start
        self.cache.add(config, value)
        self.stats.n_simulated += 1
        return EstimationOutcome(value=value, interpolated=False, n_neighbors=n_neighbors)

    def force_simulate(self, configuration: object) -> EstimationOutcome:
        """Simulate ``configuration`` regardless of the neighbourhood policy.

        Used to anchor committed optimizer steps with measured values (see
        ``verify_commits`` on the optimizers).  Exact revisits return the
        cached measurement without a new simulation.
        """
        config = np.asarray(configuration, dtype=np.float64)
        cached = self.cache.lookup(config)
        if cached is not None:
            self.stats.n_exact_hits += 1
            return EstimationOutcome(
                value=cached,
                interpolated=True,
                n_neighbors=1,
                variance=0.0,
                exact_hit=True,
            )
        start = time.perf_counter()
        value = float(self._simulate(config))
        self.stats.simulation_seconds += time.perf_counter() - start
        self.cache.add(config, value)
        self.stats.n_simulated += 1
        return EstimationOutcome(value=value, interpolated=False, n_neighbors=0)
