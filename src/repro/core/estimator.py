"""The interpolate-or-simulate policy (Algorithms 1-2, lines 6-24).

:class:`KrigingEstimator` wraps a simulation function and answers metric
queries: a configuration whose neighbourhood (L1 distance ``<= d``) contains
strictly more than ``Nn_min`` previously *simulated* configurations is
interpolated by ordinary kriging over exactly those neighbours; otherwise it
is simulated and added to the support cache.  Interpolated configurations
never become support points (Section III-B).

The semi-variogram is identified from the simulated values, once per
metric/application (Section III-A) or periodically — both behaviours are
available through ``refit_interval``.

Performance
-----------
The query hot path is a vectorized engine with three layers:

* the :class:`~repro.core.cache.SimulationCache` stores support points in a
  contiguous geometrically-grown array, so ``points`` / ``values`` are
  zero-copy O(1) views;
* neighbourhood lookups route through a
  :class:`~repro.core.index.NeighborIndex` (a coordinate-sum bucket index
  on the integer lattice for L1/Linf, a median-split KD-tree for L2), so a
  radius query no longer scans every simulated point;
* :meth:`KrigingEstimator.evaluate_batch` answers a whole sweep of queries
  at once: runs of interpolations between two simulations are grouped by
  support set and solved by
  :func:`~repro.core.kriging.ordinary_kriging_batch`, which factorizes the
  bordered Gamma matrix once per group and back-substitutes all right-hand
  sides together; with ``n_jobs > 1`` independent groups solve concurrently
  on a thread or process pool
  (:func:`~repro.core.kriging.ordinary_kriging_grouped`).
  The outcomes — simulate/interpolate decisions, final cache contents, and
  values (to tight numerical tolerance) — match an equivalent sequence of
  :meth:`~KrigingEstimator.evaluate` calls, for every ``n_jobs``;
* a :class:`~repro.core.factor_cache.FactorCache` keeps the group
  factorizations alive across flushes: a group whose support set matches a
  cached one reuses the factor outright, one differing by a few points is
  bridged with O(n^2) rank-1 row edits (:mod:`repro.core.lowrank`), and
  every reused solve is residual-checked against the true system with a
  transparent fallback — a decisive win on optimizer-style workloads that
  re-evaluate near-identical neighbourhoods as the cache grows point by
  point.
"""

from __future__ import annotations

import atexit
import logging
import time
import warnings
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.cache import SimulationCache
from repro.core.distances import DistanceMetric
from repro.core.factor_cache import FactorCache, FactorCacheStats, GammaFactor
from repro.core.fitting import MODEL_KINDS, fit_variogram, select_variogram
from repro.core.index import NeighborIndex, make_index
from repro.core.kriging import (
    SolvePhases,
    make_model_ref,
    ordinary_kriging,
    ordinary_kriging_grouped,
    ordinary_kriging_grouped_shm,
    resolve_backend,
    resolve_n_jobs,
)
from repro.core.shm import ShmArena, ShmAttachError, shm_available
from repro.core.models import LinearVariogram, VariogramModel, variogram_from_state
from repro.core.neighborhood import find_neighbors
from repro.core.universal import adaptive_linear_drift, universal_kriging
from repro.core.variogram import empirical_semivariogram
from repro.utils.quantiles import QuantileSketch

__all__ = ["EstimationOutcome", "KrigingEstimator", "SolvePhaseStats"]

SimulateFn = Callable[[np.ndarray], float]

#: The scale-free prior used until ``min_fit_points`` simulations exist.
#: One shared (frozen, stateless) instance so identity-keyed memos — the
#: process backend's pickled-model ref — stay valid across flushes.
_PREFIT_VARIOGRAM = LinearVariogram(1.0)

#: Estimators whose solve executor is (or may be) alive.  Closed at
#: interpreter exit so an abandoned estimator — a crashed service, a test
#: that never called :meth:`KrigingEstimator.close` — cannot leak process-
#: pool workers past the parent's lifetime.  A ``WeakSet`` so registration
#: never keeps an estimator alive (``__del__`` remains reachable).
_LIVE_ESTIMATORS: "weakref.WeakSet[KrigingEstimator]" = weakref.WeakSet()


_SHM_WARNED = False

logger = logging.getLogger("repro.core.estimator")

#: Process-wide count of shared-memory attach failures that forced the
#: pickled (or thread) fallback — surfaced by the service's metrics
#: registry as ``repro_shm_attach_failures_total``.  Module-level on
#: purpose: the failure is a property of this process's shm machinery, not
#: of any one estimator instance.
_SHM_ATTACH_FAILURES = 0


def shm_attach_failures() -> int:
    """Shared-memory attach failures seen by this process so far."""
    return _SHM_ATTACH_FAILURES


def _warn_shm_unavailable() -> None:
    """One warning per process when ``shm=True`` cannot be honoured."""
    global _SHM_WARNED
    if not _SHM_WARNED:
        _SHM_WARNED = True
        logger.warning(
            "multiprocessing.shared_memory is unavailable on this platform; "
            "falling back to the thread backend"
        )
        warnings.warn(
            "multiprocessing.shared_memory is unavailable on this platform; "
            "falling back to the thread backend",
            RuntimeWarning,
            stacklevel=3,
        )


@atexit.register
def _close_live_estimators() -> None:
    for estimator in list(_LIVE_ESTIMATORS):
        try:
            estimator.close()
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass


@dataclass(frozen=True)
class EstimationOutcome:
    """Result of one metric query.

    Attributes
    ----------
    value:
        The metric estimate (simulated or interpolated).
    interpolated:
        ``True`` when kriging produced the value without a simulation.
    n_neighbors:
        Number of support points inside the distance ball (the paper's
        ``Nn``; equals the number used for kriging when interpolated).
    variance:
        Kriging variance when interpolated, ``nan`` otherwise.
    exact_hit:
        ``True`` when the configuration had already been simulated and the
        cached value was returned (kriging is exact at support points).
    """

    value: float
    interpolated: bool
    n_neighbors: int
    variance: float = float("nan")
    exact_hit: bool = False


@dataclass
class SolvePhaseStats:
    """Per-flush solve-phase timing of the batch engine.

    Every grouped flush splits its wall clock into *assembly* (distance /
    variogram kernels and system construction), *factorize* (fresh LAPACK
    factorizations, including the stacked batched calls) and *backsolve*
    (cached-factor triangular solves plus weight/variance extraction).
    Cumulative seconds are exact; per-flush distributions stream into P²
    sketches like the neighbour counts, so ``repro replay`` can print the
    split in O(1) memory.
    """

    assembly_seconds: float = 0.0
    factorize_seconds: float = 0.0
    backsolve_seconds: float = 0.0
    n_flushes: int = 0
    assembly_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    factorize_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    backsolve_sketch: QuantileSketch = field(default_factory=QuantileSketch)

    def record_flush(
        self, assembly: float, factorize: float, backsolve: float
    ) -> None:
        """Fold one grouped flush's phase split into the aggregates."""
        self.n_flushes += 1
        self.assembly_seconds += assembly
        self.factorize_seconds += factorize
        self.backsolve_seconds += backsolve
        self.assembly_sketch.update(assembly)
        self.factorize_sketch.update(factorize)
        self.backsolve_sketch.update(backsolve)

    @property
    def total_seconds(self) -> float:
        """Wall clock attributed to the three phases, summed."""
        return self.assembly_seconds + self.factorize_seconds + self.backsolve_seconds

    def as_pairs(self) -> tuple[tuple[str, float], ...]:
        """Cumulative name/value pairs, for frozen result dataclasses."""
        return (
            ("assembly_seconds", self.assembly_seconds),
            ("factorize_seconds", self.factorize_seconds),
            ("backsolve_seconds", self.backsolve_seconds),
            ("n_flushes", float(self.n_flushes)),
        )

    def to_state(self) -> dict:
        return {
            "assembly_seconds": self.assembly_seconds,
            "factorize_seconds": self.factorize_seconds,
            "backsolve_seconds": self.backsolve_seconds,
            "n_flushes": self.n_flushes,
            "assembly_sketch": self.assembly_sketch.to_state(),
            "factorize_sketch": self.factorize_sketch.to_state(),
            "backsolve_sketch": self.backsolve_sketch.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SolvePhaseStats":
        return cls(
            assembly_seconds=float(state["assembly_seconds"]),
            factorize_seconds=float(state["factorize_seconds"]),
            backsolve_seconds=float(state["backsolve_seconds"]),
            n_flushes=int(state["n_flushes"]),
            assembly_sketch=QuantileSketch.from_state(state["assembly_sketch"]),
            factorize_sketch=QuantileSketch.from_state(state["factorize_sketch"]),
            backsolve_sketch=QuantileSketch.from_state(state["backsolve_sketch"]),
        )


@dataclass
class EstimatorStats:
    """Aggregate counters of a :class:`KrigingEstimator`.

    Neighbour counts stream into :attr:`neighbor_sketch`, a P² sketch
    serving both the exact aggregates (count/sum/mean/min/max) and the
    per-interpolation *distribution* — quantile estimates — in O(1)
    memory.  The old opt-in ``neighbor_counts`` list is gone: every
    consumer reads the sketch.
    """

    n_simulated: int = 0
    n_interpolated: int = 0
    n_exact_hits: int = 0
    neighbor_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    simulation_seconds: float = 0.0
    kriging_seconds: float = 0.0
    factor: FactorCacheStats = field(default_factory=FactorCacheStats)
    """Factorization-reuse counters (hits / up-downdates / fresh solves) of
    the estimator's :class:`~repro.core.factor_cache.FactorCache`; all
    zeros when the reuse layer is disabled."""
    solve: SolvePhaseStats = field(default_factory=SolvePhaseStats)
    """Per-flush assembly / factorize / backsolve wall-clock split of the
    batch engine's grouped solves (cumulative seconds plus P² sketches)."""
    pool_failures: int = 0
    """Process-pool breakdowns (a worker died mid-flush) absorbed by the
    thread-backend fallback; the pool is rebuilt lazily on the next flush."""

    def record_interpolation(self, n_neighbors: int) -> None:
        """Count one interpolation answered with ``n_neighbors`` support points."""
        self.n_interpolated += 1
        self.neighbor_sketch.update(float(n_neighbors))

    @property
    def neighbor_count_sum(self) -> int:
        """Total support points over all interpolations (exact, from the
        sketch's side statistics)."""
        return int(self.neighbor_sketch.sum)

    def neighbor_quantile(self, prob: float) -> float:
        """Streamed estimate of a support-size quantile (e.g. ``0.5``, ``0.9``).

        Returns ``nan`` when ``prob`` is not one of the sketch's tracked
        probabilities (:data:`repro.utils.quantiles.DEFAULT_PROBS` by
        default) — the same miss semantics as
        :meth:`repro.experiments.replay.ReplayStats.neighbor_quantile`.
        """
        try:
            return self.neighbor_sketch.quantile(prob)
        except KeyError:
            return float("nan")

    @property
    def n_queries(self) -> int:
        """Total number of metric queries answered."""
        return self.n_simulated + self.n_interpolated + self.n_exact_hits

    @property
    def interpolated_fraction(self) -> float:
        """Share of queries answered without a fresh simulation (paper ``p``)."""
        total = self.n_queries
        if total == 0:
            return 0.0
        return (self.n_interpolated + self.n_exact_hits) / total

    @property
    def mean_neighbors(self) -> float:
        """Mean support size per interpolation (paper's ``j`` column)."""
        if self.n_interpolated == 0:
            return float("nan")
        return self.neighbor_count_sum / self.n_interpolated

    def to_state(self) -> dict:
        """JSON-safe state: plain counters, the sketch markers and the
        factor-reuse counter pairs."""
        return {
            "n_simulated": self.n_simulated,
            "n_interpolated": self.n_interpolated,
            "n_exact_hits": self.n_exact_hits,
            "simulation_seconds": self.simulation_seconds,
            "kriging_seconds": self.kriging_seconds,
            "neighbor_sketch": self.neighbor_sketch.to_state(),
            "factor": [list(pair) for pair in self.factor.as_pairs()],
            "solve": self.solve.to_state(),
            "pool_failures": self.pool_failures,
        }

    @classmethod
    def from_state(cls, state: dict) -> "EstimatorStats":
        """Rebuild stats from :meth:`to_state` output (sketch included,
        bitwise — a restored estimator streams on exactly as the original)."""
        stats = cls(
            n_simulated=int(state["n_simulated"]),
            n_interpolated=int(state["n_interpolated"]),
            n_exact_hits=int(state["n_exact_hits"]),
            neighbor_sketch=QuantileSketch.from_state(state["neighbor_sketch"]),
            simulation_seconds=float(state["simulation_seconds"]),
            kriging_seconds=float(state["kriging_seconds"]),
            factor=FactorCacheStats.from_pairs(
                tuple((str(name), int(value)) for name, value in state["factor"])
            ),
            # Pre-PR-9 states carry neither field: restore them cold.
            solve=(
                SolvePhaseStats.from_state(state["solve"])
                if "solve" in state
                else SolvePhaseStats()
            ),
            pool_failures=int(state.get("pool_failures", 0)),
        )
        return stats


class KrigingEstimator:
    """Kriging-accelerated metric evaluator.

    Parameters
    ----------
    simulate:
        Function returning the true metric value of a configuration (the
        paper's ``evaluateAccuracy(I, w)``).
    num_variables:
        Dimension ``Nv`` of configuration vectors.
    distance:
        Neighbourhood radius ``d`` (paper studies ``d in {2, 3, 4, 5}``).
    nn_min:
        Minimum neighbour threshold ``Nn_min``; interpolation requires
        ``Nn > nn_min`` (strict, as in Algorithms 1-2 line 17).
    metric:
        Distance metric between configurations (paper: L1).
    variogram:
        Either a fixed :class:`~repro.core.models.VariogramModel` / callable,
        one of the model-kind strings (``"linear"``, ``"spherical"``, ...),
        or ``"auto"`` to select the best-fitting family.  Kind strings are
        identified from the simulated values once ``min_fit_points``
        simulations exist.
    min_fit_points:
        Simulations required before a parametric identification is attempted
        (a scale-free linear variogram is used until then).
    refit_interval:
        Re-identify the variogram every that-many new simulations;
        ``None`` identifies once and keeps the model (the paper's stated
        usage).
    max_neighbors:
        Optional cap on the kriging support size (closest first).
    max_variance:
        Optional guard: interpolations whose kriging variance exceeds this
        bound are rejected and the configuration is simulated instead
        (an extension over the paper, disabled by default).
    interpolator:
        ``"ordinary"`` (the paper's Eqs. 7-10, default) or ``"universal"``
        — kriging with an adaptive linear drift, which follows affine
        trends when extrapolating.  Ill-posed drift systems (too few or
        degenerate support points) transparently fall back to ordinary
        kriging.
    neighbor_index:
        Index kind for neighbourhood lookups: ``"auto"`` (default — the
        lattice bucket index for L1/Linf, a KD-tree for L2), ``"bucket"``,
        ``"kdtree"`` or ``"brute"``.  Purely a performance knob: results are
        identical.
    n_jobs:
        Workers for the batch engine's shared-support group solves
        (``1``/``None`` sequential, ``-1`` one per CPU).  Purely a
        wall-clock knob: decisions, cache contents and values are identical
        for every setting (each group is solved on a single worker in a
        fixed order).
    backend:
        Executor kind for the group solves: ``"thread"`` (default —
        zero-copy, LAPACK releases the GIL) or ``"process"`` (a
        ``ProcessPoolExecutor`` shipping groups as contiguous arrays, for
        workloads dominated by the GIL-holding group assembly; requires a
        picklable variogram).  For a fixed backend, results are
        bit-identical for every ``n_jobs``.  The process backend bypasses
        the factor cache (factors cannot cross the process boundary), so
        with ``factor_cache=True`` thread and process runs may differ
        within the engine's ~1e-9 envelope; disable the cache for
        bit-equality *across* backends.  Call :meth:`close` (or use the
        estimator as a context manager) to release the pool.
    stacking:
        Batch same-size bordered systems into one stacked LAPACK call per
        flush (:func:`~repro.core.kriging.solve_groups_stacked`).  ``True``
        (default) on every backend; bins are computed before dispatch, so
        for a fixed setting results stay bit-identical across ``n_jobs``
        and backends, and toggling the knob stays within the engine's
        ~1e-9 equivalence envelope.
    shm:
        Shared-memory dispatch for the process backend: publish the
        simulation cache and per-flush group buffers into a
        :class:`~repro.core.shm.ShmArena` so workers attach views instead
        of receiving pickled arrays (bit-identical — workers rebuild the
        exact gathers the parent would ship).  ``None`` (default) uses
        shared memory whenever the platform supports it and silently keeps
        the pickled path otherwise; ``True`` insists — where
        ``multiprocessing.shared_memory`` is unavailable the estimator
        warns once and falls back to the thread backend instead of
        raising; ``False`` always pickles.  A worker that fails to attach
        mid-run degrades the estimator to the pickled path for its
        lifetime (structured, never a wedged flush).  Ignored on the
        thread backend.
    factor_cache:
        The factorization-reuse layer: ``True`` (default) builds a
        :class:`~repro.core.factor_cache.FactorCache`, ``False`` disables
        reuse, or pass a pre-configured instance to tune capacity and the
        up/downdate distance.  Purely a performance knob: every reused
        solve is residual-checked with a transparent fresh-solve fallback.
        The cache is invalidated whenever the variogram is (re)fitted, and
        is not consulted on the process backend (factors cannot cross the
        process boundary).
    """

    def __init__(
        self,
        simulate: SimulateFn,
        num_variables: int,
        *,
        distance: float = 3.0,
        nn_min: int = 1,
        metric: DistanceMetric | str = DistanceMetric.L1,
        variogram: VariogramModel | Callable[[np.ndarray], np.ndarray] | str = "linear",
        min_fit_points: int = 10,
        refit_interval: int | None = None,
        max_neighbors: int | None = None,
        max_variance: float | None = None,
        interpolator: str = "ordinary",
        neighbor_index: str = "auto",
        n_jobs: int | None = 1,
        backend: str = "thread",
        stacking: bool = True,
        shm: bool | None = None,
        factor_cache: bool | FactorCache = True,
    ) -> None:
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        if nn_min < 0:
            raise ValueError(f"nn_min must be >= 0, got {nn_min}")
        if min_fit_points < 2:
            raise ValueError(f"min_fit_points must be >= 2, got {min_fit_points}")
        if refit_interval is not None and refit_interval < 1:
            raise ValueError(f"refit_interval must be >= 1, got {refit_interval}")
        if isinstance(variogram, str) and variogram not in (*MODEL_KINDS, "auto"):
            raise ValueError(
                f"unknown variogram spec {variogram!r}; expected a model, a callable, "
                f"'auto' or one of {MODEL_KINDS}"
            )
        if interpolator not in ("ordinary", "universal"):
            raise ValueError(
                f"interpolator must be 'ordinary' or 'universal', got {interpolator!r}"
            )

        self.interpolator = interpolator
        self._simulate = simulate
        self.distance = float(distance)
        self.nn_min = int(nn_min)
        self.metric = DistanceMetric.coerce(metric)
        self.cache = SimulationCache(num_variables)
        self._neighbor_index_kind = neighbor_index
        self.neighbor_index: NeighborIndex = make_index(
            self.metric, num_variables, neighbor_index
        )
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.backend = resolve_backend(backend)
        self.stacking = bool(stacking)
        self.shm = shm
        if shm is True and not shm_available():
            # Satellite fix: never raise at construction on platforms
            # without shared memory — warn once, take the thread path.
            _warn_shm_unavailable()
            self.backend = "thread"
            self._shm_enabled = False
        elif shm is False:
            self._shm_enabled = False
        else:
            self._shm_enabled = self.backend == "process" and shm_available()
        self._arena: ShmArena | None = None  # lazy, created on first shm flush
        self._executor: Executor | None = None  # lazy, reused per flush
        self.stats = EstimatorStats()
        if isinstance(factor_cache, FactorCache):
            self.factor_cache: FactorCache | None = factor_cache
            self.stats.factor = factor_cache.stats
        else:
            self.factor_cache = (
                FactorCache(stats=self.stats.factor) if factor_cache else None
            )
        self._variogram_spec = variogram
        self._min_fit_points = min_fit_points
        self._refit_interval = refit_interval
        self._max_neighbors = max_neighbors
        self._max_variance = max_variance
        self._fitted: Callable[[np.ndarray], np.ndarray] | None = None
        self._fitted_at: int = -1
        # Process-backend dispatch: the current variogram, pickled once per
        # fit generation (make_model_ref) and memoized here by identity.
        self._model_ref: tuple[int, bytes] | None = None
        self._model_ref_source: object | None = None

    # ------------------------------------------------------------------
    # variogram management
    # ------------------------------------------------------------------
    def _current_variogram(self) -> Callable[[np.ndarray], np.ndarray]:
        spec = self._variogram_spec
        if callable(spec):
            return spec
        n_sim = len(self.cache)
        if n_sim < self._min_fit_points:
            # The shared module-level instance, not a fresh object: the
            # process backend memoizes its pickled model by identity, so a
            # new object per call would re-pickle on every warmup flush.
            return _PREFIT_VARIOGRAM
        needs_fit = self._fitted is None or (
            self._refit_interval is not None
            and n_sim - self._fitted_at >= self._refit_interval
        )
        if needs_fit:
            emp = empirical_semivariogram(
                self.cache.points, self.cache.values, metric=self.metric
            )
            if spec == "auto":
                self._fitted = select_variogram(emp).model
            else:
                self._fitted = fit_variogram(emp, str(spec)).model
            self._fitted_at = n_sim
            # Every cached factorization was built from the old variogram's
            # Gamma entries; reusing one now would interpolate against a
            # stale model.
            if self.factor_cache is not None:
                self.factor_cache.invalidate()
        assert self._fitted is not None
        return self._fitted

    @property
    def variogram(self) -> Callable[[np.ndarray], np.ndarray]:
        """The variogram currently used for interpolation."""
        return self._current_variogram()

    def refit_variogram(self) -> Callable[[np.ndarray], np.ndarray]:
        """Force a fresh identification from the current cache, now.

        Discards the current fitted model (cached factorizations with it)
        and re-identifies per the constructor's ``variogram`` spec;
        returns the model now in use.  With a fixed model or callable spec
        this is a no-op returning that spec.  The service's ``fit`` verb
        and long-lived sessions use this to refresh the model on demand
        instead of waiting for ``refit_interval``.
        """
        if not callable(self._variogram_spec):
            self._fitted = None
        return self._current_variogram()

    def _process_model_ref(
        self, variogram: Callable[[np.ndarray], np.ndarray]
    ) -> tuple[int, bytes] | None:
        """The memoized ``(fit generation, pickle)`` ref shipped to process
        workers — re-pickled only when the fitted model changes."""
        if self.backend != "process":
            return None
        if self._model_ref is None or self._model_ref_source is not variogram:
            self._model_ref = make_model_ref(variogram)
            self._model_ref_source = variogram
        return self._model_ref

    # ------------------------------------------------------------------
    # shared steps
    # ------------------------------------------------------------------
    def _exact_hit_outcome(self, cached: float) -> EstimationOutcome:
        self.stats.n_exact_hits += 1
        return EstimationOutcome(
            value=cached,
            interpolated=True,
            n_neighbors=1,
            variance=0.0,
            exact_hit=True,
        )

    def _find_neighbors(self, config: np.ndarray) -> np.ndarray:
        return find_neighbors(
            self.cache.points,
            config,
            self.distance,
            metric=self.metric,
            max_neighbors=self._max_neighbors,
            index=self.neighbor_index,
        )

    def _record_simulation(self, config: np.ndarray, n_neighbors: int) -> EstimationOutcome:
        start = time.perf_counter()
        value = float(self._simulate(config))
        self.stats.simulation_seconds += time.perf_counter() - start
        row = self.cache.add(config, value)
        self.neighbor_index.insert(config, row)
        self.stats.n_simulated += 1
        return EstimationOutcome(value=value, interpolated=False, n_neighbors=n_neighbors)

    # ------------------------------------------------------------------
    # the policy
    # ------------------------------------------------------------------
    def evaluate(self, configuration: object) -> EstimationOutcome:
        """Answer a metric query per the interpolate-or-simulate policy."""
        config = np.asarray(configuration, dtype=np.float64)

        cached = self.cache.lookup(config)
        if cached is not None:
            return self._exact_hit_outcome(cached)

        neighbors = self._find_neighbors(config)
        n_neighbors = int(neighbors.size)

        if n_neighbors > self.nn_min:
            start = time.perf_counter()
            support_points = self.cache.points[neighbors]
            support_values = self.cache.values[neighbors]
            if self.interpolator == "universal":
                # Drift over the coordinates the support can identify; the
                # rank guard inside universal_kriging degrades gracefully to
                # ordinary kriging when even that is ill-posed.
                result = universal_kriging(
                    support_points,
                    support_values,
                    config,
                    self._current_variogram(),
                    drift=adaptive_linear_drift(support_points),
                    metric=self.metric,
                )
            else:
                result = ordinary_kriging(
                    support_points,
                    support_values,
                    config,
                    self._current_variogram(),
                    metric=self.metric,
                )
            self.stats.kriging_seconds += time.perf_counter() - start
            if self._max_variance is None or result.variance <= self._max_variance:
                self.stats.record_interpolation(n_neighbors)
                return EstimationOutcome(
                    value=result.estimate,
                    interpolated=True,
                    n_neighbors=n_neighbors,
                    variance=result.variance,
                )

        return self._record_simulation(config, n_neighbors)

    def evaluate_batch(self, configurations: Sequence[object]) -> list[EstimationOutcome]:
        """Answer a sweep of metric queries through the batch engine.

        Semantically equivalent to calling :meth:`evaluate` on each row in
        order — same simulate/interpolate decisions, same final cache
        contents, and values equal to tight numerical tolerance (grouped
        solves may reorder a support set, shifting results by last-ulp
        rounding) — but much faster: queries are processed in input
        order for *decisions* (each sees exactly the cache state its
        sequential twin would), while the kriging *solves* of consecutive
        interpolations are deferred and grouped by support set.  Each group
        shares one bordered-matrix factorization
        (:func:`~repro.core.kriging.ordinary_kriging_batch`).  Deferred
        groups are flushed before any simulation, so variogram
        re-identification happens at exactly the sequential schedule.

        With ``max_variance`` set the policy is inherently sequential (a
        rejected interpolation becomes a simulation that changes later
        decisions), so the loop falls back to per-query :meth:`evaluate`.
        """
        configs = np.asarray(configurations, dtype=np.float64)
        if configs.ndim != 2 or configs.shape[1] != self.cache.num_variables:
            raise ValueError(
                f"configurations must have shape (m, {self.cache.num_variables}), "
                f"got {configs.shape}"
            )
        if configs.shape[0] == 0:
            return []
        if self._max_variance is not None:
            return [self.evaluate(config) for config in configs]

        outcomes: list[EstimationOutcome | None] = [None] * configs.shape[0]
        # support signature -> [(position, config, neighbors-in-distance-order)]
        pending: dict[tuple[int, ...], list[tuple[int, np.ndarray, np.ndarray]]] = {}

        for pos in range(configs.shape[0]):
            config = configs[pos]
            cached = self.cache.lookup(config)
            if cached is not None:
                outcomes[pos] = self._exact_hit_outcome(cached)
                continue
            neighbors = self._find_neighbors(config)
            n_neighbors = int(neighbors.size)
            if n_neighbors > self.nn_min:
                # Defer the solve; group by the (order-free) support set.
                # Stats are recorded at flush time, when the outcome
                # actually exists, so a simulator failure mid-batch cannot
                # leave counters claiming interpolations never delivered.
                signature = tuple(sorted(neighbors.tolist()))
                pending.setdefault(signature, []).append((pos, config, neighbors))
            else:
                # A simulation mutates the cache (and possibly the
                # variogram): solve everything deferred so far first.
                self._flush_pending(pending, outcomes)
                outcomes[pos] = self._record_simulation(config, n_neighbors)
        self._flush_pending(pending, outcomes)

        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _flush_pending(
        self,
        pending: dict[tuple[int, ...], list[tuple[int, np.ndarray, np.ndarray]]],
        outcomes: list[EstimationOutcome | None],
    ) -> None:
        """Solve all deferred interpolations against the current cache state.

        Multi-query shared-support groups go through
        :func:`~repro.core.kriging.ordinary_kriging_grouped`, which spreads
        the per-group factorizations over ``n_jobs`` workers; singleton
        groups (and the universal interpolator, whose drift is per-query)
        are solved in place.  Outcomes and statistics are assigned in a
        fixed group order after all solves return, so results are identical
        for every ``n_jobs``.

        Factor reuse happens *here*, serially, during group assembly: every
        :meth:`~repro.core.factor_cache.FactorCache.factor_for` call —
        lookup, rank-1 derivation, insertion, eviction — runs on this thread
        in pending-dict order before any parallel dispatch, so the cache
        state (and with it every solve) is deterministic for every
        ``n_jobs``.  Workers only read the factors they are handed.
        """
        if not pending:
            return
        start = time.perf_counter()
        variogram = self._current_variogram()
        points = self.cache.points
        values = self.cache.values
        use_factors = self.factor_cache is not None and self.backend == "thread"

        # Split the deferred work: every ordinary group — singletons included,
        # so near-identical neighbourhoods of consecutive queries reuse each
        # other's factorizations — goes through the grouped (and parallel)
        # batch solver; the universal interpolator keeps the per-query solve
        # (its drift basis is per-query).  Groups are carried by reference
        # (support rows + queries): the shm path ships exactly those, the
        # pickled/thread paths materialize the gathers just before dispatch.
        batched: list[list[tuple[int, np.ndarray, np.ndarray]]] = []
        supports: list[np.ndarray] = []
        queries_list: list[np.ndarray] = []
        factors: list[GammaFactor | None] = []
        singles: list[tuple[int, np.ndarray, np.ndarray]] = []
        for signature, items in pending.items():
            if self.interpolator == "universal":
                singles.extend(items)
            else:
                factor = (
                    self.factor_cache.factor_for(
                        signature, points, variogram, self.metric
                    )
                    if use_factors
                    else None
                )
                # A factor's rows are a permutation of the signature; feeding
                # the support in factor order lets the solve reuse it as-is.
                support = (
                    factor.rows
                    if factor is not None
                    else np.asarray(signature, dtype=np.int64)
                )
                queries = np.stack([config for _, config, _ in items])
                batched.append(items)
                supports.append(support)
                queries_list.append(queries)
                factors.append(factor)

        # One long-lived pool per estimator: the batch engine flushes before
        # every simulation, so a per-flush executor would pay spawn/join
        # costs hundreds of times per sweep.
        if self.n_jobs > 1 and len(supports) > 1 and self._executor is None:
            if self.backend == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.n_jobs)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_jobs, thread_name_prefix="kriging"
                )
            _LIVE_ESTIMATORS.add(self)
        phases = SolvePhases()
        grouped_results = self._dispatch_groups(
            supports, queries_list, factors, use_factors, variogram, phases
        )
        if batched:
            self.stats.solve.record_flush(*phases.totals())
        for items, results in zip(batched, grouped_results):
            for (pos, _, neighbors), result in zip(items, results):
                outcomes[pos] = EstimationOutcome(
                    value=result.estimate,
                    interpolated=True,
                    n_neighbors=int(neighbors.size),
                    variance=result.variance,
                )
                self.stats.record_interpolation(int(neighbors.size))

        for pos, config, neighbors in singles:
            support_points = points[neighbors]
            support_values = values[neighbors]
            result = universal_kriging(
                support_points,
                support_values,
                config,
                variogram,
                drift=adaptive_linear_drift(support_points),
                metric=self.metric,
            )
            outcomes[pos] = EstimationOutcome(
                value=result.estimate,
                interpolated=True,
                n_neighbors=int(neighbors.size),
                variance=result.variance,
            )
            self.stats.record_interpolation(int(neighbors.size))
        self.stats.kriging_seconds += time.perf_counter() - start
        pending.clear()

    def _dispatch_groups(
        self,
        supports: list[np.ndarray],
        queries_list: list[np.ndarray],
        factors: list[GammaFactor | None],
        use_factors: bool,
        variogram: Callable[[np.ndarray], np.ndarray],
        phases: SolvePhases,
    ) -> list[list]:
        """Route one flush's groups to the best available solve path.

        Preference order on the process backend: shared-memory dispatch
        (groups travel as row indices into the published cache mirror) →
        pickled dispatch (on platforms without shared memory, or after a
        worker failed to attach) → thread-backend retry (when the process
        pool itself broke mid-flush).  Every step is a structured
        degradation: the flush always completes, results are identical on
        every path, and the event is observable (``pool_failures``, the shm
        warning) rather than a wedged estimator.
        """
        points = self.cache.points
        values = self.cache.values
        model_ref = self._process_model_ref(variogram)

        def run_pickled(
            backend: str,
            executor: Executor | None,
            with_factors: bool,
            with_ref: bool,
            attempt: SolvePhases,
        ) -> list[list]:
            groups = [
                (points[rows], values[rows], queries)
                for rows, queries in zip(supports, queries_list)
            ]
            return ordinary_kriging_grouped(
                groups,
                variogram,
                metric=self.metric,
                n_jobs=self.n_jobs,
                executor=executor,
                backend=backend,
                factors=factors if with_factors else None,
                model_ref=model_ref if with_ref else None,
                stacking=self.stacking,
                phases=attempt,
            )

        # Phase totals accumulate per *attempt* and merge only on success,
        # so a mid-flush fallback cannot double-count solve seconds.
        try:
            if (
                self._shm_enabled
                and self.backend == "process"
                and self.n_jobs > 1
                and len(supports) > 1
            ):
                attempt = SolvePhases()
                try:
                    if self._arena is None:
                        self._arena = ShmArena()
                        _LIVE_ESTIMATORS.add(self)
                    results = ordinary_kriging_grouped_shm(
                        self._arena,
                        points,
                        values,
                        supports,
                        queries_list,
                        variogram,
                        metric=self.metric,
                        n_jobs=self.n_jobs,
                        executor=self._executor,
                        model_ref=model_ref,
                        stacking=self.stacking,
                        phases=attempt,
                    )
                    phases.merge(attempt.totals())
                    return results
                except ShmAttachError as exc:
                    self._disable_shm(exc)
            attempt = SolvePhases()
            results = run_pickled(
                self.backend, self._executor, use_factors, True, attempt
            )
            phases.merge(attempt.totals())
            return results
        except BrokenProcessPool:
            # A worker died mid-flush (OOM kill, crash, SIGKILL): map the
            # poisoned pool to a structured recovery instead of wedging the
            # estimator.  Tear the pool down now, rebuild it lazily on the
            # next flush, and answer *this* flush on the thread backend.
            self.stats.pool_failures += 1
            logger.warning(
                "solve process pool broke mid-flush; answering this flush on "
                "the thread backend and rebuilding the pool lazily",
                extra={
                    "backend": self.backend,
                    "n_jobs": self.n_jobs,
                    "pool_failures": self.stats.pool_failures,
                },
            )
            executor = self._executor
            self._executor = None
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            attempt = SolvePhases()
            results = run_pickled("thread", None, False, False, attempt)
            phases.merge(attempt.totals())
            return results

    def _disable_shm(self, exc: ShmAttachError) -> None:
        """A worker could not attach: pickled dispatch for this estimator's
        lifetime (one warning; the arena's segments are unlinked now)."""
        global _SHM_ATTACH_FAILURES
        _SHM_ATTACH_FAILURES += 1
        self._shm_enabled = False
        logger.warning(
            "shared-memory solve path disabled; using pickled process dispatch",
            extra={"reason": str(exc), "attach_failures": _SHM_ATTACH_FAILURES},
        )
        warnings.warn(
            f"shared-memory solve path disabled ({exc}); "
            "using pickled process dispatch",
            RuntimeWarning,
            stacklevel=4,
        )
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.close()

    def close(self) -> None:
        """Release the long-lived solve executor (idempotent).

        Matters for ``backend="process"``, whose worker processes otherwise
        outlive the estimator; the thread pool is released too.  The
        estimator stays usable after ``close`` — the pool is re-created
        lazily on the next flush.  Safe to call any number of times, and
        called automatically on garbage collection (``__del__``) and at
        interpreter exit, so an abandoned estimator — a crashed service, an
        exception before the ``with`` block — never leaks worker processes.
        The shared-memory arena (if any) is unlinked here too, so no
        ``/dev/shm`` segment outlives the estimator.
        """
        executor = self._executor
        arena = self._arena
        if executor is not None or arena is not None:
            self._executor = None
            self._arena = None
            _LIVE_ESTIMATORS.discard(self)
        if arena is not None:
            arena.close()
        if executor is not None:
            executor.shutdown(wait=True)

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass

    def __enter__(self) -> "KrigingEstimator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def force_simulate(self, configuration: object) -> EstimationOutcome:
        """Simulate ``configuration`` regardless of the neighbourhood policy.

        Used to anchor committed optimizer steps with measured values (see
        ``verify_commits`` on the optimizers).  Exact revisits return the
        cached measurement without a new simulation.
        """
        config = np.asarray(configuration, dtype=np.float64)
        cached = self.cache.lookup(config)
        if cached is not None:
            return self._exact_hit_outcome(cached)
        return self._record_simulation(config, 0)

    def record_measurement(self, configuration: object, value: float) -> EstimationOutcome:
        """Insert an externally measured metric value into the support cache.

        For callers that run their own simulator (e.g. service clients
        feeding a shared session): the value enters the cache exactly as a
        simulation would — it becomes a support point for future kriging
        and counts as a simulation in the statistics (zero simulation
        seconds, since the work happened elsewhere).  A configuration
        already in the cache keeps its first measurement: the call returns
        the cached value as an exact hit (``outcome.exact_hit`` — compare
        against your value to detect the conflict) and ``value`` is
        ignored, mirroring the first-measurement-wins semantics of the
        simulate path.
        """
        config = np.asarray(configuration, dtype=np.float64)
        cached = self.cache.lookup(config)
        if cached is not None:
            return self._exact_hit_outcome(cached)
        row = self.cache.add(config, float(value))
        self.neighbor_index.insert(config, row)
        self.stats.n_simulated += 1
        return EstimationOutcome(value=float(value), interpolated=False, n_neighbors=0)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Everything needed to resume this estimator elsewhere.

        The state bundles the policy configuration, the (possibly fitted)
        variogram, the full simulation cache (as float64 arrays — bitwise)
        and the statistics including the quantile-sketch markers.  The
        ``simulate`` callable and the neighbour index are **not**
        serialized: the first is supplied to :meth:`from_state`, the second
        is a derived performance layer rebuilt on restore (decisions and
        cache contents never depend on it).  Since version 2 the factor
        cache's entries *are* included (``factor_entries``) so a restored
        estimator starts warm — purely a performance payload: a state
        without it (an old snapshot, a corrupted section) restores cold
        with identical decisions.

        Raises ``ValueError`` when the variogram spec is a custom callable
        (only :class:`~repro.core.models.VariogramModel` instances and kind
        strings serialize).
        """
        spec = self._variogram_spec
        if isinstance(spec, VariogramModel):
            spec_state: dict = {"model": spec.to_state()}
        elif isinstance(spec, str):
            spec_state = {"kind": spec}
        else:
            raise ValueError(
                "cannot serialize an estimator whose variogram spec is a "
                "custom callable; use a VariogramModel or a kind string"
            )
        fitted = self._fitted
        if fitted is not None and not isinstance(fitted, VariogramModel):
            raise ValueError(
                "cannot serialize a fitted variogram that is not a VariogramModel"
            )
        return {
            "version": 2,
            "distance": self.distance,
            "nn_min": self.nn_min,
            "metric": self.metric.value,
            "variogram": spec_state,
            "min_fit_points": self._min_fit_points,
            "refit_interval": self._refit_interval,
            "max_neighbors": self._max_neighbors,
            "max_variance": self._max_variance,
            "interpolator": self.interpolator,
            "neighbor_index": self._neighbor_index_kind,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "stacking": self.stacking,
            "shm": self.shm,
            "factor_cache": self.factor_cache is not None,
            "fitted": fitted.to_state() if fitted is not None else None,
            "fitted_at": self._fitted_at,
            "cache": self.cache.to_state(),
            "stats": self.stats.to_state(),
            "factor_entries": (
                self.factor_cache.to_state()
                if self.factor_cache is not None
                else None
            ),
        }

    @classmethod
    def from_state(
        cls, simulate: SimulateFn, state: dict, **overrides: object
    ) -> "KrigingEstimator":
        """Rebuild an estimator from :meth:`to_state` output.

        ``simulate`` re-binds the metric function (callables do not
        serialize); ``overrides`` replace constructor keywords — e.g.
        ``n_jobs``/``backend`` when restoring onto different hardware.
        The restored estimator makes bit-identical decisions and cache
        additions to the snapshotted one fed the same queries: cache rows,
        fitted model parameters and sketch markers all round-trip exactly.

        Version-2 states additionally carry the factor cache's entries, so
        the restored estimator's first flushes reuse the original's
        factorizations instead of rebuilding them (warm start).  Version-1
        states restore cold, silently; a malformed ``factor_entries``
        section degrades to a cold restore with a warning instead of
        failing the whole restore.
        """
        if state.get("version") not in (1, 2):
            raise ValueError(
                f"unsupported estimator state version {state.get('version')!r}"
            )
        spec_state = state["variogram"]
        if "model" in spec_state:
            spec: object = variogram_from_state(spec_state["model"])
        else:
            spec = spec_state["kind"]
        kwargs: dict = {
            "distance": state["distance"],
            "nn_min": state["nn_min"],
            "metric": state["metric"],
            "variogram": spec,
            "min_fit_points": state["min_fit_points"],
            "refit_interval": state["refit_interval"],
            "max_neighbors": state["max_neighbors"],
            "max_variance": state["max_variance"],
            "interpolator": state["interpolator"],
            "neighbor_index": state["neighbor_index"],
            "n_jobs": state["n_jobs"],
            "backend": state["backend"],
            "stacking": state.get("stacking", True),
            "shm": state.get("shm"),
            "factor_cache": state["factor_cache"],
        }
        kwargs.update(overrides)
        estimator = cls(simulate, int(state["cache"]["num_variables"]), **kwargs)
        estimator.cache = SimulationCache.from_state(state["cache"])
        points = estimator.cache.points
        for row in range(len(estimator.cache)):
            estimator.neighbor_index.insert(points[row], row)
        if state["fitted"] is not None:
            estimator._fitted = variogram_from_state(state["fitted"])
        estimator._fitted_at = int(state["fitted_at"])
        estimator.stats = EstimatorStats.from_state(state["stats"])
        if estimator.factor_cache is not None:
            # The factor cache and the stats view share one counter object.
            estimator.factor_cache.stats = estimator.stats.factor
            factor_entries = state.get("factor_entries")
            if factor_entries is not None:
                try:
                    estimator.factor_cache.load_state(factor_entries)
                except Exception as exc:
                    # The warm-start payload is purely a performance layer:
                    # a corrupted section must degrade to a cold restore,
                    # never fail the whole restore.
                    estimator.factor_cache.invalidate()
                    estimator.stats.factor.invalidations -= 1  # not a refit
                    warnings.warn(
                        f"discarding corrupted factor-cache snapshot section "
                        f"({exc}); restoring cold",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        return estimator
