"""LRU cache of Gamma-matrix Cholesky factorizations (the reuse layer).

The batch engine factorizes one bordered Gamma matrix per shared-support
group — and optimizer loops (descent, min-plus-one) revisit *near*-identical
support sets thousands of times while the cache grows one point at a time.
This module amortizes that: factorizations are cached by support-set
signature, and when a new group's support differs from a cached one by a few
points the cached factor is edited with O(n^2) row appends/deletes
(:mod:`repro.core.lowrank`) instead of refactorized from scratch.

The Gamma matrix itself (zero diagonal, conditionally negative definite) has
no Cholesky factorization, so the cache factors the classical *shifted*
matrix ``A = s 11^T - Gamma``, positive definite for a large enough shift
``s`` on strictly conditionally-negative-definite variograms.  Ordinary
kriging weights are invariant under the shift: with ``a = s 1 - g`` the
bordered system ``Gamma w + mu 1 = g, 1^T w = 1`` becomes ``A w - mu 1 = a``
under the same constraint, solved by two triangular backsolves per flush
instead of a fresh O(n^3) factorization.

Accuracy is guarded twice: a factor whose diagonal spread signals bad
conditioning is refused (fresh path), and every solve's residual is checked
against the *original* bordered system — a miss falls back to the plain
LU/least-squares solver, so the reuse layer can never push results outside
the batch engine's ~1e-9 equivalence envelope.  A variogram refit changes
every Gamma entry, so the estimator invalidates the whole cache on refit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.distances import DistanceMetric, distances_to, pairwise_distances
from repro.core.lowrank import (
    chol_append,
    chol_delete,
    solve_lower,
    solve_lower_transpose,
)

__all__ = ["FactorCache", "FactorCacheStats", "GammaFactor"]

Signature = tuple[int, ...]
Variogram = Callable[[np.ndarray], np.ndarray]

#: Residual tolerance (relative to the right-hand-side scale) above which a
#: factored solve is rejected and the plain solver takes over.
RESIDUAL_RTOL = 1e-9

#: Largest tolerated ratio between the extreme diagonal entries of a factor
#: (a cheap lower bound on sqrt(cond)); beyond it the solution may drift past
#: the equivalence tolerance, so the factor is not used.
DIAGONAL_SPREAD_LIMIT = 1e4

#: Shift multipliers tried when factorizing ``s 11^T - Gamma``.
_SHIFT_GROWTH = (1.0, 4.0, 16.0)


@dataclass
class FactorCacheStats:
    """Effectiveness counters of one :class:`FactorCache`.

    ``hits`` are exact signature matches, ``updates`` factors derived from a
    near match by rank-1 row edits (``update_points`` rows in total), and
    ``fresh`` full factorizations.  ``fallbacks`` counts solves rejected by
    the residual check (answered by the plain solver), ``failures``
    support sets that produced no positive-definite factor at all, and
    ``invalidations`` whole-cache flushes (variogram refits).
    """

    hits: int = 0
    updates: int = 0
    update_points: int = 0
    fresh: int = 0
    fallbacks: int = 0
    failures: int = 0
    invalidations: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count_fallback(self) -> None:
        """Thread-safe fallback increment (solves run on worker threads)."""
        with self._lock:
            self.fallbacks += 1

    @property
    def requests(self) -> int:
        """Factorizations asked of the cache (hits + updates + fresh + failures)."""
        return self.hits + self.updates + self.fresh + self.failures

    @property
    def reuse_rate(self) -> float:
        """Share of factorization requests served without an O(n^3) solve."""
        if self.requests == 0:
            return float("nan")
        return (self.hits + self.updates) / self.requests

    _COUNTER_NAMES = (
        "hits",
        "updates",
        "update_points",
        "fresh",
        "fallbacks",
        "failures",
        "invalidations",
        "evictions",
    )

    def as_pairs(self) -> tuple[tuple[str, int], ...]:
        """Counter name/value pairs, for frozen result dataclasses."""
        return tuple((name, getattr(self, name)) for name in self._COUNTER_NAMES)

    @classmethod
    def from_pairs(cls, pairs: tuple[tuple[str, int], ...]) -> "FactorCacheStats":
        """Rebuild a stats view from :meth:`as_pairs` output, so consumers
        holding the serialized counters (e.g. replay results) reuse the
        properties here instead of re-deriving them."""
        known = {name: value for name, value in pairs if name in cls._COUNTER_NAMES}
        return cls(**known)


class GammaFactor:
    """One cached factorization: ``chol @ chol.T ~= shift - gamma``.

    ``rows`` are the support cache rows in *factor order* — the order rows
    were appended, a permutation of the sorted signature.  Callers must feed
    support points/values in this order; weights come back in it too.
    ``gamma`` is the unbordered Gamma matrix in the same order, kept so
    solves can be residual-checked against the true system (the factor alone
    would hide any drift accumulated by successive row edits).
    """

    __slots__ = ("rows", "gamma", "shift", "chol", "ones_solve", "ones_sum", "stats")

    def __init__(
        self,
        rows: np.ndarray,
        gamma: np.ndarray,
        shift: float,
        chol: np.ndarray,
        stats: FactorCacheStats | None = None,
    ) -> None:
        self.rows = rows
        self.gamma = gamma
        self.shift = shift
        self.chol = chol
        self.stats = stats
        # A^-1 1 is shared by every query of every solve; it rides along the
        # first solve's right-hand-side block (one extra column instead of a
        # dedicated triangular-solve pair) and is memoized here.  Worker
        # threads racing on the memo write identical values (pure function
        # of the factor), so results stay deterministic.
        self.ones_solve: np.ndarray | None = None
        self.ones_sum = 0.0

    @property
    def n_support(self) -> int:
        return self.chol.shape[0]

    def well_conditioned(self) -> bool:
        """Cheap screen: the diagonal spread bounds sqrt(cond(A)) from below."""
        diag = np.diagonal(self.chol)
        dmin = float(diag.min())
        if dmin <= 0.0 or not np.isfinite(dmin):
            return False
        return float(diag.max()) / dmin <= DIAGONAL_SPREAD_LIMIT

    def solve(self, gamma_queries: np.ndarray) -> np.ndarray | None:
        """Solve the bordered kriging system for a ``(n, m)`` gamma block.

        Returns the ``(n + 1, m)`` solution (weight rows plus the Lagrange
        row, exactly the plain solver's layout) or ``None`` when the residual
        check fails — the caller then solves the bordered system directly.
        """
        n, m = gamma_queries.shape
        ones_solve = self.ones_solve
        rhs = np.empty((n, m + 1 if ones_solve is None else m))
        rhs[:, :m] = self.shift - gamma_queries  # a = s 1 - g
        if ones_solve is None:
            rhs[:, m] = 1.0
        solved = solve_lower_transpose(self.chol, solve_lower(self.chol, rhs))
        if ones_solve is None:
            ones_solve = solved[:, m]
            solved = solved[:, :m]
            self.ones_sum = float(ones_solve.sum())
            self.ones_solve = ones_solve
        if not (np.isfinite(self.ones_sum) and self.ones_sum > 0.0):
            if self.stats is not None:
                self.stats.count_fallback()
            return None
        lagrange = (solved.sum(axis=0) - 1.0) / self.ones_sum  # nu, (m,)
        weights = solved - ones_solve[:, None] * lagrange[None, :]

        # Residual of the *original* system: Gamma w - nu 1 - g and 1^T w - 1.
        residual_top = self.gamma @ weights - lagrange[None, :] - gamma_queries
        residual_sum = weights.sum(axis=0) - 1.0
        scale = max(1.0, float(np.abs(gamma_queries).max(initial=0.0)))
        worst = max(
            float(np.abs(residual_top).max(initial=0.0)),
            float(np.abs(residual_sum).max(initial=0.0)),
        )
        if not np.isfinite(worst) or worst > RESIDUAL_RTOL * scale:
            if self.stats is not None:
                self.stats.count_fallback()
            return None
        return np.vstack([weights, -lagrange[None, :]])


class FactorCache:
    """LRU of :class:`GammaFactor` instances keyed by support signature.

    Parameters
    ----------
    capacity:
        Maximum number of cached factors (least recently used evicted).
    max_bytes:
        Memory budget for the cached factors' arrays (each holds two dense
        ``n x n`` float64 blocks, so entry-count alone does not bound
        memory on large-neighbourhood sweeps).  Least recently used
        entries are evicted past the budget; the most recent factor is
        always kept so derive chains survive even oversized supports.
    max_update_points:
        Largest symmetric difference between a requested signature and a
        cached one that is bridged by row appends/deletes; farther sets are
        factorized fresh.  The default (``None``) adapts to the support
        size — ``max(8, n // 8)`` — since k rank-1 edits beat an O(n^3)
        refactorization for any k well below ``n``.
    min_support:
        Support sets smaller than this bypass the cache entirely — their
        O(n^3) factorization is already trivial.
    stats:
        Counter sink, shared with the estimator's
        :class:`~repro.core.estimator.EstimatorStats`.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        max_bytes: int = 256 * 1024 * 1024,
        max_update_points: int | None = None,
        min_support: int = 4,
        stats: FactorCacheStats | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_update_points is not None and max_update_points < 0:
            raise ValueError(f"max_update_points must be >= 0, got {max_update_points}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.max_update_points = max_update_points
        self.min_support = min_support
        self._bytes = 0
        self.stats = stats if stats is not None else FactorCacheStats()
        self._entries: OrderedDict[Signature, GammaFactor] = OrderedDict()
        # Near-match search structures: an inverted index from support-cache
        # row to the cached signatures containing it (a candidate within the
        # update limit must share a row with the target unless both sets are
        # tiny — those come from the size buckets), plus a monotonic recency
        # stamp per entry so ties resolve to the most recently used factor
        # without scanning the LRU.  Keeps `_closest` proportional to the
        # candidates actually sharing rows instead of the whole cache, so
        # capacities in the hundreds stay cheap.
        self._row_index: dict[int, set[Signature]] = {}
        self._by_size: dict[int, set[Signature]] = {}
        self._stamps: dict[Signature, int] = {}
        self._clock = 0
        # Support sets with no PD factorization (rank-deficient Gammas are
        # routine on lattice workloads); memoized so a signature the
        # optimizer keeps revisiting does not pay a doomed O(n^3) Cholesky
        # attempt on every flush.
        self._failed: set[Signature] = set()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes held by the cached factors' arrays."""
        return self._bytes

    def invalidate(self) -> None:
        """Drop every cached factor (the variogram changed under them)."""
        self._entries.clear()
        self._row_index.clear()
        self._by_size.clear()
        self._stamps.clear()
        self._failed.clear()
        self._bytes = 0
        self.stats.invalidations += 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def factor_for(
        self,
        signature: Signature,
        points: np.ndarray,
        variogram: Variogram,
        metric: DistanceMetric | str,
    ) -> GammaFactor | None:
        """A usable factor for ``signature``, reused/derived/built — or
        ``None`` when no well-conditioned factorization exists.

        Must be called from a single thread (the estimator derives factors
        during group assembly, before any parallel dispatch), so cache order
        — and therefore every derived factor — is deterministic.
        """
        if len(signature) < self.min_support:
            return None
        entry = self._entries.get(signature)
        if entry is not None:
            self._entries.move_to_end(signature)
            self._touch(signature)
            self.stats.hits += 1
            return entry
        if signature in self._failed:
            return None

        base = self._closest(signature)
        if base is not None:
            derived = self._derive(base, signature, points, variogram, metric)
            if derived is not None:
                self.stats.updates += 1
                self.stats.update_points += len(
                    set(signature) ^ set(base.rows.tolist())
                )
                self._store(signature, derived)
                return derived

        fresh = self._fresh(signature, points, variogram, metric)
        if fresh is None:
            self.stats.failures += 1
            if len(self._failed) >= 8 * self.capacity:
                self._failed.clear()
            self._failed.add(signature)
            return None
        self.stats.fresh += 1
        self._store(signature, fresh)
        return fresh

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The cached factors as arrays, in LRU order (oldest first).

        Each entry carries the support rows, the unbordered Gamma block, the
        Cholesky factor and the shift — everything :class:`GammaFactor`
        needs except the lazily derived ``A^-1 1`` memo.  Rides inside the
        estimator/session snapshot so restore, cluster migration and
        failover start *warm*: a restored session replaying its workload
        refactorizes nothing.
        """
        return {
            "version": 1,
            "entries": [
                {
                    "rows": np.asarray(factor.rows, dtype=np.int64),
                    "gamma": np.asarray(factor.gamma, dtype=np.float64),
                    "chol": np.asarray(factor.chol, dtype=np.float64),
                    "shift": float(factor.shift),
                }
                for factor in self._entries.values()
            ],
        }

    def load_state(self, state: dict) -> int:
        """Restore factors from :meth:`to_state` output; returns the count.

        Every entry is validated (shapes, finiteness) before the first one
        is inserted, so a corrupted snapshot raises ``ValueError`` and
        leaves the cache cold rather than half-loaded.  Entries beyond the
        cache's capacity/byte budget are trimmed oldest-first without
        counting as runtime evictions — restore trimming is a sizing
        artifact, not cache behaviour.
        """
        if int(state.get("version", -1)) != 1:
            raise ValueError(
                f"unsupported factor-cache state version {state.get('version')!r}"
            )
        loaded: list[GammaFactor] = []
        for entry in state["entries"]:
            # Copies, not views: rank-1 updates edit factors in place, and
            # one state dict may seed several restores (or be re-snapshot).
            rows = np.array(entry["rows"], dtype=np.int64)
            gamma = np.array(entry["gamma"], dtype=np.float64)
            chol = np.array(entry["chol"], dtype=np.float64)
            shift = float(entry["shift"])
            n = rows.shape[0]
            if rows.ndim != 1 or n == 0 or gamma.shape != (n, n) or chol.shape != (n, n):
                raise ValueError("malformed factor-cache entry")
            if not (
                np.isfinite(shift)
                and bool(np.all(np.isfinite(gamma)))
                and bool(np.all(np.isfinite(chol)))
            ):
                raise ValueError("non-finite factor-cache entry")
            loaded.append(GammaFactor(rows, gamma, shift, chol, stats=self.stats))
        for factor in loaded:
            signature = tuple(sorted(factor.rows.tolist()))
            self._entries[signature] = factor
            self._entries.move_to_end(signature)
            self._touch(signature)
            for row in signature:
                self._row_index.setdefault(row, set()).add(signature)
            self._by_size.setdefault(len(signature), set()).add(signature)
            self._bytes += self._factor_bytes(factor)
            while len(self._entries) > 1 and (
                len(self._entries) > self.capacity or self._bytes > self.max_bytes
            ):
                evicted, old = self._entries.popitem(last=False)
                self._unindex(evicted)
                self._bytes -= self._factor_bytes(old)
        return len(loaded)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _factor_bytes(factor: GammaFactor) -> int:
        return factor.gamma.nbytes + factor.chol.nbytes + factor.rows.nbytes

    def _touch(self, signature: Signature) -> None:
        self._clock += 1
        self._stamps[signature] = self._clock

    def _store(self, signature: Signature, factor: GammaFactor) -> None:
        self._entries[signature] = factor
        self._entries.move_to_end(signature)
        self._touch(signature)
        for row in signature:
            self._row_index.setdefault(row, set()).add(signature)
        self._by_size.setdefault(len(signature), set()).add(signature)
        self._bytes += self._factor_bytes(factor)
        while len(self._entries) > 1 and (
            len(self._entries) > self.capacity or self._bytes > self.max_bytes
        ):
            evicted, old = self._entries.popitem(last=False)
            self._unindex(evicted)
            self._bytes -= self._factor_bytes(old)
            self.stats.evictions += 1

    def _unindex(self, signature: Signature) -> None:
        for row in signature:
            sigs = self._row_index.get(row)
            if sigs is not None:
                sigs.discard(signature)
                if not sigs:
                    del self._row_index[row]
        sized = self._by_size.get(len(signature))
        if sized is not None:
            sized.discard(signature)
            if not sized:
                del self._by_size[len(signature)]
        self._stamps.pop(signature, None)

    def _update_limit(self, signature: Signature) -> int:
        if self.max_update_points is not None:
            return self.max_update_points
        return max(8, len(signature) // 8)

    def _closest(self, signature: Signature) -> GammaFactor | None:
        """The closest cached factor within the update limit — smallest
        symmetric difference, most recently used on ties.

        Candidates come from the inverted row index: every cached signature
        sharing at least one support row with the target, for which the
        overlap count gives the symmetric difference without materializing
        a single set.  Cached sets sharing *no* row can still be within the
        limit when both sets are tiny (distance is then the plain size
        sum); the size buckets cover those.  Equivalent to a linear scan of
        the whole LRU, at a cost proportional to the signatures actually
        touching the target's rows.
        """
        limit = self._update_limit(signature)
        if limit == 0 or not self._entries:
            return None
        target_len = len(signature)
        overlap: dict[Signature, int] = {}
        lookup = self._row_index.get
        for row in signature:
            for cached in lookup(row, ()):
                overlap[cached] = overlap.get(cached, 0) + 1

        best: Signature | None = None
        best_distance = limit + 1
        best_stamp = -1
        for cached, shared in overlap.items():
            distance = target_len + len(cached) - 2 * shared
            if distance <= 0 or distance > limit:
                continue
            stamp = self._stamps[cached]
            if distance < best_distance or (
                distance == best_distance and stamp > best_stamp
            ):
                best, best_distance, best_stamp = cached, distance, stamp

        max_disjoint = limit - target_len  # distance of a zero-overlap set
        if max_disjoint >= 1:
            for size, sized in self._by_size.items():
                if size > max_disjoint:
                    continue
                for cached in sized:
                    if cached in overlap:
                        continue
                    distance = target_len + size
                    stamp = self._stamps[cached]
                    if distance < best_distance or (
                        distance == best_distance and stamp > best_stamp
                    ):
                        best, best_distance, best_stamp = cached, distance, stamp
        return self._entries[best] if best is not None else None

    def _derive(
        self,
        base: GammaFactor,
        signature: Signature,
        points: np.ndarray,
        variogram: Variogram,
        metric: DistanceMetric | str,
    ) -> GammaFactor | None:
        """Edit ``base`` into a factor for ``signature`` (None on breakdown)."""
        target = set(signature)
        chol = base.chol
        gamma = base.gamma
        rows = base.rows

        removals = np.flatnonzero([row not in target for row in rows.tolist()])
        try:
            for position in removals[::-1]:
                chol = chol_delete(chol, int(position))
                keep = np.delete(np.arange(rows.size), position)
                gamma = gamma[np.ix_(keep, keep)]
                rows = rows[keep]

            have = set(rows.tolist())
            for row in sorted(target - have):
                cross = np.asarray(
                    variogram(distances_to(points[rows], points[row], metric)),
                    dtype=np.float64,
                )
                chol = chol_append(chol, base.shift - cross, base.shift)
                size = gamma.shape[0]
                grown = np.empty((size + 1, size + 1))
                grown[:size, :size] = gamma
                grown[size, :size] = cross
                grown[:size, size] = cross
                grown[size, size] = 0.0
                gamma = grown
                rows = np.append(rows, row)
            factor = GammaFactor(rows, gamma, base.shift, chol, stats=self.stats)
        except np.linalg.LinAlgError:
            return None
        if not factor.well_conditioned():
            return None
        return factor

    def _fresh(
        self,
        signature: Signature,
        points: np.ndarray,
        variogram: Variogram,
        metric: DistanceMetric | str,
    ) -> GammaFactor | None:
        """Factorize the shifted Gamma matrix from scratch (None on failure)."""
        rows = np.asarray(signature, dtype=np.int64)
        gamma = np.asarray(
            variogram(pairwise_distances(points[rows], metric)), dtype=np.float64
        )
        np.fill_diagonal(gamma, 0.0)
        gamma_max = float(gamma.max(initial=0.0))
        if gamma_max <= 0.0 or not np.isfinite(gamma_max):
            return None
        for growth in _SHIFT_GROWTH:
            shift = growth * gamma_max
            try:
                chol = np.linalg.cholesky(shift - gamma)
                factor = GammaFactor(rows, gamma, shift, chol, stats=self.stats)
            except np.linalg.LinAlgError:
                continue
            if factor.well_conditioned():
                return factor
        return None
