"""Identification of a parametric variogram model from the empirical one.

Section III-A: "From the already measured values of lambda, the
semi-variogram can be computed and identified to a particular type of
semi-variogram."  Identification is a weighted least-squares fit over the
empirical lags, weighted by pair counts (lags estimated from more pairs count
more).  :func:`select_variogram` fits several model families and keeps the
one with the smallest weighted residual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.models import (
    ExponentialVariogram,
    GaussianVariogram,
    LinearVariogram,
    PowerVariogram,
    SphericalVariogram,
    VariogramModel,
)
from repro.core.variogram import EmpiricalVariogram

__all__ = ["FittedVariogram", "fit_variogram", "select_variogram", "MODEL_KINDS"]

MODEL_KINDS = ("linear", "spherical", "exponential", "gaussian", "power")
"""Model families understood by :func:`fit_variogram`."""


@dataclass(frozen=True)
class FittedVariogram:
    """Result of a variogram identification."""

    kind: str
    model: VariogramModel
    weighted_sse: float

    def __call__(self, h: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the fitted ``gamma(h)``."""
        return self.model(h)


def _fit_linear(emp: EmpiricalVariogram) -> FittedVariogram:
    h, g, w = emp.lags, emp.gammas, emp.counts.astype(np.float64)
    denom = float(np.sum(w * h * h))
    slope = float(np.sum(w * h * g)) / denom if denom > 0 else 1.0
    slope = max(slope, 1e-12)
    model = LinearVariogram(slope=slope)
    sse = float(np.sum(w * (model(h) - g) ** 2))
    return FittedVariogram("linear", model, sse)


def _fit_bounded(emp: EmpiricalVariogram, kind: str) -> FittedVariogram:
    h, g, w = emp.lags, emp.gammas, emp.counts.astype(np.float64)
    sqrt_w = np.sqrt(w)
    sill0 = max(float(np.max(g)), 1e-12)
    range0 = max(float(h[np.argmax(g >= 0.95 * sill0)]), float(h[0]))
    classes = {
        "spherical": SphericalVariogram,
        "exponential": ExponentialVariogram,
        "gaussian": GaussianVariogram,
    }
    cls = classes[kind]

    def residuals(params: np.ndarray) -> np.ndarray:
        sill, rng, nugget = params
        model = cls(sill=max(sill, 1e-12), range_=max(rng, 1e-9), nugget_=max(nugget, 0.0))
        return sqrt_w * (np.asarray(model(h)) - g)

    result = optimize.least_squares(
        residuals,
        x0=np.array([sill0, range0, 0.0]),
        bounds=(np.array([1e-12, 1e-9, 0.0]), np.array([np.inf, np.inf, np.inf])),
        max_nfev=200,
    )
    sill, rng, nugget = result.x
    model = cls(sill=max(float(sill), 1e-12), range_=max(float(rng), 1e-9), nugget_=max(float(nugget), 0.0))
    sse = float(np.sum(w * (np.asarray(model(h)) - g) ** 2))
    return FittedVariogram(kind, model, sse)


def _fit_power(emp: EmpiricalVariogram) -> FittedVariogram:
    h, g, w = emp.lags, emp.gammas, emp.counts.astype(np.float64)
    sqrt_w = np.sqrt(w)

    def residuals(params: np.ndarray) -> np.ndarray:
        scale, exponent = params
        model = PowerVariogram(scale=max(scale, 1e-12), exponent=float(np.clip(exponent, 1e-3, 1.999)))
        return sqrt_w * (np.asarray(model(h)) - g)

    scale0 = max(float(np.max(g)) / max(float(np.max(h)), 1.0), 1e-12)
    result = optimize.least_squares(
        residuals,
        x0=np.array([scale0, 1.0]),
        bounds=(np.array([1e-12, 1e-3]), np.array([np.inf, 1.999])),
        max_nfev=200,
    )
    scale, exponent = result.x
    model = PowerVariogram(scale=max(float(scale), 1e-12), exponent=float(np.clip(exponent, 1e-3, 1.999)))
    sse = float(np.sum(w * (np.asarray(model(h)) - g) ** 2))
    return FittedVariogram("power", model, sse)


def fit_variogram(emp: EmpiricalVariogram, kind: str = "spherical") -> FittedVariogram:
    """Fit one model family to an empirical variogram.

    Families with three parameters need at least three distinct lags; with
    fewer lags the fit silently degrades to the linear model, which is always
    identifiable (and whose scale does not affect kriging weights).
    """
    if kind not in MODEL_KINDS:
        raise ValueError(f"unknown variogram kind {kind!r}; expected one of {MODEL_KINDS}")
    if kind == "linear" or emp.n_lags < 3:
        return _fit_linear(emp)
    if kind == "power":
        return _fit_power(emp)
    try:
        return _fit_bounded(emp, kind)
    except Exception:
        # Optimizer failures (degenerate lag layouts) fall back to linear.
        return _fit_linear(emp)


def select_variogram(
    emp: EmpiricalVariogram, kinds: tuple[str, ...] = MODEL_KINDS
) -> FittedVariogram:
    """Fit every family in ``kinds`` and return the best by weighted SSE."""
    if not kinds:
        raise ValueError("kinds must be non-empty")
    fits = [fit_variogram(emp, kind) for kind in kinds]
    return min(fits, key=lambda fit: fit.weighted_sse)
