"""Spatial indices over the simulated-configuration set.

The interpolate-or-simulate policy asks one spatial question per query:
*which support points lie within distance* ``d``?  The seed implementation
answered it by scanning every simulated point; this module provides
incremental indices that prune that scan.

Design
------
An index is a *candidate generator*, not an exact filter: :meth:`~
NeighborIndex.candidates` returns a superset of the true in-radius points
(in ascending insertion order) and the caller —
:func:`repro.core.neighborhood.find_neighbors` — applies the exact distance
test to the candidates only.  This split keeps every index trivially
correct: a sloppy bound costs speed, never accuracy.

Three implementations are provided:

* :class:`BruteForceIndex` — the always-valid fallback: every inserted
  point is a candidate.
* :class:`LatticeBucketIndex` — a bucket grid over the 1-D *coordinate-sum
  projection* ``s(w) = sum_j w_j``, sized for the integer configuration
  lattice the word-length problems live on.  The projection is
  1-Lipschitz under L1 (``|s(a) - s(b)| <= ||a - b||_1``), so an L1 radius
  query only needs the ``2d + 1`` buckets with ``|s - s_q| <= d`` — on
  optimizer trajectories, whose total word-length varies widely, this
  discards the vast majority of points without looking at them.  Linf and
  L2 queries use the weaker (but still exact) bounds
  ``|s(a) - s(b)| <= Nv * Linf`` and ``|s(a) - s(b)| <= sqrt(Nv) * L2``.
* :class:`KDTreeIndex` — a median-split KD-tree whose *leaf bounding boxes*
  are screened vectorized per query; the metric-exact box distance prunes
  whole leaves, which is what the L2 metric needs (the coordinate-sum bound
  above prunes too little there).  Insertion buffers into a brute-force
  tail and the tree is rebuilt when the point count doubles, keeping
  amortized O(log n) insertion without per-insert restructuring.

Insertion is O(1) (amortized for the KD-tree); a radius query touches only
the candidate buckets/leaves.  Indices identify points by the integer row
they were inserted with (the :class:`~repro.core.cache.SimulationCache`
row), so cache and index grow in lockstep.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.core.distances import DistanceMetric

__all__ = [
    "NeighborIndex",
    "BruteForceIndex",
    "LatticeBucketIndex",
    "KDTreeIndex",
    "make_index",
]


class NeighborIndex(abc.ABC):
    """Incremental candidate index over numbered points."""

    def __init__(self, num_variables: int) -> None:
        if num_variables < 1:
            raise ValueError(f"num_variables must be >= 1, got {num_variables}")
        self.num_variables = num_variables
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @abc.abstractmethod
    def insert(self, point: np.ndarray, row: int) -> None:
        """Register ``point`` under index ``row``.

        Rows must be inserted in increasing order (0, 1, 2, ...) — the
        cache row of each simulated configuration.
        """

    @abc.abstractmethod
    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Superset of the rows within ``radius`` of ``query``.

        Returns an int64 array in ascending row order, so downstream
        stable sorts preserve insertion (= simulation) order on ties.
        """

    def _checked_insert(self, row: int) -> None:
        if row != self._n:
            raise ValueError(f"rows must be inserted in order; expected {self._n}, got {row}")
        self._n = row + 1


class BruteForceIndex(NeighborIndex):
    """No pruning: every inserted point is a candidate (the seed behaviour)."""

    def insert(self, point: np.ndarray, row: int) -> None:
        self._checked_insert(row)

    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        return np.arange(self._n, dtype=np.int64)


class LatticeBucketIndex(NeighborIndex):
    """Buckets on the coordinate-sum projection of the integer lattice.

    Parameters
    ----------
    num_variables:
        Dimension ``Nv`` of the configurations.
    metric:
        Distance metric the radius bound is derived for.
    bucket_width:
        Projection width of one bucket.  The default of 1.0 matches the
        integer configuration lattice, where sums are integers.
    """

    def __init__(
        self,
        num_variables: int,
        metric: DistanceMetric | str = DistanceMetric.L1,
        *,
        bucket_width: float = 1.0,
    ) -> None:
        super().__init__(num_variables)
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self.metric = DistanceMetric.coerce(metric)
        self.bucket_width = float(bucket_width)
        self._buckets: dict[int, list[int]] = {}

    def _bucket_of(self, total: float) -> int:
        return int(math.floor(total / self.bucket_width))

    def _projection_bound(self, radius: float) -> float:
        # |sum(a) - sum(b)| <= c * dist(a, b) with the metric-specific
        # Lipschitz constant c of the coordinate-sum projection.
        if self.metric is DistanceMetric.L1:
            return radius
        if self.metric is DistanceMetric.L2:
            return radius * math.sqrt(self.num_variables)
        return radius * self.num_variables  # Linf

    def insert(self, point: np.ndarray, row: int) -> None:
        self._checked_insert(row)
        total = float(np.sum(np.asarray(point, dtype=np.float64)))
        self._buckets.setdefault(self._bucket_of(total), []).append(row)

    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        total = float(np.sum(np.asarray(query, dtype=np.float64)))
        bound = self._projection_bound(radius)
        lo = self._bucket_of(total - bound)
        hi = self._bucket_of(total + bound)
        if hi - lo + 1 >= len(self._buckets):
            # Range wider than the occupied-bucket count: walking the dict
            # beats enumerating [lo, hi], but occupied buckets can still lie
            # outside the range — keep the bound filter.
            rows = [
                row
                for b, bucket in self._buckets.items()
                if lo <= b <= hi
                for row in bucket
            ]
        else:
            rows = []
            for b in range(lo, hi + 1):
                bucket = self._buckets.get(b)
                if bucket is not None:
                    rows.extend(bucket)
        out = np.asarray(rows, dtype=np.int64)
        out.sort()
        return out


class KDTreeIndex(NeighborIndex):
    """Median-split KD-tree with vectorized leaf-box screening.

    The tree partitions the inserted points into leaves of at most
    ``leaf_size`` rows by recursive median splits along the widest extent.
    Only the *leaf bounding boxes* matter at query time: the distance from
    the query to every leaf box is computed in one vectorized pass (the
    coordinate-wise clip makes it exact for L1, L2 and Linf alike) and the
    rows of every leaf whose box intersects the radius ball are returned as
    candidates.  With tens of leaves at thousands of points, the screen is a
    handful of numpy operations — no per-node Python recursion on the hot
    path.

    Incremental insertion uses a **rebuild-on-doubling** policy: new points
    accumulate in a tail that is always a candidate (exactness is never at
    risk), and the tree is rebuilt over everything once the point count has
    grown enough since the last build — after doubling on the insert path,
    or already past half-again on the query path, where a large tail would
    otherwise be scanned over and over.  Either trigger keeps total rebuild
    work for n inserts at O(n log n) — the same as one bulk build,
    amortized.

    Parameters
    ----------
    num_variables:
        Dimension ``Nv`` of the configurations.
    metric:
        Distance metric the box bound is evaluated under.
    leaf_size:
        Maximum rows per leaf.  Smaller leaves prune harder but raise the
        number of boxes screened per query.
    """

    _MIN_BUILD = 64  # brute-force below this; a tree cannot pay for itself

    def __init__(
        self,
        num_variables: int,
        metric: DistanceMetric | str = DistanceMetric.L2,
        *,
        leaf_size: int = 16,
    ) -> None:
        super().__init__(num_variables)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.metric = DistanceMetric.coerce(metric)
        self.leaf_size = int(leaf_size)
        self._points = np.empty((self._MIN_BUILD, num_variables), dtype=np.float64)
        self._built_n = 0  # rows covered by the current tree; the rest is tail
        # Leaf storage: _leaf_of[row] is the leaf id of each in-tree row
        # (n_leaves for tail rows), so a query is one vectorized mask lookup;
        # boxes are [_leaf_lo[k], _leaf_hi[k]].
        self._leaf_of = np.empty(self._MIN_BUILD, dtype=np.int64)
        self._leaf_lo = np.empty((0, num_variables), dtype=np.float64)
        self._leaf_hi = np.empty((0, num_variables), dtype=np.float64)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the current tree (0 before the first build)."""
        return int(self._leaf_lo.shape[0])

    @property
    def tail_size(self) -> int:
        """Rows inserted since the last rebuild (scanned brute-force)."""
        return self._n - self._built_n

    def insert(self, point: np.ndarray, row: int) -> None:
        self._checked_insert(row)
        if row == self._points.shape[0]:
            grown = np.empty((2 * row, self.num_variables), dtype=np.float64)
            grown[:row] = self._points[:row]
            self._points = grown
            leaves = np.empty(2 * row, dtype=np.int64)
            leaves[:row] = self._leaf_of[:row]
            self._leaf_of = leaves
        self._points[row] = np.asarray(point, dtype=np.float64)
        self._leaf_of[row] = self.n_leaves  # sentinel: tail, always a candidate
        if self._n >= max(2 * self._built_n, self._MIN_BUILD):
            self._rebuild()

    def _rebuild(self) -> None:
        """Re-partition all points into median-split leaves."""
        n = self._n
        pts = self._points[:n]
        order = np.arange(n, dtype=np.int64)
        los: list[np.ndarray] = []
        his: list[np.ndarray] = []
        leaf_of = self._leaf_of
        # Iterative median splits over segments of the permutation.
        stack: list[tuple[int, int]] = [(0, n)]
        while stack:
            start, stop = stack.pop()
            segment = pts[order[start:stop]]
            lo = segment.min(axis=0)
            hi = segment.max(axis=0)
            count = stop - start
            extent = hi - lo
            # A leaf when small enough — or degenerate (all rows coincide),
            # where no split can make progress.
            if count <= self.leaf_size or not np.any(extent > 0.0):
                leaf_of[order[start:stop]] = len(los)
                los.append(lo)
                his.append(hi)
                continue
            dim = int(np.argmax(extent))
            mid = count // 2
            part = np.argpartition(segment[:, dim], mid)
            # argpartition's median element can tie with rows on the other
            # side; that only skews the split, never correctness.
            order[start:stop] = order[start:stop][part]
            stack.append((start, start + mid))
            stack.append((start + mid, stop))
        self._leaf_lo = np.vstack(los)
        self._leaf_hi = np.vstack(his)
        self._built_n = n

    def _box_distances(self, query: np.ndarray) -> np.ndarray:
        """Metric distance from ``query`` to every leaf bounding box."""
        below = self._leaf_lo - query[None, :]
        above = query[None, :] - self._leaf_hi
        gap = np.maximum(np.maximum(below, above), 0.0)
        if self.metric is DistanceMetric.L1:
            return np.sum(gap, axis=1)
        if self.metric is DistanceMetric.L2:
            return np.sqrt(np.sum(gap * gap, axis=1))
        return np.max(gap, axis=1)

    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        # Query-path rebuild trigger: a tail past half the built size means
        # the set has grown >= 1.5x since the last build — fold it in now
        # rather than brute-scanning it on every query from here on.
        if self._n >= self._MIN_BUILD and 2 * self.tail_size > self._built_n:
            self._rebuild()
        if self._built_n == 0:
            return np.arange(self._n, dtype=np.int64)
        q = np.asarray(query, dtype=np.float64)
        # One boolean per leaf, plus an always-on sentinel slot for the tail;
        # the row mask is a single vectorized gather — no per-leaf Python.
        hit = np.empty(self.n_leaves + 1, dtype=bool)
        hit[:-1] = self._box_distances(q) <= radius
        hit[-1] = True
        return np.flatnonzero(hit[self._leaf_of[: self._n]])


def make_index(
    metric: DistanceMetric | str,
    num_variables: int,
    kind: str = "auto",
) -> NeighborIndex:
    """Build the neighbourhood index for a metric.

    ``kind`` is ``"auto"`` (bucket index for L1/Linf, KD-tree for L2 — the
    coordinate-sum projection bound prunes too little there, while leaf
    boxes prune geometrically), ``"bucket"``, ``"kdtree"`` or ``"brute"``.
    """
    metric = DistanceMetric.coerce(metric)
    if kind == "auto":
        kind = "kdtree" if metric is DistanceMetric.L2 else "bucket"
    if kind == "bucket":
        return LatticeBucketIndex(num_variables, metric)
    if kind == "kdtree":
        return KDTreeIndex(num_variables, metric)
    if kind == "brute":
        return BruteForceIndex(num_variables)
    raise ValueError(
        f"unknown index kind {kind!r}; expected 'auto', 'bucket', 'kdtree' or 'brute'"
    )
