"""Spatial indices over the simulated-configuration set.

The interpolate-or-simulate policy asks one spatial question per query:
*which support points lie within distance* ``d``?  The seed implementation
answered it by scanning every simulated point; this module provides
incremental indices that prune that scan.

Design
------
An index is a *candidate generator*, not an exact filter: :meth:`~
NeighborIndex.candidates` returns a superset of the true in-radius points
(in ascending insertion order) and the caller —
:func:`repro.core.neighborhood.find_neighbors` — applies the exact distance
test to the candidates only.  This split keeps every index trivially
correct: a sloppy bound costs speed, never accuracy.

Two implementations are provided:

* :class:`BruteForceIndex` — the always-valid fallback: every inserted
  point is a candidate.  Used for metrics without a useful projection
  bound (a KD-tree for L2 is a ROADMAP open item).
* :class:`LatticeBucketIndex` — a bucket grid over the 1-D *coordinate-sum
  projection* ``s(w) = sum_j w_j``, sized for the integer configuration
  lattice the word-length problems live on.  The projection is
  1-Lipschitz under L1 (``|s(a) - s(b)| <= ||a - b||_1``), so an L1 radius
  query only needs the ``2d + 1`` buckets with ``|s - s_q| <= d`` — on
  optimizer trajectories, whose total word-length varies widely, this
  discards the vast majority of points without looking at them.  Linf and
  L2 queries use the weaker (but still exact) bounds
  ``|s(a) - s(b)| <= Nv * Linf`` and ``|s(a) - s(b)| <= sqrt(Nv) * L2``.

Insertion is O(1); a radius query touches only the candidate buckets.
Indices identify points by the integer row they were inserted with (the
:class:`~repro.core.cache.SimulationCache` row), so cache and index grow in
lockstep.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.core.distances import DistanceMetric

__all__ = [
    "NeighborIndex",
    "BruteForceIndex",
    "LatticeBucketIndex",
    "make_index",
]


class NeighborIndex(abc.ABC):
    """Incremental candidate index over numbered points."""

    def __init__(self, num_variables: int) -> None:
        if num_variables < 1:
            raise ValueError(f"num_variables must be >= 1, got {num_variables}")
        self.num_variables = num_variables
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @abc.abstractmethod
    def insert(self, point: np.ndarray, row: int) -> None:
        """Register ``point`` under index ``row``.

        Rows must be inserted in increasing order (0, 1, 2, ...) — the
        cache row of each simulated configuration.
        """

    @abc.abstractmethod
    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Superset of the rows within ``radius`` of ``query``.

        Returns an int64 array in ascending row order, so downstream
        stable sorts preserve insertion (= simulation) order on ties.
        """

    def _checked_insert(self, row: int) -> None:
        if row != self._n:
            raise ValueError(f"rows must be inserted in order; expected {self._n}, got {row}")
        self._n = row + 1


class BruteForceIndex(NeighborIndex):
    """No pruning: every inserted point is a candidate (the seed behaviour)."""

    def insert(self, point: np.ndarray, row: int) -> None:
        self._checked_insert(row)

    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        return np.arange(self._n, dtype=np.int64)


class LatticeBucketIndex(NeighborIndex):
    """Buckets on the coordinate-sum projection of the integer lattice.

    Parameters
    ----------
    num_variables:
        Dimension ``Nv`` of the configurations.
    metric:
        Distance metric the radius bound is derived for.
    bucket_width:
        Projection width of one bucket.  The default of 1.0 matches the
        integer configuration lattice, where sums are integers.
    """

    def __init__(
        self,
        num_variables: int,
        metric: DistanceMetric | str = DistanceMetric.L1,
        *,
        bucket_width: float = 1.0,
    ) -> None:
        super().__init__(num_variables)
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self.metric = DistanceMetric.coerce(metric)
        self.bucket_width = float(bucket_width)
        self._buckets: dict[int, list[int]] = {}

    def _bucket_of(self, total: float) -> int:
        return int(math.floor(total / self.bucket_width))

    def _projection_bound(self, radius: float) -> float:
        # |sum(a) - sum(b)| <= c * dist(a, b) with the metric-specific
        # Lipschitz constant c of the coordinate-sum projection.
        if self.metric is DistanceMetric.L1:
            return radius
        if self.metric is DistanceMetric.L2:
            return radius * math.sqrt(self.num_variables)
        return radius * self.num_variables  # Linf

    def insert(self, point: np.ndarray, row: int) -> None:
        self._checked_insert(row)
        total = float(np.sum(np.asarray(point, dtype=np.float64)))
        self._buckets.setdefault(self._bucket_of(total), []).append(row)

    def candidates(self, query: np.ndarray, radius: float) -> np.ndarray:
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        total = float(np.sum(np.asarray(query, dtype=np.float64)))
        bound = self._projection_bound(radius)
        lo = self._bucket_of(total - bound)
        hi = self._bucket_of(total + bound)
        if hi - lo + 1 >= len(self._buckets):
            # Range wider than the occupied-bucket count: walking the dict
            # beats enumerating [lo, hi], but occupied buckets can still lie
            # outside the range — keep the bound filter.
            rows = [
                row
                for b, bucket in self._buckets.items()
                if lo <= b <= hi
                for row in bucket
            ]
        else:
            rows = []
            for b in range(lo, hi + 1):
                bucket = self._buckets.get(b)
                if bucket is not None:
                    rows.extend(bucket)
        out = np.asarray(rows, dtype=np.int64)
        out.sort()
        return out


def make_index(
    metric: DistanceMetric | str,
    num_variables: int,
    kind: str = "auto",
) -> NeighborIndex:
    """Build the neighbourhood index for a metric.

    ``kind`` is ``"auto"`` (bucket index for L1/Linf, brute force for L2 —
    the sqrt(Nv) projection bound prunes too little to pay for itself),
    ``"bucket"`` or ``"brute"``.
    """
    metric = DistanceMetric.coerce(metric)
    if kind == "auto":
        kind = "brute" if metric is DistanceMetric.L2 else "bucket"
    if kind == "bucket":
        return LatticeBucketIndex(num_variables, metric)
    if kind == "brute":
        return BruteForceIndex(num_variables)
    raise ValueError(f"unknown index kind {kind!r}; expected 'auto', 'bucket' or 'brute'")
