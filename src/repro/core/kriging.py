"""Kriging solvers (paper Eqs. 7-10).

Ordinary kriging estimates the metric at a query configuration ``e_i`` as a
weighted sum of the measured values, with weights chosen so the estimator is
unbiased (weights sum to one, enforced through a Lagrange multiplier — the
row/column of ones bordering the paper's Eq. 9 matrix) and has minimal error
variance (Eq. 5).  The estimate is ``gamma_i . Gamma^-1 . lambda`` (Eq. 10).

The paper calls this construction "simple kriging"; the bordered system is
the textbook *ordinary* kriging formulation, which we name accordingly.  A
true simple-kriging variant (known mean, no Lagrange border) is provided for
completeness and for the ablation benches.

Solve dispatch
--------------
:func:`ordinary_kriging_grouped` is the batch engine's solve layer.  Besides
the thread/process pool fan-out it supports two zero-copy/batching levers:

* ``stacking=True`` bins same-size bordered systems and factorizes each bin
  as **one** batched ``numpy.linalg.solve`` call over a 3-D stack (LAPACK
  runs the same per-matrix routine, so results stay inside the ~1e-9
  equivalence envelope, and the per-call Python/LAPACK dispatch overhead is
  paid once per bin instead of once per group).  Serial, thread and process
  backends all route through the same binning, so results are bit-identical
  across ``n_jobs`` and backends for a fixed ``stacking`` setting.  A slice
  whose residual check fails falls back to the per-group solver,
  transparently.  The stack seam (`solve_groups_stacked`) is also where an
  optional torch/cupy batched-Cholesky backend can plug in later.
* :func:`ordinary_kriging_grouped_shm` is the shared-memory process path:
  support *row indices* and query coordinates travel through a
  :class:`~repro.core.shm.ShmArena` instead of per-group pickles — see
  :mod:`repro.core.shm`.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from itertools import count
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.distances import (
    DistanceMetric,
    cross_distances,
    distances_to,
    pairwise_distances,
)
from repro.core.shm import (
    CacheSpec,
    FlushSpec,
    ShmArena,
    ShmAttachError,
    attach_cache,
    attach_flush,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.factor_cache import GammaFactor

__all__ = [
    "KrigingResult",
    "SolvePhases",
    "ordinary_kriging",
    "ordinary_kriging_batch",
    "ordinary_kriging_grouped",
    "ordinary_kriging_grouped_shm",
    "solve_groups_stacked",
    "simple_kriging",
    "resolve_n_jobs",
    "resolve_backend",
    "make_model_ref",
    "SOLVE_BACKENDS",
]

Variogram = Callable[[np.ndarray], np.ndarray]

KrigingGroup = tuple[np.ndarray, np.ndarray, np.ndarray]
"""One shared-support solve: ``(support_points, support_values, queries)``."""

SOLVE_BACKENDS = ("thread", "process")
"""Executors :func:`ordinary_kriging_grouped` can spread groups over."""


def resolve_backend(backend: str) -> str:
    """Validate a grouped-solve ``backend`` knob."""
    if backend not in SOLVE_BACKENDS:
        raise ValueError(
            f"backend must be one of {SOLVE_BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``1`` mean sequential; ``-1`` means one worker per CPU;
    any other positive integer is taken literally.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}")
    return n_jobs


class SolvePhases:
    """Thread-safe wall-clock accumulator for the three solve phases.

    *assembly* — distance/variogram kernels and system construction;
    *factorize* — fresh LAPACK factorizations (``gesv`` / batched solve);
    *backsolve* — cached-factor triangular solves plus per-query weight,
    estimate and variance extraction.  Process workers accumulate locally
    and return :meth:`totals` with each chunk; the parent :meth:`merge`\\ s
    them, so the split stays exact across backends.
    """

    __slots__ = ("assembly", "factorize", "backsolve", "_lock")

    def __init__(self) -> None:
        self.assembly = 0.0
        self.factorize = 0.0
        self.backsolve = 0.0
        self._lock = threading.Lock()

    def add(
        self,
        assembly: float = 0.0,
        factorize: float = 0.0,
        backsolve: float = 0.0,
    ) -> None:
        with self._lock:
            self.assembly += assembly
            self.factorize += factorize
            self.backsolve += backsolve

    def totals(self) -> tuple[float, float, float]:
        with self._lock:
            return (self.assembly, self.factorize, self.backsolve)

    def merge(self, totals: tuple[float, float, float]) -> None:
        self.add(*totals)


@dataclass(frozen=True)
class KrigingResult:
    """Outcome of one kriging interpolation.

    Attributes
    ----------
    estimate:
        Interpolated metric value ``lambda_hat(e_i)``.
    variance:
        Kriging variance (estimation-error variance); non-negative up to
        numerical noise.
    weights:
        Weight ``mu_k`` of each support value.
    lagrange:
        Lagrange multiplier of the unbiasedness constraint (ordinary kriging
        only; 0 for simple kriging).
    """

    estimate: float
    variance: float
    weights: np.ndarray
    lagrange: float

    @property
    def n_support(self) -> int:
        """Number of support points used."""
        return len(self.weights)


def _validate_support(
    points: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    pts = np.asarray(points, dtype=np.float64)
    vals = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError(f"support points must be a non-empty 2-D array, got {pts.shape}")
    if vals.ndim != 1 or vals.size != pts.shape[0]:
        raise ValueError(f"values shape {vals.shape} incompatible with {pts.shape[0]} points")
    if not np.all(np.isfinite(vals)):
        raise ValueError("support values contain non-finite entries")
    # Coincident support points make the kriging matrix singular and the
    # least-squares fallback then violates the unit-sum constraint; collapse
    # duplicates to their mean value instead.
    unique, inverse = np.unique(pts, axis=0, return_inverse=True)
    if unique.shape[0] != pts.shape[0]:
        sums = np.zeros(unique.shape[0])
        counts = np.zeros(unique.shape[0])
        np.add.at(sums, inverse, vals)
        np.add.at(counts, inverse, 1.0)
        pts, vals = unique, sums / counts
    return pts, vals


def _validate(
    points: np.ndarray, values: np.ndarray, query: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    pts, vals = _validate_support(points, values)
    q = np.asarray(query, dtype=np.float64)
    if q.ndim != 1 or q.size != pts.shape[1]:
        raise ValueError(f"query shape {q.shape} incompatible with dim {pts.shape[1]}")
    return pts, vals, q


def _solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the kriging system, falling back to least squares when needed.

    ``rhs`` may be a single vector or a ``(size, m)`` matrix of right-hand
    sides; the matrix is factorized once either way.  Besides hard
    singularity (``LinAlgError`` / non-finite entries), the direct solve is
    also rejected when its *residual* is large relative to the right-hand
    side: on nearly singular systems (e.g. the piecewise-linear variogram on
    collinear lattice supports) ``solve`` can return finite garbage whose
    unit-sum constraint row is badly violated, while the minimum-norm
    least-squares solution of the same (consistent) system honours it.
    """
    try:
        solution = np.linalg.solve(matrix, rhs)
        if np.all(np.isfinite(solution)):
            residual = np.abs(matrix @ solution - rhs).max()
            if residual <= 1e-6 * max(1.0, np.abs(rhs).max()):
                return solution
    except np.linalg.LinAlgError:
        pass
    solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    return solution


def _bordered_system(
    pts: np.ndarray, variogram: Variogram, metric: DistanceMetric | str
) -> np.ndarray:
    """The paper's Eq. 9 matrix: Gamma bordered by the unbiasedness row."""
    n = pts.shape[0]
    gamma_matrix = np.asarray(variogram(pairwise_distances(pts, metric)), dtype=np.float64)
    np.fill_diagonal(gamma_matrix, 0.0)
    system = np.empty((n + 1, n + 1))
    system[:n, :n] = gamma_matrix
    system[:n, n] = 1.0
    system[n, :n] = 1.0
    system[n, n] = 0.0
    return system


def _exact_hit(
    pts: np.ndarray, vals: np.ndarray, query: np.ndarray
) -> KrigingResult | None:
    """Kriging exactness shortcut: a query coinciding with a support point.

    Degenerate (singular) kriging systems arise easily on integer lattices —
    e.g. the piecewise-linear variogram under the L1 metric — and their
    least-squares solutions need not honour exact interpolation.  Resolving
    coincident queries directly guarantees the exactness property
    regardless of system conditioning.
    """
    matches = np.flatnonzero(np.all(pts == query[None, :], axis=1))
    if matches.size == 0:
        return None
    index = int(matches[0])
    weights = np.zeros(pts.shape[0])
    weights[index] = 1.0
    return KrigingResult(
        estimate=float(vals[index]), variance=0.0, weights=weights, lagrange=0.0
    )


def ordinary_kriging(
    points: np.ndarray,
    values: np.ndarray,
    query: np.ndarray,
    variogram: Variogram,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
) -> KrigingResult:
    """Ordinary-kriging estimate of the metric at ``query`` (Eqs. 7-10).

    Parameters
    ----------
    points:
        ``(n, Nv)`` configurations where the metric has been measured.
    values:
        Measured metric values ``lambda(e_k)``.
    query:
        Configuration ``e_i`` to interpolate.
    variogram:
        Semi-variogram function ``gamma(h)`` (fitted model or empirical).
    metric:
        Distance metric between configurations (paper: L1).

    Notes
    -----
    Kriging is an *exact* interpolator: when ``query`` coincides with a
    support point the estimate equals the measured value.  With a single
    support point the estimate degenerates to that value (weights must sum
    to one).  Coincident support points are collapsed to their mean value
    before solving, so ``result.weights`` refers to the deduplicated support
    set.
    """
    pts, vals, q = _validate(points, values, query)
    hit = _exact_hit(pts, vals, q)
    if hit is not None:
        return hit
    n = pts.shape[0]

    system = _bordered_system(pts, variogram, metric)
    gamma_query = np.asarray(variogram(distances_to(pts, q, metric)), dtype=np.float64)
    rhs = np.concatenate([gamma_query, [1.0]])

    solution = _solve(system, rhs)
    weights, lagrange = solution[:n], float(solution[n])
    estimate = float(weights @ vals)
    variance = float(solution @ rhs)  # sum_k mu_k gamma_ik + lagrange
    return KrigingResult(
        estimate=estimate,
        variance=max(variance, 0.0),
        weights=weights,
        lagrange=lagrange,
    )


class _PreparedGroup:
    """The support-validated, exact-hit-resolved front half of a group solve.

    Shared by the per-group and the stacked solvers so both paths make
    byte-identical decisions about deduplication, exact hits and right-hand
    side construction.
    """

    __slots__ = ("pts", "vals", "n", "results", "pending", "gamma_queries", "rhs")


def _prepare_group(
    points: np.ndarray,
    values: np.ndarray,
    queries: np.ndarray,
    variogram: Variogram,
    metric: DistanceMetric | str,
    factor: "GammaFactor | None" = None,
) -> _PreparedGroup | None:
    if factor is not None and factor.n_support == np.shape(points)[0]:
        # Factored supports come straight from the estimator's simulation
        # cache (unique rows by construction): skip the duplicate collapse,
        # keep the cheap finiteness guard.
        pts = np.asarray(points, dtype=np.float64)
        vals = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(vals)):
            raise ValueError("support values contain non-finite entries")
    else:
        pts, vals = _validate_support(points, values)
    qs = np.asarray(queries, dtype=np.float64)
    if qs.ndim != 2 or qs.shape[1] != pts.shape[1]:
        raise ValueError(
            f"queries must have shape (m, {pts.shape[1]}), got {qs.shape}"
        )
    m = qs.shape[0]
    if m == 0:
        return None
    n = pts.shape[0]

    prep = _PreparedGroup()
    prep.pts = pts
    prep.vals = vals
    prep.n = n
    prep.results = [None] * m
    prep.pending = []
    dist_q = cross_distances(pts, qs, metric)  # (n, m)
    for j in range(m):
        exact = np.flatnonzero(dist_q[:, j] == 0.0)
        if exact.size:
            row = int(exact[0])
            weights = np.zeros(n)
            weights[row] = 1.0
            prep.results[j] = KrigingResult(
                estimate=float(vals[row]), variance=0.0, weights=weights, lagrange=0.0
            )
        else:
            prep.pending.append(j)
    if prep.pending:
        gamma_queries = np.asarray(
            variogram(dist_q[:, prep.pending]), dtype=np.float64
        )
        prep.gamma_queries = gamma_queries
        prep.rhs = np.vstack([gamma_queries, np.ones((1, len(prep.pending)))])
    else:
        prep.gamma_queries = None
        prep.rhs = None
    return prep


def _finish_group(prep: _PreparedGroup, solution: np.ndarray) -> list[KrigingResult]:
    """Turn a pending-column solution into per-query results."""
    n = prep.n
    weights = solution[:n]
    lagrange = solution[n]
    estimates = prep.vals @ weights
    variances = np.einsum("ij,ij->j", solution, prep.rhs)
    for col, j in enumerate(prep.pending):
        prep.results[j] = KrigingResult(
            estimate=float(estimates[col]),
            variance=max(float(variances[col]), 0.0),
            weights=weights[:, col].copy(),
            lagrange=float(lagrange[col]),
        )
    return [r for r in prep.results if r is not None]


def ordinary_kriging_batch(
    points: np.ndarray,
    values: np.ndarray,
    queries: np.ndarray,
    variogram: Variogram,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    factor: "GammaFactor | None" = None,
    phases: SolvePhases | None = None,
) -> list[KrigingResult]:
    """Ordinary kriging of many queries over one shared support set.

    The bordered Gamma matrix (Eq. 9) depends only on the support, so for a
    batch of queries it is built **once** and the linear system is
    factorized **once** (one LAPACK ``gesv`` call); every query contributes
    just a right-hand-side column and a back-substitution.  Versus calling
    :func:`ordinary_kriging` per query this removes the dominant
    O(n^3)-per-query cost — the win the whole batch query engine
    (:meth:`repro.core.estimator.KrigingEstimator.evaluate_batch`) is built
    on.

    Parameters
    ----------
    points, values:
        Shared support set, as in :func:`ordinary_kriging`.
    queries:
        ``(m, Nv)`` configurations to interpolate.
    variogram, metric:
        As in :func:`ordinary_kriging`.
    factor:
        Optional cached :class:`~repro.core.factor_cache.GammaFactor` for
        this support set — ``points``/``values`` must then be in the
        factor's row order (deduplicated; the estimator's cache guarantees
        this).  The solve reuses the factorization (two triangular
        backsolves) and verifies its residual against the true bordered
        system; a residual miss transparently falls back to the fresh
        solver, so a stale or ill-conditioned factor costs accuracy nothing.
    phases:
        Optional :class:`SolvePhases` accumulator receiving the
        assembly / factorize / backsolve wall-clock split.

    Returns
    -------
    list[KrigingResult]
        One result per query row, in order.  Queries coinciding with a
        support point take the exactness shortcut, as in the single-query
        path.
    """
    t0 = time.perf_counter()
    prep = _prepare_group(points, values, queries, variogram, metric, factor=factor)
    if prep is None:
        return []
    if phases is not None:
        phases.add(assembly=time.perf_counter() - t0)
    if not prep.pending:
        return [r for r in prep.results if r is not None]

    solution = None
    if factor is not None and factor.n_support == prep.n:
        t1 = time.perf_counter()
        solution = factor.solve(prep.gamma_queries)  # None: residual fallback
        if phases is not None:
            phases.add(backsolve=time.perf_counter() - t1)
    if solution is None:
        t1 = time.perf_counter()
        system = _bordered_system(prep.pts, variogram, metric)
        t2 = time.perf_counter()
        solution = _solve(system, prep.rhs)  # one factorization, many RHS
        if phases is not None:
            t3 = time.perf_counter()
            phases.add(assembly=t2 - t1, factorize=t3 - t2)
    t1 = time.perf_counter()
    out = _finish_group(prep, solution)
    if phases is not None:
        phases.add(backsolve=time.perf_counter() - t1)
    return out


# ---------------------------------------------------------------------------
# Stacked batched factorization
# ---------------------------------------------------------------------------
def _size_bins(sizes: Sequence[int]) -> list[list[int]]:
    """Group indices binned by raw support size, in first-encounter order.

    The one binning used by every backend (serial runs it inside
    :func:`solve_groups_stacked`, thread/process dispatch bins in the parent
    and ships whole bins), so bin composition — and with it every stacked
    slice's arithmetic — is independent of ``n_jobs`` and backend.
    """
    bins: "OrderedDict[int, list[int]]" = OrderedDict()
    for idx, size in enumerate(sizes):
        bins.setdefault(int(size), []).append(idx)
    return list(bins.values())


def _solve_stack(
    members: list[tuple[int, _PreparedGroup]],
    variogram: Variogram,
    metric: DistanceMetric | str,
    results: list,
    phases: SolvePhases | None,
) -> None:
    """Solve same-size prepared groups as one batched ``gesv`` call.

    Right-hand sides are zero-padded to the widest member (a zero column
    back-substitutes to an exactly zero column, so padding is free); each
    slice is then residual-checked with the same criterion as :func:`_solve`
    and failing slices fall back to the per-group fresh solver.
    """
    if len(members) == 1:
        idx, prep = members[0]
        t0 = time.perf_counter()
        system = _bordered_system(prep.pts, variogram, metric)
        t1 = time.perf_counter()
        solution = _solve(system, prep.rhs)
        t2 = time.perf_counter()
        results[idx] = _finish_group(prep, solution)
        if phases is not None:
            phases.add(
                assembly=t1 - t0,
                factorize=t2 - t1,
                backsolve=time.perf_counter() - t2,
            )
        return

    size = members[0][1].n
    m_max = max(len(prep.pending) for _, prep in members)
    t0 = time.perf_counter()
    systems = np.empty((len(members), size + 1, size + 1))
    rhs = np.zeros((len(members), size + 1, m_max))
    for slot, (_, prep) in enumerate(members):
        systems[slot] = _bordered_system(prep.pts, variogram, metric)
        rhs[slot, :, : len(prep.pending)] = prep.rhs
    t1 = time.perf_counter()

    solutions = None
    try:
        solutions = np.linalg.solve(systems, rhs)  # one batched gesv
    except np.linalg.LinAlgError:
        pass  # some slice is hard-singular: per-group fallback below
    ok = np.zeros(len(members), dtype=bool)
    if solutions is not None:
        finite = np.isfinite(solutions).all(axis=(1, 2))
        residuals = np.abs(systems @ solutions - rhs).max(axis=(1, 2))
        scales = np.maximum(1.0, np.abs(rhs).max(axis=(1, 2)))
        ok = finite & (residuals <= 1e-6 * scales)
    t2 = time.perf_counter()
    if phases is not None:
        phases.add(assembly=t1 - t0, factorize=t2 - t1)

    for slot, (idx, prep) in enumerate(members):
        if ok[slot]:
            t3 = time.perf_counter()
            results[idx] = _finish_group(
                prep, solutions[slot, :, : len(prep.pending)]
            )
            if phases is not None:
                phases.add(backsolve=time.perf_counter() - t3)
        else:
            # Recompute this slice exactly as the unstacked path would
            # (LU-with-residual-check, then least squares).
            t3 = time.perf_counter()
            solution = _solve(systems[slot], rhs[slot, :, : len(prep.pending)])
            t4 = time.perf_counter()
            results[idx] = _finish_group(prep, solution)
            if phases is not None:
                phases.add(
                    factorize=t4 - t3, backsolve=time.perf_counter() - t4
                )


def solve_groups_stacked(
    groups: Sequence[KrigingGroup],
    variogram: Variogram,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    factors: "Sequence[GammaFactor | None] | None" = None,
    phases: SolvePhases | None = None,
) -> list[list[KrigingResult]]:
    """Solve many groups, stacking same-size systems into batched calls.

    Per-group semantics (dedup, exact hits, residual checks, factor reuse)
    are identical to :func:`ordinary_kriging_batch` — groups with a usable
    cached factor take the factor path per group; the rest are binned by
    support size and each bin is factorized as one 3-D batched solve.  This
    is the stacking seam an optional torch/cupy batched-Cholesky backend
    can reuse.
    """
    results: list[list[KrigingResult] | None] = [None] * len(groups)
    stacks: "OrderedDict[int, list[tuple[int, _PreparedGroup]]]" = OrderedDict()
    for idx, (points, values, queries) in enumerate(groups):
        factor = factors[idx] if factors is not None else None
        if factor is not None and factor.n_support == np.shape(points)[0]:
            results[idx] = ordinary_kriging_batch(
                points, values, queries, variogram,
                metric=metric, factor=factor, phases=phases,
            )
            continue
        t0 = time.perf_counter()
        prep = _prepare_group(points, values, queries, variogram, metric)
        if phases is not None:
            phases.add(assembly=time.perf_counter() - t0)
        if prep is None:
            results[idx] = []
        elif not prep.pending:
            results[idx] = [r for r in prep.results if r is not None]
        else:
            # Bin by the *validated* size: duplicate collapse may shrink a
            # group below its raw size, and slices in a stack must agree.
            stacks.setdefault(prep.n, []).append((idx, prep))
    for members in stacks.values():
        _solve_stack(members, variogram, metric, results, phases)
    return results  # type: ignore[return-value]


def _solve_group_chunk(
    chunk: list[KrigingGroup],
    variogram: Variogram,
    metric: DistanceMetric | str,
    stacking: bool = False,
) -> tuple[list[list[KrigingResult]], tuple[float, float, float]]:
    """Solve a chunk of groups (module-level: picklable, so the process
    backend can ship it to workers).  Returns the per-group results plus the
    chunk's solve-phase totals for the parent to merge."""
    phases = SolvePhases()
    if stacking:
        results = solve_groups_stacked(chunk, variogram, metric=metric, phases=phases)
    else:
        results = [
            ordinary_kriging_batch(
                points, values, queries, variogram, metric=metric, phases=phases
            )
            for points, values, queries in chunk
        ]
    return results, phases.totals()


# ---------------------------------------------------------------------------
# Process-backend model shipping: fit-generation keyed worker cache
# ---------------------------------------------------------------------------
_MODEL_KEYS = count(1)
"""Parent-side fit-generation counter: every (re)fitted variogram shipped to
process workers gets a fresh key, so worker caches can never serve a stale
model."""

#: Worker-side cache of unpickled variogram models, keyed by fit generation.
#: Bounded so long-lived pools shared between estimators stay small.
_WORKER_MODELS: OrderedDict[int, Variogram] = OrderedDict()
_WORKER_MODEL_LIMIT = 8


def make_model_ref(variogram: Variogram) -> tuple[int, bytes]:
    """Pickle ``variogram`` once and tag it with a fresh fit-generation key.

    Callers (the estimator) memoize the result per fitted model, so across
    the hundreds of flushes between two refits the model is pickled exactly
    once; workers unpickle it once per generation
    (:func:`_resolve_model_ref`) and reuse the cached object afterwards.
    The raw ``bytes`` blob still rides along each task — copying bytes is a
    memcpy, versus re-walking the model's object graph per chunk.
    """
    return next(_MODEL_KEYS), pickle.dumps(variogram)


def _resolve_model_ref(model_key: int, blob: bytes) -> Variogram:
    """Worker-side lookup: unpickle on first sight of a generation key."""
    model = _WORKER_MODELS.get(model_key)
    if model is None:
        model = pickle.loads(blob)
        _WORKER_MODELS[model_key] = model
        while len(_WORKER_MODELS) > _WORKER_MODEL_LIMIT:
            _WORKER_MODELS.popitem(last=False)
    else:
        _WORKER_MODELS.move_to_end(model_key)
    return model


def _solve_group_chunk_ref(
    chunk: list[KrigingGroup],
    model_key: int,
    blob: bytes,
    metric: DistanceMetric | str,
    stacking: bool = False,
) -> tuple[list[list[KrigingResult]], tuple[float, float, float]]:
    """Chunk solver taking the variogram by fit-generation reference."""
    return _solve_group_chunk(
        chunk, _resolve_model_ref(model_key, blob), metric, stacking=stacking
    )


ShmGroupDesc = tuple[int, int, int, int]
"""Worker-side group addressing: ``(rows_offset, n_rows, query_offset,
n_queries)`` into the flush segment's concatenated arrays."""


def _solve_group_chunk_shm(
    descs: list[ShmGroupDesc],
    cache: CacheSpec,
    flush: FlushSpec,
    metric: DistanceMetric | str,
    stacking: bool = False,
    model_key: int | None = None,
    blob: bytes | None = None,
    variogram: Variogram | None = None,
) -> tuple[list[list[KrigingResult]], tuple[float, float, float]]:
    """Shared-memory chunk solver: groups arrive as index ranges, not arrays.

    Attaches the published cache and flush segments (memoized per segment
    generation), gathers each group's support rows locally and runs the
    ordinary chunk solver.  Raises :class:`~repro.core.shm.ShmAttachError`
    — picklable, so the parent sees a structured failure and falls back to
    the pickled path — when a segment cannot be mapped.
    """
    if variogram is None:
        variogram = _resolve_model_ref(model_key, blob)
    cache_points, cache_values = attach_cache(cache)
    all_rows, all_queries = attach_flush(flush)
    chunk: list[KrigingGroup] = []
    for rows_off, n_rows, q_off, n_queries in descs:
        rows = all_rows[rows_off : rows_off + n_rows]
        chunk.append(
            (
                cache_points[rows],  # fancy index: worker-local copy
                cache_values[rows],
                all_queries[q_off : q_off + n_queries],
            )
        )
    return _solve_group_chunk(chunk, variogram, metric, stacking=stacking)


def _contiguous_group(group: KrigingGroup) -> KrigingGroup:
    """Copy a group's arrays into contiguous buffers for cheap pickling."""
    points, values, queries = group
    return (
        np.ascontiguousarray(points),
        np.ascontiguousarray(values),
        np.ascontiguousarray(queries),
    )


def _scatter(
    bins: list[list[int]], parts: Sequence[list[list[KrigingResult]]], total: int
) -> list[list[KrigingResult]]:
    """Reassemble per-bin result lists into original group order."""
    out: list[list[KrigingResult] | None] = [None] * total
    for bin_indices, part in zip(bins, parts):
        for idx, group_results in zip(bin_indices, part):
            out[idx] = group_results
    return out  # type: ignore[return-value]


def ordinary_kriging_grouped(
    groups: Sequence[KrigingGroup],
    variogram: Variogram,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    n_jobs: int | None = 1,
    executor: Executor | None = None,
    backend: str = "thread",
    factors: "Sequence[GammaFactor | None] | None" = None,
    model_ref: tuple[int, bytes] | None = None,
    stacking: bool = False,
    phases: SolvePhases | None = None,
) -> list[list[KrigingResult]]:
    """Solve many independent shared-support kriging groups, optionally in
    parallel.

    Each group is a ``(support_points, support_values, queries)`` triple
    handed to :func:`ordinary_kriging_batch`; groups share nothing, so they
    parallelize embarrassingly.  With ``n_jobs > 1`` the groups are split
    into contiguous chunks solved on a ``concurrent.futures`` pool.

    The default ``backend="thread"`` shares the support arrays zero-copy and
    relies on the heavy steps (LAPACK factorizations, BLAS
    back-substitutions, the numpy distance/variogram kernels) releasing the
    GIL.  ``backend="process"`` ships each chunk to a
    ``ProcessPoolExecutor`` as contiguous pickled arrays — worth it when the
    workload is dominated by the GIL-holding Python-level group assembly
    (many small groups) rather than the solves; the variogram callable must
    then be picklable (every fitted model is).  (The estimator's
    shared-memory path, :func:`ordinary_kriging_grouped_shm`, removes the
    pickled-array tax when the supports live in a published cache.)

    Results are **deterministic and identical** to the sequential loop
    regardless of ``n_jobs`` or ``backend``: every group's arithmetic happens
    on a single worker in a fixed order, so scheduling cannot change a
    single bit of the output — parallelism is purely a wall-clock knob.
    With ``stacking=True`` the same holds (bins are computed identically on
    every backend); stacking on-vs-off stays within the engine's ~1e-9
    equivalence envelope.

    Parameters
    ----------
    groups:
        Shared-support groups, each ``(points, values, queries)`` as in
        :func:`ordinary_kriging_batch`.
    variogram, metric:
        As in :func:`ordinary_kriging`.  The variogram callable must be
        thread-safe (the fitted models are pure array functions) and, for
        the process backend, picklable.
    n_jobs:
        Workers: ``1``/``None`` sequential, ``-1`` one per CPU.
    executor:
        Optional pre-built pool matching ``backend`` to run on.  Callers
        issuing many grouped solves (the batch engine flushes before every
        simulation) pass a long-lived pool so each flush does not pay
        executor spawn/join; without one, a temporary pool is created per
        call.
    backend:
        ``"thread"`` (default) or ``"process"`` — see above.
    factors:
        Optional per-group cached factorizations, aligned with ``groups``
        (``None`` entries solve fresh).  Thread backend only: factors hold
        live references into the reuse layer's LRU and are not shipped
        across process boundaries.
    model_ref:
        Optional :func:`make_model_ref` result for ``variogram`` (process
        backend only).  Workers then resolve the model through a
        fit-generation keyed cache instead of unpickling it per chunk —
        callers memoize the ref per fitted model, so the variogram is
        pickled once per (re)fit rather than once per flush.  Purely a
        dispatch-overhead knob: the resolved model is the same object
        either way, so results are bit-identical.
    stacking:
        Route groups through :func:`solve_groups_stacked`: same-size
        systems are factorized as one batched LAPACK call per bin.  Bins
        are computed before dispatch, so the setting is bit-identical
        across ``n_jobs`` and backends.
    phases:
        Optional :class:`SolvePhases` accumulator; process workers return
        their per-chunk totals and the parent merges them here.

    Returns
    -------
    list[list[KrigingResult]]
        Per-group result lists, in group order.
    """
    backend = resolve_backend(backend)
    if factors is not None and backend == "process":
        raise ValueError("cached factors cannot be reused on the process backend")
    if factors is not None and len(factors) != len(groups):
        raise ValueError(
            f"factors length {len(factors)} != groups length {len(groups)}"
        )
    workers = min(resolve_n_jobs(n_jobs), len(groups))

    def solve(index: int, group: KrigingGroup) -> list[KrigingResult]:
        points, values, queries = group
        return ordinary_kriging_batch(
            points,
            values,
            queries,
            variogram,
            metric=metric,
            factor=factors[index] if factors is not None else None,
            phases=phases,
        )

    if workers <= 1 or len(groups) <= 1:
        if stacking:
            return solve_groups_stacked(
                groups, variogram, metric=metric, factors=factors, phases=phases
            )
        return [solve(index, group) for index, group in enumerate(groups)]

    if stacking:
        # One task per same-size bin: the bin *is* the batched-solve unit,
        # and shipping it whole keeps stacked arithmetic independent of the
        # worker count.
        bins = _size_bins([np.shape(g[0])[0] for g in groups])
        if backend == "process":
            chunks = [[_contiguous_group(groups[j]) for j in b] for b in bins]
            if model_ref is not None:
                key, blob = model_ref
                task = partial(
                    _solve_group_chunk_ref,
                    model_key=key,
                    blob=blob,
                    metric=metric,
                    stacking=True,
                )
            else:
                task = partial(
                    _solve_group_chunk,
                    variogram=variogram,
                    metric=metric,
                    stacking=True,
                )

            def run_process_stacked(pool: Executor) -> list[list[KrigingResult]]:
                parts = []
                for results_part, totals in pool.map(task, chunks):
                    if phases is not None:
                        phases.merge(totals)
                    parts.append(results_part)
                return _scatter(bins, parts, len(groups))

            if executor is not None:
                return run_process_stacked(executor)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return run_process_stacked(pool)

        def run_bin(bin_indices: list[int]) -> list[list[KrigingResult]]:
            return solve_groups_stacked(
                [groups[j] for j in bin_indices],
                variogram,
                metric=metric,
                factors=(
                    [factors[j] for j in bin_indices]
                    if factors is not None
                    else None
                ),
                phases=phases,
            )

        def run_thread_stacked(pool: Executor) -> list[list[KrigingResult]]:
            return _scatter(bins, list(pool.map(run_bin, bins)), len(groups))

        if executor is not None:
            return run_thread_stacked(executor)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return run_thread_stacked(pool)

    # Chunk so each task amortizes pool dispatch over several (often tiny)
    # solves; map() preserves submission order.
    chunk = max(1, (len(groups) + 4 * workers - 1) // (4 * workers))
    starts = range(0, len(groups), chunk)

    if backend == "process":
        chunks = [
            [_contiguous_group(g) for g in groups[i : i + chunk]] for i in starts
        ]
        if model_ref is not None:
            key, blob = model_ref
            task = partial(
                _solve_group_chunk_ref, model_key=key, blob=blob, metric=metric
            )
        else:
            task = partial(_solve_group_chunk, variogram=variogram, metric=metric)

        def run_process(pool: Executor) -> list[list[KrigingResult]]:
            out: list[list[KrigingResult]] = []
            for results_part, totals in pool.map(task, chunks):
                if phases is not None:
                    phases.merge(totals)
                out.extend(results_part)
            return out

        if executor is not None:
            return run_process(executor)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return run_process(pool)

    indexed = [
        [(j, groups[j]) for j in range(i, min(i + chunk, len(groups)))] for i in starts
    ]

    def run(pool: Executor) -> list[list[KrigingResult]]:
        solved = pool.map(lambda part: [solve(j, g) for j, g in part], indexed)
        return [results for part in solved for results in part]

    if executor is not None:
        return run(executor)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return run(pool)


def ordinary_kriging_grouped_shm(
    arena: ShmArena,
    points: np.ndarray,
    values: np.ndarray,
    supports: Sequence[np.ndarray],
    queries_list: Sequence[np.ndarray],
    variogram: Variogram,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    n_jobs: int | None = 1,
    executor: Executor | None = None,
    model_ref: tuple[int, bytes] | None = None,
    stacking: bool = False,
    phases: SolvePhases | None = None,
) -> list[list[KrigingResult]]:
    """Grouped solve over the shared-memory process path.

    The groups are given *by reference*: ``supports[i]`` holds row indices
    into the published cache arrays (``points``/``values``) and
    ``queries_list[i]`` the group's query coordinates.  The arena publishes
    the cache mirror incrementally plus one flush segment of concatenated
    rows/queries; workers attach and gather locally, so the per-task pickle
    payload is a handful of offsets per group instead of the group arrays.

    Results are bit-identical to the pickled process path (and therefore to
    thread/serial): workers rebuild exactly the ``points[rows]`` gathers the
    parent would have shipped.  Raises
    :class:`~repro.core.shm.ShmAttachError` when a worker cannot map a
    segment — the estimator catches it, disables shm for its lifetime and
    retries the flush over the pickled path.

    With one worker (or one group) no segment is touched: the call
    materializes the groups and delegates to the serial path.
    """
    if len(supports) != len(queries_list):
        raise ValueError(
            f"supports length {len(supports)} != queries length {len(queries_list)}"
        )
    workers = min(resolve_n_jobs(n_jobs), len(supports))
    if workers <= 1 or len(supports) <= 1:
        groups = [
            (points[rows], values[rows], queries)
            for rows, queries in zip(supports, queries_list)
        ]
        return ordinary_kriging_grouped(
            groups,
            variogram,
            metric=metric,
            n_jobs=1,
            stacking=stacking,
            phases=phases,
        )

    rows_concat = np.concatenate([np.asarray(s, dtype=np.int64) for s in supports])
    queries_concat = np.vstack(queries_list)
    cache_spec = arena.publish_cache(points, values)
    flush_spec = arena.publish_flush(rows_concat, queries_concat)

    descs: list[ShmGroupDesc] = []
    rows_off = 0
    q_off = 0
    for rows, queries in zip(supports, queries_list):
        descs.append((rows_off, len(rows), q_off, len(queries)))
        rows_off += len(rows)
        q_off += len(queries)

    if stacking:
        bins = _size_bins([len(rows) for rows in supports])
    else:
        chunk = max(1, (len(descs) + 4 * workers - 1) // (4 * workers))
        bins = [
            list(range(i, min(i + chunk, len(descs))))
            for i in range(0, len(descs), chunk)
        ]
    chunks = [[descs[j] for j in b] for b in bins]

    kwargs: dict = {
        "cache": cache_spec,
        "flush": flush_spec,
        "metric": metric,
        "stacking": stacking,
    }
    if model_ref is not None:
        kwargs["model_key"], kwargs["blob"] = model_ref
    else:
        kwargs["variogram"] = variogram
    task = partial(_solve_group_chunk_shm, **kwargs)

    def run_shm(pool: Executor) -> list[list[KrigingResult]]:
        parts = []
        for results_part, totals in pool.map(task, chunks):
            if phases is not None:
                phases.merge(totals)
            parts.append(results_part)
        return _scatter(bins, parts, len(descs))

    if executor is not None:
        return run_shm(executor)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return run_shm(pool)


def simple_kriging(
    points: np.ndarray,
    values: np.ndarray,
    query: np.ndarray,
    variogram: Variogram,
    *,
    mean: float,
    sill: float,
    metric: DistanceMetric | str = DistanceMetric.L1,
) -> KrigingResult:
    """Simple-kriging estimate with known ``mean`` and ``sill``.

    The covariance is derived from the variogram as ``C(h) = sill -
    gamma(h)``; the estimate is ``mean + weights . (values - mean)``.
    """
    pts, vals, q = _validate(points, values, query)
    if sill <= 0:
        raise ValueError(f"sill must be > 0, got {sill}")
    hit = _exact_hit(pts, vals, q)
    if hit is not None:
        return hit

    gamma_matrix = np.asarray(variogram(pairwise_distances(pts, metric)), dtype=np.float64)
    np.fill_diagonal(gamma_matrix, 0.0)
    gamma_query = np.asarray(variogram(distances_to(pts, q, metric)), dtype=np.float64)

    cov_matrix = sill - gamma_matrix
    cov_query = sill - gamma_query
    weights = _solve(cov_matrix, cov_query)
    estimate = float(mean + weights @ (vals - mean))
    variance = float(sill - weights @ cov_query)
    return KrigingResult(
        estimate=estimate,
        variance=max(variance, 0.0),
        weights=weights,
        lagrange=0.0,
    )
