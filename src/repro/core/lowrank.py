"""Low-rank Cholesky maintenance: rank-1 up/downdates, row append/delete.

The factorization-reuse layer (:mod:`repro.core.factor_cache`) keeps Cholesky
factors of shifted Gamma matrices alive across batch flushes.  Optimizer-style
workloads grow the support cache one point at a time, so consecutive support
sets differ by a handful of rows; instead of re-running the O(n^3)
factorization, the cached factor is *edited*:

* :func:`chol_append` — extend ``L`` for a matrix bordered by one new
  row/column (one triangular solve, O(n^2));
* :func:`chol_delete` — remove row/column ``k`` (a rank-1 update of the
  trailing block, O((n-k)^2));
* :func:`cholupdate` / :func:`choldowndate` — the classical rank-1
  ``A +- x xT`` edits the delete path is built on.

Everything here is pure NumPy; SciPy's ``solve_triangular`` is used for the
forward/backward substitutions when available (it is not a declared
dependency) with a divide-and-conquer NumPy fallback, so the module works on
the package's minimal install.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised via the public wrappers either way
    from scipy.linalg import solve_triangular as _scipy_solve_triangular
except ImportError:  # pragma: no cover
    _scipy_solve_triangular = None

__all__ = [
    "cholupdate",
    "choldowndate",
    "chol_append",
    "chol_delete",
    "solve_lower",
    "solve_lower_transpose",
]

#: Base-case size of the fallback substitution: blocks at or below this are
#: handed to LAPACK ``gesv`` whole (an LU of an already-triangular matrix is
#: cheap and exact-pivot stable), so a solve costs O(n / block) Python-level
#: calls instead of one per row.
_BLOCK = 96


def _recursive_solve_lower(chol: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Forward substitution ``L x = b`` without SciPy, divide and conquer."""
    n = chol.shape[0]
    if n <= _BLOCK:
        return np.linalg.solve(chol, rhs)
    half = n // 2
    top = _recursive_solve_lower(chol[:half, :half], rhs[:half])
    bottom = _recursive_solve_lower(
        chol[half:, half:], rhs[half:] - chol[half:, :half] @ top
    )
    return np.concatenate([top, bottom])


def _recursive_solve_lower_transpose(chol: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Backward substitution ``L^T x = b`` without SciPy, divide and conquer."""
    n = chol.shape[0]
    if n <= _BLOCK:
        return np.linalg.solve(chol.T, rhs)
    half = n // 2
    bottom = _recursive_solve_lower_transpose(chol[half:, half:], rhs[half:])
    top = _recursive_solve_lower_transpose(
        chol[:half, :half], rhs[:half] - chol[half:, :half].T @ bottom
    )
    return np.concatenate([top, bottom])


def solve_lower(chol: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` (vector or matrix rhs)."""
    if _scipy_solve_triangular is not None:
        return _scipy_solve_triangular(chol, rhs, lower=True, check_finite=False)
    return _recursive_solve_lower(chol, np.asarray(rhs, dtype=np.float64))


def solve_lower_transpose(chol: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` for lower-triangular ``L`` (vector or matrix rhs)."""
    if _scipy_solve_triangular is not None:
        return _scipy_solve_triangular(
            chol, rhs, lower=True, trans="T", check_finite=False
        )
    return _recursive_solve_lower_transpose(chol, np.asarray(rhs, dtype=np.float64))


def cholupdate(chol: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Rank-1 update: the Cholesky factor of ``L L^T + x x^T``.

    The classical Givens sweep (LINPACK ``dchud``): O(n^2), never fails for a
    genuine update.  ``chol`` is not modified; a new factor is returned.
    """
    out = np.array(chol, dtype=np.float64)
    x = np.array(vector, dtype=np.float64)
    n = out.shape[0]
    if x.shape != (n,):
        raise ValueError(f"update vector shape {x.shape} incompatible with ({n}, {n})")
    for k in range(n):
        lkk = out[k, k]
        r = math.hypot(lkk, x[k])
        c = r / lkk
        s = x[k] / lkk
        out[k, k] = r
        if k + 1 < n:
            column = out[k + 1 :, k]
            column += s * x[k + 1 :]
            column /= c
            x[k + 1 :] = c * x[k + 1 :] - s * column
    return out


def choldowndate(chol: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Rank-1 downdate: the Cholesky factor of ``L L^T - x x^T``.

    Raises :class:`numpy.linalg.LinAlgError` when the downdated matrix is not
    positive definite (the caller falls back to a fresh factorization).
    """
    out = np.array(chol, dtype=np.float64)
    x = np.array(vector, dtype=np.float64)
    n = out.shape[0]
    if x.shape != (n,):
        raise ValueError(f"downdate vector shape {x.shape} incompatible with ({n}, {n})")
    for k in range(n):
        lkk = out[k, k]
        r_sq = (lkk - x[k]) * (lkk + x[k])
        if r_sq <= 0.0 or not math.isfinite(r_sq):
            raise np.linalg.LinAlgError(
                f"downdate leaves the matrix indefinite at pivot {k}"
            )
        r = math.sqrt(r_sq)
        c = r / lkk
        s = x[k] / lkk
        out[k, k] = r
        if k + 1 < n:
            column = out[k + 1 :, k]
            column -= s * x[k + 1 :]
            column /= c
            x[k + 1 :] = c * x[k + 1 :] - s * column
    return out


def chol_append(chol: np.ndarray, cross: np.ndarray, diagonal: float) -> np.ndarray:
    """Extend ``L`` for the matrix bordered by one new row/column.

    Given ``L L^T = A`` returns the factor of ``[[A, b], [b^T, d]]`` where
    ``b`` is ``cross`` and ``d`` is ``diagonal`` — one forward substitution
    plus a scalar square root.  Raises :class:`numpy.linalg.LinAlgError` when
    the bordered matrix is not positive definite.
    """
    n = chol.shape[0]
    b = np.asarray(cross, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"cross vector shape {b.shape} incompatible with ({n}, {n})")
    row = solve_lower(chol, b) if n else np.empty(0)
    pivot_sq = float(diagonal) - float(row @ row)
    if pivot_sq <= 0.0 or not math.isfinite(pivot_sq):
        raise np.linalg.LinAlgError("appended row leaves the matrix indefinite")
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = chol
    out[n, :n] = row
    out[n, n] = math.sqrt(pivot_sq)
    return out


def chol_delete(chol: np.ndarray, index: int) -> np.ndarray:
    """Remove row/column ``index`` from the factored matrix.

    The leading block is untouched; the trailing block absorbs the removed
    column through one rank-1 update (O((n - index)^2)).
    """
    n = chol.shape[0]
    if not 0 <= index < n:
        raise IndexError(f"index {index} out of range for a {n}x{n} factor")
    out = np.zeros((n - 1, n - 1))
    out[:index, :index] = chol[:index, :index]
    out[index:, :index] = chol[index + 1 :, :index]
    if index < n - 1:
        out[index:, index:] = cholupdate(
            chol[index + 1 :, index + 1 :], chol[index + 1 :, index]
        )
    return out
