"""Parametric semi-variogram models.

After computing the empirical semi-variogram, the paper "identifies" it to a
particular model type (Section III-A, citing Wackernagel's geostatistics
text).  These are the classical bounded and unbounded models; all are valid
(conditionally negative-definite) variograms, which guarantees the kriging
system has a meaningful solution.

Every model maps a lag array ``h >= 0`` to ``gamma(h)`` with ``gamma(0) = 0``
(the nugget, when present, is a discontinuity at ``0+``).
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass

import numpy as np

__all__ = [
    "VariogramModel",
    "LinearVariogram",
    "SphericalVariogram",
    "ExponentialVariogram",
    "GaussianVariogram",
    "PowerVariogram",
    "NuggetVariogram",
    "variogram_from_state",
]


def _lags(h: np.ndarray | float) -> np.ndarray:
    arr = np.asarray(h, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("lags must be non-negative")
    return arr


class VariogramModel(abc.ABC):
    """Base class: a callable ``gamma(h)`` with named parameters."""

    @abc.abstractmethod
    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        """Model value for strictly positive lags (no origin handling)."""

    def __call__(self, h: np.ndarray | float) -> np.ndarray | float:
        arr = _lags(h)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr)
        out = np.where(arr == 0.0, 0.0, self._gamma_positive(arr))
        return float(out[0]) if scalar else out

    @property
    def nugget(self) -> float:
        """Discontinuity at the origin (0 unless the model defines one)."""
        return 0.0

    def to_state(self) -> dict:
        """JSON-safe state: model family plus its dataclass parameters.

        Every concrete model is a frozen dataclass of plain floats, so the
        state round-trips bitwise through JSON (``repr``-based float
        serialization is exact).  Restore with :func:`variogram_from_state`.
        """
        return {
            "family": type(self).__name__,
            "params": {
                f.name: float(getattr(self, f.name))
                for f in dataclasses.fields(self)  # type: ignore[arg-type]
            },
        }


@dataclass(frozen=True)
class LinearVariogram(VariogramModel):
    """``gamma(h) = slope * h`` — the scale-free default prior.

    Ordinary-kriging weights are invariant to a multiplicative rescaling of
    the variogram, so the slope only matters for the kriging *variance*, not
    for the interpolated value.  This makes the linear model a robust choice
    before enough simulations exist to identify a richer model.
    """

    slope: float = 1.0

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError(f"slope must be > 0, got {self.slope}")

    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        return self.slope * h


@dataclass(frozen=True)
class SphericalVariogram(VariogramModel):
    """Bounded model reaching ``sill`` exactly at ``range_``."""

    sill: float
    range_: float
    nugget_: float = 0.0

    def __post_init__(self) -> None:
        if self.sill <= 0:
            raise ValueError(f"sill must be > 0, got {self.sill}")
        if self.range_ <= 0:
            raise ValueError(f"range_ must be > 0, got {self.range_}")
        if self.nugget_ < 0:
            raise ValueError(f"nugget must be >= 0, got {self.nugget_}")

    @property
    def nugget(self) -> float:
        return self.nugget_

    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        r = h / self.range_
        inside = self.nugget_ + self.sill * (1.5 * r - 0.5 * r**3)
        return np.where(h >= self.range_, self.nugget_ + self.sill, inside)


@dataclass(frozen=True)
class ExponentialVariogram(VariogramModel):
    """``gamma(h) = nugget + sill (1 - exp(-3h / range))`` (practical range)."""

    sill: float
    range_: float
    nugget_: float = 0.0

    def __post_init__(self) -> None:
        if self.sill <= 0:
            raise ValueError(f"sill must be > 0, got {self.sill}")
        if self.range_ <= 0:
            raise ValueError(f"range_ must be > 0, got {self.range_}")
        if self.nugget_ < 0:
            raise ValueError(f"nugget must be >= 0, got {self.nugget_}")

    @property
    def nugget(self) -> float:
        return self.nugget_

    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        return self.nugget_ + self.sill * (1.0 - np.exp(-3.0 * h / self.range_))


@dataclass(frozen=True)
class GaussianVariogram(VariogramModel):
    """``gamma(h) = nugget + sill (1 - exp(-3h^2 / range^2))`` — very smooth fields."""

    sill: float
    range_: float
    nugget_: float = 0.0

    def __post_init__(self) -> None:
        if self.sill <= 0:
            raise ValueError(f"sill must be > 0, got {self.sill}")
        if self.range_ <= 0:
            raise ValueError(f"range_ must be > 0, got {self.range_}")
        if self.nugget_ < 0:
            raise ValueError(f"nugget must be >= 0, got {self.nugget_}")

    @property
    def nugget(self) -> float:
        return self.nugget_

    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        return self.nugget_ + self.sill * (1.0 - np.exp(-3.0 * (h / self.range_) ** 2))


@dataclass(frozen=True)
class PowerVariogram(VariogramModel):
    """``gamma(h) = scale * h^exponent`` with ``0 < exponent < 2`` (unbounded)."""

    scale: float = 1.0
    exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if not 0.0 < self.exponent < 2.0:
            raise ValueError(f"exponent must be in (0, 2), got {self.exponent}")

    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        return self.scale * h**self.exponent


@dataclass(frozen=True)
class NuggetVariogram(VariogramModel):
    """Pure-nugget model: spatially uncorrelated field (kriging = local mean)."""

    nugget_: float = 1.0

    def __post_init__(self) -> None:
        if self.nugget_ <= 0:
            raise ValueError(f"nugget must be > 0, got {self.nugget_}")

    @property
    def nugget(self) -> float:
        return self.nugget_

    def _gamma_positive(self, h: np.ndarray) -> np.ndarray:
        return np.full_like(h, self.nugget_)


_MODEL_FAMILIES: dict[str, type[VariogramModel]] = {
    cls.__name__: cls
    for cls in (
        LinearVariogram,
        SphericalVariogram,
        ExponentialVariogram,
        GaussianVariogram,
        PowerVariogram,
        NuggetVariogram,
    )
}


def variogram_from_state(state: dict) -> VariogramModel:
    """Rebuild a model from :meth:`VariogramModel.to_state` output.

    The inverse hook the snapshot/restore layer uses: parameters pass back
    through the dataclass constructor, so a restored model validates its
    invariants and evaluates bitwise-identically to the snapshotted one.
    """
    try:
        family = state["family"]
        params = state["params"]
    except (TypeError, KeyError) as exc:
        raise ValueError(f"malformed variogram state {state!r}") from exc
    cls = _MODEL_FAMILIES.get(family)
    if cls is None:
        raise ValueError(
            f"unknown variogram family {family!r}; expected one of "
            f"{sorted(_MODEL_FAMILIES)}"
        )
    return cls(**{name: float(value) for name, value in params.items()})
