"""Support-point search for the interpolate-or-simulate policy.

Algorithms 1-2 keep the already-simulated configurations within L1 distance
``d`` of the configuration being evaluated (lines 7-16 of both listings).
The seed scanned every point per query; :func:`find_neighbors` now
optionally routes through a :class:`~repro.core.index.NeighborIndex`, which
generates a *candidate superset* so the exact distance test touches only a
few points.  The result is identical either way — the index only prunes.
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import DistanceMetric, distances_to
from repro.core.index import NeighborIndex

__all__ = ["find_neighbors"]


def find_neighbors(
    points: np.ndarray,
    query: np.ndarray,
    max_distance: float,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    max_neighbors: int | None = None,
    index: NeighborIndex | None = None,
) -> np.ndarray:
    """Indices of ``points`` within ``max_distance`` of ``query``.

    Parameters
    ----------
    points:
        ``(n, Nv)`` candidate support configurations (may be empty).
    query:
        Configuration being evaluated.
    max_distance:
        The paper's parameter ``d``: neighbours satisfy ``dist <= d``.
    metric:
        Distance metric (paper: L1).
    max_neighbors:
        Optional cap; when set, the *closest* ``max_neighbors`` are returned.
    index:
        Optional :class:`~repro.core.index.NeighborIndex` covering exactly
        the rows of ``points``; when given, only the index's candidates are
        distance-tested instead of every row.

    Returns
    -------
    numpy.ndarray
        Indices into ``points``, ordered by increasing distance (ties keep
        insertion order, i.e. simulation order).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.size == 0:
        return np.empty(0, dtype=np.int64)
    if max_distance < 0:
        raise ValueError(f"max_distance must be >= 0, got {max_distance}")
    if max_neighbors is not None and max_neighbors < 1:
        raise ValueError(f"max_neighbors must be >= 1, got {max_neighbors}")
    q = np.asarray(query, dtype=np.float64)

    if index is not None and len(index) != pts.shape[0]:
        raise ValueError(
            f"index covers {len(index)} rows but points has {pts.shape[0]}; "
            "cache and index must grow in lockstep"
        )
    candidates = index.candidates(q, max_distance) if index is not None else None
    if candidates is not None and candidates.size == 0:
        return np.empty(0, dtype=np.int64)
    if candidates is not None and candidates.size < pts.shape[0]:
        dist = distances_to(pts[candidates], q, metric)
        inside = np.flatnonzero(dist <= max_distance)
        order = np.argsort(dist[inside], kind="stable")
        neighbors = candidates[inside[order]]
    else:
        # No pruning (no index, or candidates cover every row — e.g. the
        # brute-force fallback): scan the view directly, skipping the
        # O(n * Nv) gather copy a full fancy-index would cost.
        dist = distances_to(pts, q, metric)
        inside = np.flatnonzero(dist <= max_distance)
        order = np.argsort(dist[inside], kind="stable")
        neighbors = inside[order]

    if max_neighbors is not None:
        neighbors = neighbors[:max_neighbors]
    return neighbors.astype(np.int64)
