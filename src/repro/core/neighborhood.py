"""Support-point search for the interpolate-or-simulate policy.

Algorithms 1-2 scan the already-simulated configurations and keep those
within L1 distance ``d`` of the configuration being evaluated (lines 7-16 of
both listings).
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import DistanceMetric, distances_to

__all__ = ["find_neighbors"]


def find_neighbors(
    points: np.ndarray,
    query: np.ndarray,
    max_distance: float,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    max_neighbors: int | None = None,
) -> np.ndarray:
    """Indices of ``points`` within ``max_distance`` of ``query``.

    Parameters
    ----------
    points:
        ``(n, Nv)`` candidate support configurations (may be empty).
    query:
        Configuration being evaluated.
    max_distance:
        The paper's parameter ``d``: neighbours satisfy ``dist <= d``.
    metric:
        Distance metric (paper: L1).
    max_neighbors:
        Optional cap; when set, the *closest* ``max_neighbors`` are returned.

    Returns
    -------
    numpy.ndarray
        Indices into ``points``, ordered by increasing distance (ties keep
        insertion order, i.e. simulation order).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.size == 0:
        return np.empty(0, dtype=np.int64)
    if max_distance < 0:
        raise ValueError(f"max_distance must be >= 0, got {max_distance}")
    dist = distances_to(pts, np.asarray(query, dtype=np.float64), metric)
    inside = np.flatnonzero(dist <= max_distance)
    order = np.argsort(dist[inside], kind="stable")
    neighbors = inside[order]
    if max_neighbors is not None:
        if max_neighbors < 1:
            raise ValueError(f"max_neighbors must be >= 1, got {max_neighbors}")
        neighbors = neighbors[:max_neighbors]
    return neighbors.astype(np.int64)
