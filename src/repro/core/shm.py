"""Shared-memory arena for the zero-copy process solve path.

``backend="process"`` historically shipped every flush's group arrays to the
``ProcessPoolExecutor`` as contiguous pickles — one serialized copy of the
support rows *per group per flush*, even though every support row lives in
the estimator's :class:`~repro.core.cache.SimulationCache` and the cache is
append-only.  :class:`ShmArena` removes that tax: the cache's coordinate and
value arrays are published **once** into a ``multiprocessing.shared_memory``
segment (only newly appended rows are copied on later flushes), and each
flush publishes just the concatenated support *row indices* and query
coordinates.  Workers attach by segment name, build zero-copy views, and
gather their support slices locally — the per-task payload shrinks to a few
integers per group.

Layout
------
*Cache segment* (rebuilt only when the cache outgrows its capacity):
``float64 points (capacity, dim)`` followed by ``float64 values (capacity,)``.
Rows never move (the cache is append-only), so a regrow is the only event
that invalidates worker views — it allocates a *new* segment under a new
name and bumps the arena generation, which is the invalidation key for the
worker-side attach memo (mirroring the fit-generation key of the pickled
model refs in :mod:`repro.core.kriging`).

*Flush segment* (overwritten in place every flush, regrown geometrically):
``int64 rows (row_capacity,)`` followed by
``float64 queries (query_capacity, dim)``.  Grouped solves are synchronous —
the parent blocks on the pool ``map`` — so a segment is never overwritten
while a worker still reads it.

Cleanup
-------
Segments are unlinked from :meth:`ShmArena.close`, which the estimator calls
from :meth:`~repro.core.estimator.KrigingEstimator.close`, ``__del__`` and
its atexit hook — nothing leaks past the parent's lifetime.  Workers
``close()`` (but never unlink) the mappings they evict from the attach memo.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

logger = logging.getLogger("repro.core.shm")

try:  # pragma: no cover - exercised only where the module is missing
    from multiprocessing.shared_memory import SharedMemory
except ImportError:  # pragma: no cover
    SharedMemory = None  # type: ignore[assignment]

__all__ = [
    "CacheSpec",
    "FlushSpec",
    "ShmArena",
    "ShmAttachError",
    "attach_cache",
    "attach_flush",
    "shm_available",
]

_FLOAT = np.dtype(np.float64)
_INT = np.dtype(np.int64)


class ShmAttachError(RuntimeError):
    """A worker could not map a published segment.

    Raised worker-side (picklable: plain message) and caught by the
    estimator, which disables the shm path for the estimator's lifetime and
    re-dispatches the flush through the pickled path — a structured
    degradation, never a wedged flush.
    """


@dataclass(frozen=True)
class CacheSpec:
    """Addressing info for the published simulation-cache segment."""

    name: str
    generation: int
    rows: int
    dim: int
    capacity: int


@dataclass(frozen=True)
class FlushSpec:
    """Addressing info for the per-flush rows/queries segment."""

    name: str
    generation: int
    n_rows: int
    n_queries: int
    dim: int
    row_capacity: int


def _probe() -> bool:
    if SharedMemory is None:
        return False
    try:
        seg = SharedMemory(create=True, size=16)
    except Exception:
        return False
    try:
        twin = SharedMemory(name=seg.name)
        twin.close()
        return True
    except Exception:
        return False
    finally:
        try:
            seg.close()
            seg.unlink()
        except Exception:  # pragma: no cover - cleanup best-effort
            pass


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether shared-memory segments can be created *and* re-attached here.

    Probed once per process (create + self-attach round-trip); platforms
    without ``multiprocessing.shared_memory`` or with a sealed ``/dev/shm``
    report ``False`` and the estimator silently keeps the pickled path.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        _AVAILABLE = _probe()
    return _AVAILABLE


def _round_capacity(needed: int, floor: int = 64) -> int:
    capacity = max(int(floor), 1)
    while capacity < needed:
        capacity *= 2
    return capacity


class ShmArena:
    """Parent-side owner of the cache and flush segments (one per estimator)."""

    def __init__(self) -> None:
        self._generation = 0
        self._cache_seg: "SharedMemory | None" = None
        self._cache_capacity = 0
        self._cache_dim = -1
        self._cache_published = 0
        self._cache_generation = 0
        self._flush_seg: "SharedMemory | None" = None
        self._flush_row_capacity = 0
        self._flush_query_capacity = 0
        self._flush_dim = -1
        self._flush_generation = 0
        self._closed = False

    # -- cache ---------------------------------------------------------
    def publish_cache(self, points: np.ndarray, values: np.ndarray) -> CacheSpec:
        """Mirror the simulation cache into shared memory, incrementally.

        Only rows appended since the previous call are copied; a capacity or
        dimension change allocates a fresh segment (new name + generation)
        and unlinks the old one — safe mid-stream because solves are
        synchronous and worker memos close stale mappings as they evict.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        points = np.ascontiguousarray(points, dtype=np.float64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        n, dim = points.shape
        if self._cache_seg is None or self._cache_capacity < n or self._cache_dim != dim:
            capacity = _round_capacity(n)
            size = capacity * dim * _FLOAT.itemsize + capacity * _FLOAT.itemsize
            seg = SharedMemory(create=True, size=max(size, 16))
            self._release(self._cache_seg)
            self._cache_seg = seg
            self._cache_capacity = capacity
            self._cache_dim = dim
            self._cache_published = 0
            self._generation += 1
            self._cache_generation = self._generation
        seg = self._cache_seg
        capacity = self._cache_capacity
        pts_view = np.ndarray((capacity, dim), dtype=np.float64, buffer=seg.buf)
        vals_view = np.ndarray(
            (capacity,),
            dtype=np.float64,
            buffer=seg.buf,
            offset=capacity * dim * _FLOAT.itemsize,
        )
        start = min(self._cache_published, n)
        if start < n:
            pts_view[start:n] = points[start:n]
            vals_view[start:n] = values[start:n]
        self._cache_published = n
        return CacheSpec(
            name=seg.name,
            generation=self._cache_generation,
            rows=n,
            dim=dim,
            capacity=capacity,
        )

    # -- flush ---------------------------------------------------------
    def publish_flush(self, rows: np.ndarray, queries: np.ndarray) -> FlushSpec:
        """Publish one flush's concatenated support rows and query points."""
        if self._closed:
            raise RuntimeError("arena is closed")
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        n_rows = rows.shape[0]
        n_queries, dim = queries.shape
        if (
            self._flush_seg is None
            or self._flush_row_capacity < n_rows
            or self._flush_query_capacity < n_queries
            or self._flush_dim != dim
        ):
            row_capacity = _round_capacity(max(n_rows, self._flush_row_capacity))
            query_capacity = _round_capacity(
                max(n_queries, self._flush_query_capacity)
            )
            size = (
                row_capacity * _INT.itemsize
                + query_capacity * dim * _FLOAT.itemsize
            )
            seg = SharedMemory(create=True, size=max(size, 16))
            self._release(self._flush_seg)
            self._flush_seg = seg
            self._flush_row_capacity = row_capacity
            self._flush_query_capacity = query_capacity
            self._flush_dim = dim
            self._generation += 1
            self._flush_generation = self._generation
        seg = self._flush_seg
        rows_view = np.ndarray(
            (self._flush_row_capacity,), dtype=np.int64, buffer=seg.buf
        )
        queries_view = np.ndarray(
            (self._flush_query_capacity, dim),
            dtype=np.float64,
            buffer=seg.buf,
            offset=self._flush_row_capacity * _INT.itemsize,
        )
        rows_view[:n_rows] = rows
        queries_view[:n_queries] = queries
        return FlushSpec(
            name=seg.name,
            generation=self._flush_generation,
            n_rows=n_rows,
            n_queries=n_queries,
            dim=dim,
            row_capacity=self._flush_row_capacity,
        )

    # -- lifecycle -----------------------------------------------------
    @staticmethod
    def _release(seg: "SharedMemory | None") -> None:
        if seg is None:
            return
        try:
            seg.close()
        except Exception:  # pragma: no cover - cleanup best-effort
            pass
        try:
            seg.unlink()
        except Exception:  # pragma: no cover - already unlinked / gone
            pass

    def close(self) -> None:
        """Unlink every segment this arena owns (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._release(self._cache_seg)
        self._release(self._flush_seg)
        self._cache_seg = None
        self._flush_seg = None

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass


# ---------------------------------------------------------------------------
# Worker-side attach memo
# ---------------------------------------------------------------------------
#: Mapped segments keyed by ``(name, generation)``.  Names are unique per
#: segment allocation, so a regrown cache (new generation) can never serve a
#: stale mapping; bounded like the model-ref memo so pools shared between
#: estimators stay small.
_ATTACHED: "OrderedDict[tuple[str, int], SharedMemory]" = OrderedDict()
_ATTACH_LIMIT = 8

#: Whether this process runs its *own* resource tracker (None: not yet
#: decided).  Decided once, at the first attach: if no tracker fd is live
#: by then, every tracker this process talks to is its own.
_TRACKER_OWN: bool | None = None


def _attach(name: str, generation: int) -> "SharedMemory":
    key = (name, generation)
    seg = _ATTACHED.get(key)
    if seg is not None:
        _ATTACHED.move_to_end(key)
        return seg
    if SharedMemory is None:
        raise ShmAttachError("multiprocessing.shared_memory is unavailable")
    # Attaching re-registers the segment with the resource tracker.  In a
    # worker running its *own* tracker (spawned, or forked before the
    # parent's tracker started) that registration makes the worker's exit
    # unlink a segment the parent still owns (bpo-39959) — undo it.  In a
    # fork-inherited tracker shared with the parent the re-registration is
    # a set no-op, and unregistering would strip the parent's crash-cleanup
    # entry (and spam KeyErrors when the parent later unlinks) — leave it.
    # Ownership is decided once, before this process's first attach starts
    # a tracker of its own.
    global _TRACKER_OWN
    resource_tracker = None
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        if _TRACKER_OWN is None:
            _TRACKER_OWN = (
                getattr(resource_tracker._resource_tracker, "_fd", None) is None
            )
    except Exception:
        pass
    try:
        seg = SharedMemory(name=name)
    except Exception as exc:
        # Logged here (in the worker) as well as raised: the parent only
        # sees the ShmAttachError it falls back on, while the worker-side
        # log carries the segment name and generation that failed.
        logger.warning(
            "cannot attach shared segment; caller will fall back to "
            "pickled dispatch",
            extra={"segment": name, "generation": generation, "reason": repr(exc)},
        )
        raise ShmAttachError(f"cannot attach shared segment {name!r}: {exc}") from None
    if _TRACKER_OWN and resource_tracker is not None:
        try:  # pragma: no cover - best-effort; failure only risks an unlink
            resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    _ATTACHED[key] = seg
    while len(_ATTACHED) > _ATTACH_LIMIT:
        _, stale = _ATTACHED.popitem(last=False)
        try:
            stale.close()
        except Exception:  # pragma: no cover - cleanup best-effort
            pass
    return seg


def attach_cache(spec: CacheSpec) -> tuple[np.ndarray, np.ndarray]:
    """Worker-side zero-copy views of the published cache arrays."""
    seg = _attach(spec.name, spec.generation)
    points = np.ndarray((spec.rows, spec.dim), dtype=np.float64, buffer=seg.buf)
    values = np.ndarray(
        (spec.rows,),
        dtype=np.float64,
        buffer=seg.buf,
        offset=spec.capacity * spec.dim * _FLOAT.itemsize,
    )
    return points, values


def attach_flush(spec: FlushSpec) -> tuple[np.ndarray, np.ndarray]:
    """Worker-side zero-copy views of a flush's rows and queries."""
    seg = _attach(spec.name, spec.generation)
    rows = np.ndarray((spec.n_rows,), dtype=np.int64, buffer=seg.buf)
    queries = np.ndarray(
        (spec.n_queries, spec.dim),
        dtype=np.float64,
        buffer=seg.buf,
        offset=spec.row_capacity * _INT.itemsize,
    )
    return rows, queries
