"""Universal kriging (kriging with a polynomial drift).

Ordinary kriging assumes a locally constant mean; on strongly trending
fields — precisely what a noise-power-vs-word-length surface is, with its
~6 dB/bit slope — queries outside the support hull regress to the nearest
value instead of following the trend (see the E10 ablation).  Universal
kriging generalizes the unbiasedness constraint to a set of drift basis
functions: with the linear basis ``{1, x_1, ..., x_Nv}`` the estimator
reproduces any affine trend exactly.

This module is an extension over the paper (which uses the ordinary-kriging
system of Eqs. 7-10); benchmark E12 quantifies what it buys on the recorded
trajectories.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.distances import DistanceMetric, distances_to, pairwise_distances
from repro.core.kriging import KrigingResult, _exact_hit, _solve, _validate

__all__ = [
    "universal_kriging",
    "linear_drift",
    "quadratic_drift",
    "adaptive_linear_drift",
]

Variogram = Callable[[np.ndarray], np.ndarray]
DriftBasis = Callable[[np.ndarray], np.ndarray]


def linear_drift(points: np.ndarray) -> np.ndarray:
    """Affine drift basis ``[1, x_1, ..., x_d]`` evaluated at each row."""
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    return np.hstack([np.ones((pts.shape[0], 1)), pts])


def quadratic_drift(points: np.ndarray) -> np.ndarray:
    """Drift basis with pure quadratic terms ``[1, x_i, x_i^2]``."""
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    return np.hstack([np.ones((pts.shape[0], 1)), pts, pts**2])


def adaptive_linear_drift(support_points: np.ndarray) -> DriftBasis:
    """Linear drift restricted to the coordinates that vary in the support.

    Greedy trajectories often provide support sets confined to a line or a
    low-dimensional face of the hypercube; a full linear drift is then rank
    deficient.  This factory inspects the support once and returns a basis
    ``[1, x_j for varying j]``, which stays full rank and still reproduces
    the trend along every direction the data can identify.
    """
    pts = np.atleast_2d(np.asarray(support_points, dtype=np.float64))
    varying = [j for j in range(pts.shape[1]) if np.unique(pts[:, j]).size > 1]

    def basis(points: np.ndarray) -> np.ndarray:
        p = np.atleast_2d(np.asarray(points, dtype=np.float64))
        columns = [np.ones((p.shape[0], 1))]
        if varying:
            columns.append(p[:, varying])
        return np.hstack(columns)

    return basis


def universal_kriging(
    points: np.ndarray,
    values: np.ndarray,
    query: np.ndarray,
    variogram: Variogram,
    *,
    drift: DriftBasis = linear_drift,
    metric: DistanceMetric | str = DistanceMetric.L1,
) -> KrigingResult:
    """Kriging estimate with a polynomial drift model.

    Solves the extended system::

        | Gamma  F | |w|   |gamma_q|
        | F^T    0 | |m| = |f_q    |

    where ``F`` collects the drift basis at the support points.  The
    unbiasedness constraints ``F^T w = f_q`` force the estimator to
    reproduce every drift basis function exactly; with
    :func:`linear_drift` the estimate of an affine field is exact even when
    extrapolating.

    Parameters
    ----------
    points, values, query, variogram, metric:
        As in :func:`repro.core.kriging.ordinary_kriging`.
    drift:
        Basis-function generator mapping ``(n, Nv)`` points to an ``(n, k)``
        design matrix.  The support must contain at least ``k`` points in
        general position; otherwise the solver falls back to least squares.

    Returns
    -------
    KrigingResult
        ``lagrange`` holds the first drift multiplier (the constant term).

    Notes
    -----
    Not every (variogram, drift, support-geometry) combination yields a
    well-posed system — e.g. the piecewise-linear variogram ``gamma(h) = h``
    together with a linear drift is rank deficient on collinear supports,
    where the kriging predictor is not unique.  Singular systems are
    detected by a rank check and the call transparently degrades to
    ordinary kriging, which is always well-posed.
    """
    pts, vals, q = _validate(points, values, query)
    hit = _exact_hit(pts, vals, q)
    if hit is not None:
        return hit
    n = pts.shape[0]

    basis = np.asarray(drift(pts), dtype=np.float64)
    if basis.ndim != 2 or basis.shape[0] != n:
        raise ValueError(
            f"drift basis must return (n, k), got {basis.shape} for {n} points"
        )
    k = basis.shape[1]
    basis_query = np.asarray(drift(q[None, :]), dtype=np.float64).reshape(k)

    gamma_matrix = np.asarray(variogram(pairwise_distances(pts, metric)), dtype=np.float64)
    np.fill_diagonal(gamma_matrix, 0.0)
    gamma_query = np.asarray(variogram(distances_to(pts, q, metric)), dtype=np.float64)

    size = n + k
    system = np.zeros((size, size))
    system[:n, :n] = gamma_matrix
    system[:n, n:] = basis
    system[n:, :n] = basis.T
    rhs = np.concatenate([gamma_query, basis_query])

    scale = np.max(np.abs(system))
    tolerance = max(scale, 1.0) * size * 1e-10
    if np.linalg.matrix_rank(system, tol=tolerance) < size:
        from repro.core.kriging import ordinary_kriging

        return ordinary_kriging(pts, vals, q, variogram, metric=metric)

    solution = _solve(system, rhs)
    weights = solution[:n]
    multipliers = solution[n:]
    estimate = float(weights @ vals)
    variance = float(weights @ gamma_query + multipliers @ basis_query)
    return KrigingResult(
        estimate=estimate,
        variance=max(variance, 0.0),
        weights=weights,
        lagrange=float(multipliers[0]),
    )
