"""Empirical semi-variogram (paper Eq. 4).

Given measured metric values ``lambda(e_j)`` at configurations ``e_j``, the
semi-variogram at lag ``d`` is::

    gamma(d) = 1 / (2 |N(d)|) * sum_{(j,k) in N(d)} (lambda(e_j) - lambda(e_k))^2

with ``N(d)`` the set of point pairs at distance ``d``.  On the integer
configuration lattices of this library L1 lags are integers, so the default
estimator groups pairs by exact lag; continuous inputs can be binned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distances import DistanceMetric, pairwise_distances

__all__ = ["empirical_semivariogram", "EmpiricalVariogram"]


@dataclass(frozen=True)
class EmpiricalVariogram:
    """Empirical semi-variogram: lags, values and pair counts.

    Calling the object evaluates ``gamma`` at arbitrary lags by linear
    interpolation between observed lags (constant extrapolation beyond the
    largest lag, linear through the origin below the smallest).
    """

    lags: np.ndarray
    gammas: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.lags) == len(self.gammas) == len(self.counts)):
            raise ValueError("lags, gammas and counts must have equal length")
        if len(self.lags) == 0:
            raise ValueError("empirical variogram needs at least one lag")
        if np.any(np.diff(self.lags) <= 0):
            raise ValueError("lags must be strictly increasing")

    @property
    def n_lags(self) -> int:
        """Number of distinct lags observed."""
        return len(self.lags)

    def __call__(self, h: np.ndarray | float) -> np.ndarray:
        """Interpolated ``gamma(h)`` with ``gamma(0) = 0``."""
        h_arr = np.atleast_1d(np.asarray(h, dtype=np.float64))
        # Anchor the interpolation at the origin: gamma(0) = 0 by definition.
        xs = np.concatenate([[0.0], self.lags])
        ys = np.concatenate([[0.0], self.gammas])
        result = np.interp(h_arr, xs, ys)
        return result if np.ndim(h) else float(result[0])  # type: ignore[return-value]


def empirical_semivariogram(
    points: np.ndarray,
    values: np.ndarray,
    *,
    metric: DistanceMetric | str = DistanceMetric.L1,
    n_bins: int | None = None,
    max_lag: float | None = None,
) -> EmpiricalVariogram:
    """Estimate the semi-variogram of ``values`` sampled at ``points`` (Eq. 4).

    Parameters
    ----------
    points:
        ``(n, Nv)`` configuration matrix.
    values:
        ``(n,)`` measured metric values.
    metric:
        Distance metric between configurations (paper: L1).
    n_bins:
        If ``None`` (default), pairs are grouped by *exact* lag — correct for
        integer lattices.  Otherwise lags are grouped into ``n_bins`` equal
        bins and each bin is represented by its mean lag.
    max_lag:
        Ignore pairs farther apart than this (defaults to all pairs).

    Returns
    -------
    EmpiricalVariogram
    """
    pts = np.asarray(points, dtype=np.float64)
    vals = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    if vals.ndim != 1 or vals.size != pts.shape[0]:
        raise ValueError(
            f"values shape {vals.shape} incompatible with {pts.shape[0]} points"
        )
    if pts.shape[0] < 2:
        raise ValueError("need at least two points to estimate a variogram")

    dist = pairwise_distances(pts, metric)
    iu, ju = np.triu_indices(pts.shape[0], k=1)
    lags = dist[iu, ju]
    sqdiff = 0.5 * (vals[iu] - vals[ju]) ** 2

    keep = lags > 0
    if max_lag is not None:
        keep &= lags <= max_lag
    lags, sqdiff = lags[keep], sqdiff[keep]
    if lags.size == 0:
        raise ValueError("no usable point pairs (all coincident or beyond max_lag)")

    if n_bins is None:
        unique_lags, inverse = np.unique(lags, return_inverse=True)
        gamma = np.zeros(unique_lags.size)
        counts = np.zeros(unique_lags.size, dtype=np.int64)
        np.add.at(gamma, inverse, sqdiff)
        np.add.at(counts, inverse, 1)
        gamma /= counts
        return EmpiricalVariogram(lags=unique_lags, gammas=gamma, counts=counts)

    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    edges = np.linspace(0.0, float(lags.max()), n_bins + 1)
    indices = np.clip(np.digitize(lags, edges) - 1, 0, n_bins - 1)
    bin_lags, bin_gamma, bin_counts = [], [], []
    for b in range(n_bins):
        mask = indices == b
        if not np.any(mask):
            continue
        bin_lags.append(float(np.mean(lags[mask])))
        bin_gamma.append(float(np.mean(sqdiff[mask])))
        bin_counts.append(int(np.sum(mask)))
    return EmpiricalVariogram(
        lags=np.asarray(bin_lags),
        gammas=np.asarray(bin_gamma),
        counts=np.asarray(bin_counts, dtype=np.int64),
    )
