"""Experiment drivers reproducing the paper's evaluation (Section IV).

* :mod:`~repro.experiments.registry` — the five benchmark setups
  (FIR, IIR, FFT, HEVC, SqueezeNet) with trajectory recording;
* :mod:`~repro.experiments.replay` — the record-then-replay methodology
  behind Table I;
* :mod:`~repro.experiments.table1` — Table I rows (``p %``, mean support
  size, max/mean interpolation error per distance ``d``);
* :mod:`~repro.experiments.figure1` — the FIR noise-power surface;
* :mod:`~repro.experiments.decisions` — the decision-divergence experiment
  (optimizer with kriging in the loop vs pure simulation);
* :mod:`~repro.experiments.timing` — interpolation-vs-simulation timing and
  the total-optimization-time model (Eq. 2);
* :mod:`~repro.experiments.reporting` — plain-text table renderers.
"""

from repro.experiments.decisions import DecisionDivergence, measure_decision_divergence
from repro.experiments.figure1 import fir_noise_surface, render_surface
from repro.experiments.registry import (
    BENCHMARK_NAMES,
    BenchmarkSetup,
    build_benchmark,
)
from repro.experiments.replay import MetricKind, ReplayStats, replay_trajectory
from repro.experiments.reporting import format_table1
from repro.experiments.table1 import Table1Row, table1_rows
from repro.experiments.timing import SpeedupProjection, project_speedup

__all__ = [
    "MetricKind",
    "ReplayStats",
    "replay_trajectory",
    "BenchmarkSetup",
    "build_benchmark",
    "BENCHMARK_NAMES",
    "Table1Row",
    "table1_rows",
    "format_table1",
    "fir_noise_surface",
    "render_surface",
    "DecisionDivergence",
    "measure_decision_divergence",
    "SpeedupProjection",
    "project_speedup",
]
