"""Decision-divergence experiment (Section IV, penultimate paragraph).

"To evaluate the impact of kriging on the result of the optimization
algorithm, the number of different decisions (when using kriging), taken
during the optimization process has been measured and approximately ranges
10 %.  Nevertheless, the optimization algorithm compensates these different
choices to end with a similar result."

We rerun each optimizer twice — once with pure simulation, once with the
kriging evaluator in the loop — and compare the greedy decision sequences
and the final solutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import KrigingEstimator
from repro.experiments.registry import BenchmarkSetup
from repro.optimization.evaluator import KrigingMetricEvaluator
from repro.optimization.trace import OptimizationResult

__all__ = ["DecisionDivergence", "measure_decision_divergence"]


@dataclass(frozen=True)
class DecisionDivergence:
    """Comparison of a kriging-in-the-loop run against the reference run.

    Attributes
    ----------
    different_decisions_percent:
        Share of greedy iterations whose committed variable differs
        (compared position-wise; length mismatches count as differences).
        Order swaps between equivalent commits inflate this number — see
        :attr:`budget_difference_percent` for the order-insensitive view.
    budget_difference_percent:
        L1 distance between the two runs' per-variable commit counts,
        relative to the reference commit count: 0 % means both runs granted
        exactly the same bits to the same variables, merely possibly in a
        different order.
    reference_solution / kriging_solution:
        Final configurations of the two runs.
    reference_cost / kriging_cost:
        Implementation costs of the two solutions.
    n_simulations_reference / n_simulations_kriging:
        Fresh simulations each run needed.
    """

    different_decisions_percent: float
    budget_difference_percent: float
    reference_solution: tuple[int, ...]
    kriging_solution: tuple[int, ...]
    reference_cost: float
    kriging_cost: float
    n_simulations_reference: int
    n_simulations_kriging: int

    @property
    def cost_gap_percent(self) -> float:
        """Relative cost difference of the kriging solution vs the reference."""
        if self.reference_cost == 0:
            return 0.0
        return 100.0 * (self.kriging_cost - self.reference_cost) / self.reference_cost


def _decision_difference(reference: list[int], kriging: list[int]) -> float:
    if not reference and not kriging:
        return 0.0
    longest = max(len(reference), len(kriging))
    same = sum(
        1 for a, b in zip(reference, kriging) if a == b
    )
    return 100.0 * (longest - same) / longest


def _budget_difference(reference: list[int], kriging: list[int]) -> float:
    if not reference and not kriging:
        return 0.0
    variables = set(reference) | set(kriging)
    l1 = sum(abs(reference.count(v) - kriging.count(v)) for v in variables)
    return 100.0 * l1 / max(len(reference), 1)


def measure_decision_divergence(
    setup: BenchmarkSetup,
    *,
    distance: float = 3.0,
    nn_min: int = 1,
    variogram: object = "auto",
    max_variance: float | None = None,
    min_fit_points: int = 4,
    refit_interval: int | None = 1,
) -> DecisionDivergence:
    """Run the optimizer with and without kriging and compare decisions.

    The reference (pure simulation) run reuses the setup's cached trajectory
    when available.  ``max_variance`` enables the variance-gated policy
    (interpolations with kriging variance above the bound fall back to
    simulation), which trades interpolation rate for decision fidelity —
    the trade-off quantified by benchmark E8.
    """
    reference: OptimizationResult = setup.reference_result

    estimator = KrigingEstimator(
        setup.problem.simulate,
        setup.problem.num_variables,
        distance=distance,
        nn_min=nn_min,
        variogram=variogram,  # type: ignore[arg-type]
        max_variance=max_variance,
        min_fit_points=min_fit_points,
        refit_interval=refit_interval,
    )
    evaluator = KrigingMetricEvaluator(estimator)
    kriging_run = setup.run_reference_optimization(evaluator)

    return DecisionDivergence(
        different_decisions_percent=_decision_difference(
            reference.trace.decisions, kriging_run.trace.decisions
        ),
        budget_difference_percent=_budget_difference(
            reference.trace.decisions, kriging_run.trace.decisions
        ),
        reference_solution=reference.solution,
        kriging_solution=kriging_run.solution,
        reference_cost=reference.cost,
        kriging_cost=kriging_run.cost,
        n_simulations_reference=reference.trace.n_simulated,
        n_simulations_kriging=kriging_run.trace.n_simulated,
    )
