"""Figure 1 reproduction: the FIR noise-power surface.

The paper's Figure 1 plots the output noise power (dB) of the FIR benchmark
against the word-lengths of the adder and the multiplier.  We regenerate the
same surface on an exhaustive grid and provide a terminal-friendly rendering
(the shape — a monotone staircase falling along both axes with plateaus where
one source dominates — is the reproduction target, not the exact dB values).
"""

from __future__ import annotations

import numpy as np

from repro.signal.fir import FIRBenchmark

__all__ = ["fir_noise_surface", "render_surface", "surface_is_monotone"]


def fir_noise_surface(
    *,
    word_lengths: range = range(6, 21),
    n_samples: int = 1024,
    seed: int = 0,
) -> tuple[np.ndarray, list[int]]:
    """Exhaustive FIR noise-power surface.

    Returns
    -------
    tuple
        ``(surface, grid)`` where ``surface[i, j]`` is the noise power (dB)
        at ``w_mul = grid[i]``, ``w_add = grid[j]``.
    """
    bench = FIRBenchmark(n_samples=n_samples, seed=seed)
    surface = bench.surface(word_lengths)
    return surface, list(word_lengths)


def surface_is_monotone(surface: np.ndarray, *, tolerance_db: float = 1.0) -> bool:
    """Whether noise power is non-increasing along both word-length axes.

    ``tolerance_db`` absorbs the sub-dB ripple of bit-true simulation.
    """
    rows_ok = bool(np.all(np.diff(surface, axis=1) <= tolerance_db))
    cols_ok = bool(np.all(np.diff(surface, axis=0) <= tolerance_db))
    return rows_ok and cols_ok


def render_surface(surface: np.ndarray, grid: list[int]) -> str:
    """ASCII rendering of the surface (rows: w_mul, columns: w_add)."""
    if surface.shape != (len(grid), len(grid)):
        raise ValueError(
            f"surface shape {surface.shape} does not match grid of {len(grid)}"
        )
    header = "w_mul\\w_add " + " ".join(f"{w:>7d}" for w in grid)
    lines = [header]
    for i, w in enumerate(grid):
        cells = " ".join(f"{surface[i, j]:>7.1f}" for j in range(len(grid)))
        lines.append(f"{w:>11d} " + cells)
    return "\n".join(lines)
