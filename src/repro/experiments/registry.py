"""The five benchmark setups of the paper's experimental study.

Each setup bundles a substrate benchmark (signal kernel, video module or
CNN), the corresponding :class:`~repro.optimization.problem.DSEProblem`, the
optimizer the paper used on it, and a cached ground-truth trajectory
recording (the expensive part — the replays of Table I are cheap).

Two scales are provided:

* ``"full"`` — paper-comparable workloads (used by the benchmark harness);
* ``"small"`` — reduced data sets for fast integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.replay import MetricKind
from repro.neural import ErrorSourceGrid, SensitivityBenchmark
from repro.optimization.descent import NoiseBudgetingDescent
from repro.optimization.evaluator import MetricEvaluator, SimulationEvaluator
from repro.optimization.minplusone import MinPlusOneOptimizer
from repro.optimization.problem import DSEProblem, MetricSense
from repro.optimization.trace import OptimizationResult, OptimizationTrace
from repro.signal import DCTBenchmark, FFTBenchmark, FIRBenchmark, IIRBenchmark
from repro.video import BlockWorkload, MotionCompensationBenchmark

__all__ = [
    "BenchmarkSetup",
    "build_benchmark",
    "BENCHMARK_NAMES",
    "EXTRA_BENCHMARK_NAMES",
    "SCALES",
]

BENCHMARK_NAMES = ("fir", "iir", "fft", "hevc", "squeezenet")
"""The paper's Table I benchmarks."""

EXTRA_BENCHMARK_NAMES = ("dct",)
"""Additional kernels beyond the paper's set (see repro.signal.dct)."""

SCALES = ("small", "full")


@dataclass
class BenchmarkSetup:
    """One benchmark of Table I, ready to record its configuration trajectory.

    Attributes
    ----------
    name:
        Registry key (``fir`` ... ``squeezenet``).
    metric_label:
        The paper's metric name for the Table I row.
    problem:
        The DSE problem instance (bounds, threshold, simulate function).
    metric_kind:
        Error unit used in the replays (Eq. 11 vs Eq. 12).
    optimizer_kind:
        ``"minplusone"`` (word-length benchmarks) or ``"descent"``
        (sensitivity analysis).
    descent_start:
        Starting level of the descent optimizer (sensitivity only).
    substrate:
        The underlying benchmark object (kernel / video module / CNN
        harness), for callers that need more than ``problem.simulate``.
    """

    name: str
    metric_label: str
    problem: DSEProblem
    metric_kind: MetricKind
    optimizer_kind: str
    descent_start: int | None = None
    substrate: object | None = None
    _result: OptimizationResult | None = field(default=None, repr=False)

    def run_reference_optimization(
        self, evaluator: MetricEvaluator | None = None
    ) -> OptimizationResult:
        """Run the benchmark's optimizer (pure simulation unless overridden)."""
        if self.optimizer_kind == "minplusone":
            return MinPlusOneOptimizer(self.problem, evaluator).run()
        if self.optimizer_kind == "descent":
            start = None
            if self.descent_start is not None:
                start = self.problem.full_configuration(self.descent_start)
            return NoiseBudgetingDescent(self.problem, evaluator, start=start).run()
        raise ValueError(f"unknown optimizer kind {self.optimizer_kind!r}")

    def record_trajectory(self) -> OptimizationTrace:
        """Ground-truth trajectory (memoized: the optimizer runs once)."""
        if self._result is None:
            self._result = self.run_reference_optimization(
                SimulationEvaluator(self.problem.simulate)
            )
        return self._result.trace

    @property
    def reference_result(self) -> OptimizationResult:
        """The pure-simulation optimization result (recording it if needed)."""
        self.record_trajectory()
        assert self._result is not None
        return self._result


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def build_fir(scale: str = "full", *, seed: int = 0) -> BenchmarkSetup:
    """64-tap FIR, ``Nv = 2``, noise-power metric (Table I rows 1-4)."""
    _check_scale(scale)
    n_samples = 2048 if scale == "full" else 512
    bench = FIRBenchmark(n_samples=n_samples, seed=seed)
    problem = DSEProblem(
        name="fir",
        num_variables=bench.NUM_VARIABLES,
        min_value=2,
        max_value=20,
        simulate=bench.noise_power_db,
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-58.5,
    )
    return BenchmarkSetup(
        name="fir",
        metric_label="Noise Power",
        problem=problem,
        metric_kind=MetricKind.NOISE_POWER_DB,
        optimizer_kind="minplusone",
        substrate=bench,
    )


def build_iir(scale: str = "full", *, seed: int = 1) -> BenchmarkSetup:
    """8th-order IIR, ``Nv = 5``, noise-power metric."""
    _check_scale(scale)
    n_samples = 2048 if scale == "full" else 512
    bench = IIRBenchmark(n_samples=n_samples, seed=seed)
    problem = DSEProblem(
        name="iir",
        num_variables=bench.NUM_VARIABLES,
        min_value=4,
        max_value=18,
        simulate=bench.noise_power_db,
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-55.0,
    )
    return BenchmarkSetup(
        name="iir",
        metric_label="Noise Power",
        problem=problem,
        metric_kind=MetricKind.NOISE_POWER_DB,
        optimizer_kind="minplusone",
        substrate=bench,
    )


def build_fft(scale: str = "full", *, seed: int = 2) -> BenchmarkSetup:
    """64-point FFT, ``Nv = 10``, noise-power metric."""
    _check_scale(scale)
    n_frames = 48 if scale == "full" else 12
    bench = FFTBenchmark(n_frames=n_frames, seed=seed)
    problem = DSEProblem(
        name="fft",
        num_variables=bench.NUM_VARIABLES,
        min_value=4,
        max_value=16,
        simulate=bench.noise_power_db,
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-55.0,
    )
    return BenchmarkSetup(
        name="fft",
        metric_label="Noise Power",
        problem=problem,
        metric_kind=MetricKind.NOISE_POWER_DB,
        optimizer_kind="minplusone",
        substrate=bench,
    )


def build_hevc(scale: str = "full", *, seed: int = 3) -> BenchmarkSetup:
    """HEVC motion compensation, ``Nv = 23``, noise-power metric.

    The paper quotes a noise-power constraint of -50 dB for this module.
    """
    _check_scale(scale)
    n_blocks = 64 if scale == "full" else 16
    workload = BlockWorkload.generate(n_blocks=n_blocks, seed=seed)
    bench = MotionCompensationBenchmark(workload=workload)
    problem = DSEProblem(
        name="hevc",
        num_variables=bench.NUM_VARIABLES,
        min_value=4,
        max_value=20,
        simulate=bench.noise_power_db,
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-50.0,
    )
    return BenchmarkSetup(
        name="hevc",
        metric_label="Noise Power",
        problem=problem,
        metric_kind=MetricKind.NOISE_POWER_DB,
        optimizer_kind="minplusone",
        substrate=bench,
    )


def build_squeezenet(scale: str = "full", *, seed: int = 5) -> BenchmarkSetup:
    """SqueezeNet sensitivity analysis, ``Nv = 10``, classification rate.

    Substitution (see DESIGN.md): reduced-scale SqueezeNet on a synthetic
    labelled image set; the paper's 1000-image set maps to 250 images at the
    ``full`` scale for tractability (pcl resolution 0.4 %, well below the
    interpolation errors of interest).
    """
    _check_scale(scale)
    n_images = 250 if scale == "full" else 48
    image_size = 32 if scale == "full" else 16
    bench = SensitivityBenchmark(
        n_images=n_images,
        image_size=image_size,
        grid=ErrorSourceGrid(base_db=0.0, step_db=6.0, max_level=16),
        seed=seed,
    )
    problem = DSEProblem(
        name="squeezenet",
        num_variables=bench.NUM_VARIABLES,
        min_value=1,
        max_value=16,
        simulate=bench.evaluate,
        sense=MetricSense.HIGHER_IS_BETTER,
        threshold=0.9,
    )
    return BenchmarkSetup(
        name="squeezenet",
        metric_label="Classification rate",
        problem=problem,
        metric_kind=MetricKind.RATE,
        optimizer_kind="descent",
        descent_start=13,
        substrate=bench,
    )


def build_dct(scale: str = "full", *, seed: int = 4) -> BenchmarkSetup:
    """8x8 2-D DCT, ``Nv = 6`` — an extra kernel beyond the paper's set."""
    _check_scale(scale)
    n_blocks = 96 if scale == "full" else 24
    bench = DCTBenchmark(n_blocks=n_blocks, seed=seed)
    problem = DSEProblem(
        name="dct",
        num_variables=bench.NUM_VARIABLES,
        min_value=4,
        max_value=18,
        simulate=bench.noise_power_db,
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-50.0,
    )
    return BenchmarkSetup(
        name="dct",
        metric_label="Noise Power",
        problem=problem,
        metric_kind=MetricKind.NOISE_POWER_DB,
        optimizer_kind="minplusone",
        substrate=bench,
    )


_BUILDERS = {
    "fir": build_fir,
    "iir": build_iir,
    "fft": build_fft,
    "hevc": build_hevc,
    "squeezenet": build_squeezenet,
    "dct": build_dct,
}


def build_benchmark(name: str, scale: str = "full") -> BenchmarkSetup:
    """Build a benchmark by registry name (paper set + extras)."""
    if name not in _BUILDERS:
        known = BENCHMARK_NAMES + EXTRA_BENCHMARK_NAMES
        raise ValueError(f"unknown benchmark {name!r}; expected one of {known}")
    return _BUILDERS[name](scale)
