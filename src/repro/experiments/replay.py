"""Record-then-replay evaluation of the kriging policy (Section IV).

The paper's methodology: run the optimizer with exhaustive simulation, record
every tested configuration and its true metric value *in test order*; then
walk the recorded trajectory under the kriging policy — a configuration with
more than ``Nn_min`` previously *simulated* trajectory points within distance
``d`` is interpolated (and its interpolation error measured against the
recorded truth), anything else is "simulated" (its true value enters the
support cache).  The outputs are exactly the paper's Table I columns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.distances import DistanceMetric
from repro.core.estimator import KrigingEstimator
from repro.core.factor_cache import FactorCacheStats
from repro.fixedpoint.noise import bit_difference_db, relative_difference
from repro.optimization.trace import OptimizationTrace

__all__ = ["MetricKind", "ReplayStats", "replay_trajectory", "replay_trace"]


class MetricKind(enum.Enum):
    """How interpolation errors are expressed (paper Eqs. 11-12)."""

    NOISE_POWER_DB = "noise_power_db"
    """Metric is a noise power in dB; errors are equivalent-bit differences
    ``|log2(P_hat / P)|`` (Eq. 11)."""

    RATE = "rate"
    """Metric is a rate/probability; errors are relative differences
    ``|l_hat - l| / l`` (Eq. 12)."""

    def error(self, estimated: float, truth: float) -> float:
        """Interpolation error between an estimate and the recorded truth."""
        if self is MetricKind.NOISE_POWER_DB:
            return bit_difference_db(estimated, truth)
        return relative_difference(estimated, truth)


@dataclass(frozen=True)
class ReplayStats:
    """Result of replaying one trajectory under the kriging policy.

    Attributes mirror the paper's Table I columns: :attr:`p_percent` is the
    share of configurations interpolated instead of simulated, and
    :attr:`mean_neighbors` the mean support size per interpolation (column
    ``j``).  ``errors`` holds the per-interpolation errors in the metric
    kind's unit (equivalent bits or relative difference).
    """

    benchmark: str
    metric_kind: MetricKind
    distance: float
    nn_min: int
    n_configs: int
    n_interpolated: int
    n_simulated: int
    mean_neighbors: float
    errors: np.ndarray
    neighbor_quantiles: tuple[tuple[float, float], ...] = ()
    """Streamed ``(probability, support-size quantile)`` pairs from the
    estimator's P² sketch (empty when nothing was interpolated)."""
    factor_reuse: tuple[tuple[str, int], ...] = ()
    """Factorization-reuse counters (``hits`` / ``updates`` / ``fresh`` /
    ``fallbacks`` ...) from the estimator's
    :class:`~repro.core.factor_cache.FactorCacheStats`; all zeros when the
    reuse layer was disabled."""
    solve_phases: tuple[tuple[str, float], ...] = ()
    """Cumulative solve-phase wall clock (``assembly_seconds`` /
    ``factorize_seconds`` / ``backsolve_seconds`` / ``n_flushes``) from the
    estimator's :class:`~repro.core.estimator.SolvePhaseStats`; empty when
    no grouped flush ran."""

    def solve_phase(self, name: str) -> float:
        """One cumulative solve-phase value by name (0.0 when untracked)."""
        for key, value in self.solve_phases:
            if key == name:
                return value
        return 0.0

    def factor_counter(self, name: str) -> int:
        """One reuse counter by name (0 when untracked)."""
        for key, value in self.factor_reuse:
            if key == name:
                return value
        return 0

    @property
    def factor_reuse_rate(self) -> float:
        """Share of factorization requests served by the cache (hit or
        rank-1 update) instead of a fresh O(n^3) solve; ``nan`` when the
        replay never asked for a factorization.  Delegates to
        :meth:`FactorCacheStats.reuse_rate
        <repro.core.factor_cache.FactorCacheStats.reuse_rate>` so there is
        one definition of the rate."""
        return FactorCacheStats.from_pairs(self.factor_reuse).reuse_rate

    def neighbor_quantile(self, prob: float) -> float:
        """Support-size quantile streamed during the replay (``nan`` if
        ``prob`` was not tracked or nothing was interpolated)."""
        for p, value in self.neighbor_quantiles:
            if p == prob:
                return value
        return float("nan")

    @property
    def p_percent(self) -> float:
        """Percentage of configurations interpolated (paper column ``p``)."""
        if self.n_configs == 0:
            return 0.0
        return 100.0 * self.n_interpolated / self.n_configs

    @property
    def max_error(self) -> float:
        """Largest interpolation error (paper column ``max eps``)."""
        return float(np.max(self.errors)) if self.errors.size else float("nan")

    @property
    def mean_error(self) -> float:
        """Mean interpolation error (paper column ``mu eps``)."""
        return float(np.mean(self.errors)) if self.errors.size else float("nan")


def replay_trajectory(
    configurations: np.ndarray,
    true_values: np.ndarray,
    *,
    benchmark: str = "",
    metric_kind: MetricKind = MetricKind.NOISE_POWER_DB,
    distance: float = 3.0,
    nn_min: int = 1,
    metric: DistanceMetric | str = DistanceMetric.L1,
    variogram: object = "auto",
    min_fit_points: int = 4,
    refit_interval: int | None = 1,
    interpolator: str = "ordinary",
    n_jobs: int | None = 1,
    backend: str = "thread",
    factor_cache: bool = True,
) -> ReplayStats:
    """Replay a recorded trajectory under the kriging policy.

    Parameters
    ----------
    configurations:
        ``(n, Nv)`` tested configurations in test order (duplicates allowed;
        only the first visit of each configuration is replayed).
    true_values:
        Recorded ground-truth metric values aligned with ``configurations``.
    benchmark:
        Name recorded in the result.
    metric_kind:
        Unit of the interpolation errors (Eq. 11 vs Eq. 12).
    distance, nn_min, metric, variogram, min_fit_points, refit_interval:
        Kriging-policy parameters, forwarded to
        :class:`~repro.core.estimator.KrigingEstimator`.  The defaults
        re-identify the variogram after every simulation (cheap at trajectory
        sizes) starting from the fourth, matching the paper's once-per-
        application identification as soon as data exists.
    n_jobs:
        Workers for the batch engine's shared-support group solves
        (``-1``: one per CPU).  Results are identical for every setting.
    backend:
        ``"thread"`` (default) or ``"process"`` executor for the group
        solves.  The process backend bypasses the factor cache, so with
        ``factor_cache=True`` the two backends may differ within the
        engine's ~1e-9 envelope (bit-equal with the cache disabled).
    factor_cache:
        Enable the factorization-reuse layer (default on); the resulting
        :attr:`ReplayStats.factor_reuse` counters show how often it paid.
    """
    configs = np.asarray(configurations, dtype=np.int64)
    values = np.asarray(true_values, dtype=np.float64)
    if configs.ndim != 2 or configs.shape[0] == 0:
        raise ValueError(f"configurations must be non-empty 2-D, got {configs.shape}")
    if values.shape != (configs.shape[0],):
        raise ValueError(
            f"true_values shape {values.shape} incompatible with {configs.shape[0]} configs"
        )

    # First-visit deduplication: revisits are exact cache hits under either
    # scheme and would dilute the statistics.
    seen: set[tuple[int, ...]] = set()
    keep: list[int] = []
    for idx in range(configs.shape[0]):
        key = tuple(int(x) for x in configs[idx])
        if key not in seen:
            seen.add(key)
            keep.append(idx)
    configs = configs[keep]
    values = values[keep]

    truth = {tuple(int(x) for x in c): float(v) for c, v in zip(configs, values)}

    def lookup(config: np.ndarray) -> float:
        return truth[tuple(int(x) for x in config)]

    estimator = KrigingEstimator(
        lookup,
        configs.shape[1],
        distance=distance,
        nn_min=nn_min,
        metric=metric,
        variogram=variogram,  # type: ignore[arg-type]
        min_fit_points=min_fit_points,
        refit_interval=refit_interval,
        interpolator=interpolator,
        n_jobs=n_jobs,
        backend=backend,
        factor_cache=factor_cache,
    )

    # The whole trajectory goes through the batch engine: runs of
    # interpolations between simulations share one kriging factorization
    # (identical outcomes to a per-query loop, far less work).  The
    # estimator is closed afterwards so a process-backend pool never
    # outlives the replay.
    with estimator:
        outcomes = estimator.evaluate_batch(configs)
    errors = [
        metric_kind.error(outcome.value, float(value))
        for outcome, value in zip(outcomes, values)
        if outcome.interpolated and not outcome.exact_hit
    ]

    stats = estimator.stats
    quantiles = (
        tuple(sorted(stats.neighbor_sketch.quantiles().items()))
        if stats.n_interpolated
        else ()
    )
    return ReplayStats(
        benchmark=benchmark,
        metric_kind=metric_kind,
        distance=float(distance),
        nn_min=int(nn_min),
        n_configs=int(configs.shape[0]),
        n_interpolated=stats.n_interpolated,
        n_simulated=stats.n_simulated,
        mean_neighbors=stats.mean_neighbors,
        errors=np.asarray(errors, dtype=np.float64),
        neighbor_quantiles=quantiles,
        factor_reuse=stats.factor.as_pairs(),
        solve_phases=stats.solve.as_pairs() if stats.solve.n_flushes else (),
    )


def replay_trace(
    trace: OptimizationTrace,
    *,
    benchmark: str = "",
    metric_kind: MetricKind = MetricKind.NOISE_POWER_DB,
    distance: float = 3.0,
    nn_min: int = 1,
    metric: DistanceMetric | str = DistanceMetric.L1,
    variogram: object = "auto",
    min_fit_points: int = 4,
    refit_interval: int | None = 1,
    interpolator: str = "ordinary",
    n_jobs: int | None = 1,
    backend: str = "thread",
    factor_cache: bool = True,
) -> ReplayStats:
    """Convenience wrapper: replay an :class:`OptimizationTrace` directly."""
    unique = trace.unique_first_visits()
    return replay_trajectory(
        unique.configurations,
        unique.values,
        benchmark=benchmark,
        metric_kind=metric_kind,
        distance=distance,
        nn_min=nn_min,
        metric=metric,
        variogram=variogram,
        min_fit_points=min_fit_points,
        refit_interval=refit_interval,
        interpolator=interpolator,
        n_jobs=n_jobs,
        backend=backend,
        factor_cache=factor_cache,
    )
