"""Plain-text renderers for the reproduced tables.

Distribution summaries (support-size quantiles) are rendered from the
estimator's streaming P² sketch — the stored per-interpolation list it
replaced no longer exists anywhere in the pipeline.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.replay import MetricKind, ReplayStats
from repro.experiments.table1 import Table1Row

__all__ = [
    "format_table1",
    "format_row",
    "format_neighbor_distribution",
    "format_factor_reuse",
    "format_solve_phases",
]

_HEADER = (
    f"{'benchmark':<12} {'metric':<20} {'Nv':>3} {'d':>3} "
    f"{'p(%)':>7} {'j':>6} {'max eps':>9} {'mu eps':>9} {'configs':>8}"
)


def _format_error(value: float, kind: MetricKind) -> str:
    if value != value:  # NaN: no interpolation happened
        return "-"
    if kind is MetricKind.RATE:
        return f"{100.0 * value:.2f}%"
    return f"{value:.2f}"


def format_row(row: Table1Row) -> str:
    """Render one Table I row in the paper's column order."""
    return (
        f"{row.benchmark:<12} {row.metric_label:<20} {row.nv:>3d} "
        f"{row.distance:>3.0f} {row.p_percent:>7.2f} {row.mean_neighbors:>6.2f} "
        f"{_format_error(row.max_error, row.metric_kind):>9} "
        f"{_format_error(row.mean_error, row.metric_kind):>9} "
        f"{row.n_configs:>8d}"
    )


def format_neighbor_distribution(stats: ReplayStats) -> str:
    """Render a replay's support-size distribution (paper column ``j``).

    One line per replay: the exact mean alongside the streamed quantiles of
    the number of neighbours each interpolation used.  Returns a placeholder
    line when the replay interpolated nothing.
    """
    label = f"{stats.benchmark or 'replay':<12} d={stats.distance:<4.0f}"
    if not stats.neighbor_quantiles:
        return f"{label} no interpolations"
    quantiles = " ".join(
        f"p{round(100 * p):02d}={value:5.2f}" for p, value in stats.neighbor_quantiles
    )
    return f"{label} j_mean={stats.mean_neighbors:5.2f}  {quantiles}"


def format_factor_reuse(stats: ReplayStats) -> str:
    """Render a replay's factorization-reuse counters.

    One line per replay: how many kriging factorizations came from the
    factor cache (exact hits plus rank-1 up/downdates) versus fresh O(n^3)
    solves, and how often a reused solve fell back to the plain solver.
    Returns a placeholder line when the replay never requested a
    factorization (reuse disabled, or every group below the cache's
    minimum support size).
    """
    label = f"{stats.benchmark or 'replay':<12} d={stats.distance:<4.0f}"
    rate = stats.factor_reuse_rate
    if rate != rate:  # NaN: no factorization requests
        return f"{label} factor reuse: n/a"
    return (
        f"{label} factor reuse={100.0 * rate:5.1f}%  "
        f"hits={stats.factor_counter('hits')} "
        f"updates={stats.factor_counter('updates')} "
        f"fresh={stats.factor_counter('fresh')} "
        f"fallbacks={stats.factor_counter('fallbacks')}"
    )


def format_solve_phases(stats: ReplayStats) -> str:
    """Render a replay's solve-phase wall-clock split.

    One line per replay: cumulative seconds the batch engine spent on
    system *assembly* (distances + variogram kernels), *factorize* (fresh
    LAPACK factorizations, stacked or per-group) and *backsolve*
    (cached-factor triangular solves plus weight extraction), with each
    phase's share of their sum.  Returns a placeholder line when the
    replay never ran a grouped flush.
    """
    label = f"{stats.benchmark or 'replay':<12} d={stats.distance:<4.0f}"
    if not stats.solve_phases:
        return f"{label} solve phases: n/a"
    assembly = stats.solve_phase("assembly_seconds")
    factorize = stats.solve_phase("factorize_seconds")
    backsolve = stats.solve_phase("backsolve_seconds")
    total = assembly + factorize + backsolve
    share = (lambda x: 100.0 * x / total) if total > 0.0 else (lambda x: 0.0)
    return (
        f"{label} solve "
        f"assembly={assembly:.3f}s ({share(assembly):4.1f}%) "
        f"factorize={factorize:.3f}s ({share(factorize):4.1f}%) "
        f"backsolve={backsolve:.3f}s ({share(backsolve):4.1f}%) "
        f"flushes={int(stats.solve_phase('n_flushes'))}"
    )


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render a full Table I reproduction as aligned plain text."""
    lines = [_HEADER, "-" * len(_HEADER)]
    previous = None
    for row in rows:
        if previous is not None and row.benchmark != previous:
            lines.append("")
        lines.append(format_row(row))
        previous = row.benchmark
    return "\n".join(lines)
