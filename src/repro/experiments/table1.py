"""Table I reproduction driver.

For every benchmark and every neighbourhood distance ``d in {2, 3, 4, 5}``
(the paper's sweep), the recorded ground-truth trajectory is replayed under
the kriging policy and the four Table I statistics are extracted: ``p(%)``,
mean support size ``j``, ``max eps`` and ``mu eps``.

Each replay routes the whole trajectory through the vectorized batch query
engine (:meth:`repro.core.estimator.KrigingEstimator.evaluate_batch`), so a
distance sweep costs one trajectory recording plus a handful of batched
replays — the expensive optimizer run is never repeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.registry import BENCHMARK_NAMES, BenchmarkSetup, build_benchmark
from repro.experiments.replay import MetricKind, ReplayStats, replay_trace

__all__ = ["Table1Row", "rows_for_setup", "table1_rows", "DISTANCES"]

DISTANCES = (2, 3, 4, 5)
"""The distance sweep of the paper's Table I."""


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    benchmark: str
    metric_label: str
    nv: int
    distance: float
    p_percent: float
    mean_neighbors: float
    max_error: float
    mean_error: float
    n_configs: int
    metric_kind: MetricKind

    @classmethod
    def from_stats(
        cls, stats: ReplayStats, *, metric_label: str, nv: int
    ) -> "Table1Row":
        """Build a row from replay statistics."""
        return cls(
            benchmark=stats.benchmark,
            metric_label=metric_label,
            nv=nv,
            distance=stats.distance,
            p_percent=stats.p_percent,
            mean_neighbors=stats.mean_neighbors,
            max_error=stats.max_error,
            mean_error=stats.mean_error,
            n_configs=stats.n_configs,
            metric_kind=stats.metric_kind,
        )


def rows_for_setup(
    setup: BenchmarkSetup,
    *,
    distances: Sequence[float] = DISTANCES,
    nn_min: int = 1,
    variogram: object = "linear",
    n_jobs: int | None = 1,
    backend: str = "thread",
) -> list[Table1Row]:
    """Replay one benchmark's trajectory for each distance in the sweep.

    Trajectory recording (the expensive optimizer run with exhaustive
    simulation) happens once; each distance is a cheap replay.  ``n_jobs``
    parallelizes each replay's shared-support kriging solves (``-1``: one
    worker per CPU) on a thread or process pool (``backend``); rows are
    identical for every setting.
    """
    trace = setup.record_trajectory()
    rows = []
    for d in distances:
        stats = replay_trace(
            trace,
            benchmark=setup.name,
            metric_kind=setup.metric_kind,
            distance=d,
            nn_min=nn_min,
            variogram=variogram,
            n_jobs=n_jobs,
            backend=backend,
        )
        rows.append(
            Table1Row.from_stats(
                stats,
                metric_label=setup.metric_label,
                nv=setup.problem.num_variables,
            )
        )
    return rows


def table1_rows(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    *,
    scale: str = "full",
    distances: Sequence[float] = DISTANCES,
    nn_min: int = 1,
    variogram: object = "linear",
    n_jobs: int | None = 1,
    backend: str = "thread",
) -> list[Table1Row]:
    """Reproduce Table I over the requested benchmarks.

    Note that the SqueezeNet and HEVC trajectories take minutes to record at
    the ``full`` scale; prefer :func:`rows_for_setup` with a shared setup
    when sweeping parameters.
    """
    rows: list[Table1Row] = []
    for name in benchmarks:
        setup = build_benchmark(name, scale)
        rows.extend(
            rows_for_setup(
                setup,
                distances=distances,
                nn_min=nn_min,
                variogram=variogram,
                n_jobs=n_jobs,
                backend=backend,
            )
        )
    return rows
