"""Timing measurements and the total-optimization-time model (Eq. 2).

The paper's speed-up arithmetic: the total optimization time is
``t_opt = N_lambda * N_o * t_o`` (Eq. 2) — i.e. proportional to the number of
simulation-based metric evaluations.  Replacing a fraction ``p`` of them with
interpolations of cost ``t_krig`` gives::

    speedup = (N * t_sim) / ((1 - p) N t_sim + p N t_krig)

which approaches ``1 / (1 - p)`` since ``t_krig << t_sim`` (the paper
measures 1e-6 s vs 2.4 s).  :func:`project_speedup` evaluates the model with
measured quantities; :func:`measure_kriging_time` measures ``t_krig`` for a
representative support size.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.kriging import (
    ordinary_kriging,
    ordinary_kriging_batch,
    ordinary_kriging_grouped,
    resolve_n_jobs,
)
from repro.core.models import LinearVariogram

__all__ = [
    "SpeedupProjection",
    "project_speedup",
    "measure_kriging_time",
    "measure_batch_kriging_time",
    "measure_grouped_kriging_time",
    "measure_simulation_time",
    "PAPER_SIMULATION_TIMES",
]

PAPER_SIMULATION_TIMES = {
    "fir": 2.4,
    "iir": 2.4,
    "fft": 2.4,
    "hevc": 1.37,
    "squeezenet": 98.0 * 3600.0 / 290.0,
}
"""Per-evaluation simulation times quoted in the paper (seconds)."""


@dataclass(frozen=True)
class SpeedupProjection:
    """Eq. 2 speed-up estimate for one benchmark/distance setting.

    Attributes
    ----------
    p_fraction:
        Fraction of evaluations replaced by interpolation.
    t_simulation / t_kriging:
        Per-evaluation costs in seconds.
    """

    benchmark: str
    p_fraction: float
    t_simulation: float
    t_kriging: float

    @property
    def speedup(self) -> float:
        """``t_full / t_with_kriging`` under the Eq. 2 cost model."""
        full = self.t_simulation
        accelerated = (
            (1.0 - self.p_fraction) * self.t_simulation
            + self.p_fraction * self.t_kriging
        )
        if accelerated <= 0:
            return float("inf")
        return full / accelerated

    @property
    def ideal_speedup(self) -> float:
        """Limit for free interpolation, ``1 / (1 - p)``."""
        if self.p_fraction >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - self.p_fraction)


def project_speedup(
    benchmark: str,
    p_fraction: float,
    *,
    t_simulation: float | None = None,
    t_kriging: float = 1e-4,
) -> SpeedupProjection:
    """Build a speed-up projection.

    ``t_simulation`` defaults to the paper's quoted time for the benchmark,
    so the projection answers "what the paper's testbed would gain with our
    measured interpolation rate".
    """
    if not 0.0 <= p_fraction <= 1.0:
        raise ValueError(f"p_fraction must be in [0, 1], got {p_fraction}")
    if t_simulation is None:
        if benchmark not in PAPER_SIMULATION_TIMES:
            raise ValueError(
                f"no paper simulation time for {benchmark!r}; pass t_simulation"
            )
        t_simulation = PAPER_SIMULATION_TIMES[benchmark]
    return SpeedupProjection(
        benchmark=benchmark,
        p_fraction=p_fraction,
        t_simulation=float(t_simulation),
        t_kriging=float(t_kriging),
    )


def measure_kriging_time(
    *,
    n_support: int = 4,
    num_variables: int = 10,
    repetitions: int = 200,
    seed: int = 0,
) -> float:
    """Mean wall-clock seconds of one ordinary-kriging interpolation.

    Uses a representative support size (the paper's mean ``j`` ranges
    2.0-8.6) and a linear variogram.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    rng = np.random.default_rng(seed)
    points = rng.integers(4, 16, size=(n_support, num_variables)).astype(float)
    values = rng.normal(-60.0, 5.0, size=n_support)
    query = rng.integers(4, 16, size=num_variables).astype(float)
    variogram = LinearVariogram(1.0)

    ordinary_kriging(points, values, query, variogram)  # warm-up
    start = time.perf_counter()
    for _ in range(repetitions):
        ordinary_kriging(points, values, query, variogram)
    return (time.perf_counter() - start) / repetitions


def measure_batch_kriging_time(
    *,
    n_support: int = 4,
    n_queries: int = 64,
    num_variables: int = 10,
    repetitions: int = 20,
    seed: int = 0,
) -> float:
    """Mean wall-clock seconds *per query* of one batched interpolation.

    Measures :func:`~repro.core.kriging.ordinary_kriging_batch` over a
    shared support set — the amortized per-query cost the batch engine
    achieves when a sweep's interpolations share their support, to compare
    against :func:`measure_kriging_time` (the per-call cost the Eq. 2 model
    uses for ``t_krig``).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    rng = np.random.default_rng(seed)
    points = rng.integers(4, 16, size=(n_support, num_variables)).astype(float)
    values = rng.normal(-60.0, 5.0, size=n_support)
    queries = rng.integers(4, 16, size=(n_queries, num_variables)).astype(float)
    variogram = LinearVariogram(1.0)

    ordinary_kriging_batch(points, values, queries, variogram)  # warm-up
    start = time.perf_counter()
    for _ in range(repetitions):
        ordinary_kriging_batch(points, values, queries, variogram)
    return (time.perf_counter() - start) / (repetitions * n_queries)


def measure_grouped_kriging_time(
    *,
    n_groups: int = 64,
    n_support: int = 24,
    n_queries: int = 8,
    num_variables: int = 10,
    repetitions: int = 5,
    n_jobs: int | None = 1,
    backend: str = "thread",
    seed: int = 0,
) -> float:
    """Mean wall-clock seconds *per query* of a grouped, optionally parallel
    solve.

    Measures :func:`~repro.core.kriging.ordinary_kriging_grouped` over
    ``n_groups`` independent shared-support groups — the shape of work the
    batch engine's flush produces on a sweep that visits many neighbourhoods
    — so the ``n_jobs`` scaling of the group-parallel path (on the thread or
    process ``backend``) can be compared against the sequential grouped cost
    (``n_jobs=1``).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    rng = np.random.default_rng(seed)
    groups = []
    for _ in range(n_groups):
        points = rng.integers(4, 16, size=(n_support, num_variables)).astype(float)
        values = rng.normal(-60.0, 5.0, size=n_support)
        queries = rng.integers(4, 16, size=(n_queries, num_variables)).astype(float)
        groups.append((points, values, queries))
    variogram = LinearVariogram(1.0)

    # One long-lived pool across warm-up and repetitions (as the estimator
    # keeps one per instance): without it every call would rebuild the
    # executor and a process-backend measurement would mostly time pool
    # startup rather than the solves.
    workers = resolve_n_jobs(n_jobs)
    executor: Executor | None = None
    if workers > 1:
        if backend == "process":
            executor = ProcessPoolExecutor(max_workers=workers)
        else:
            executor = ThreadPoolExecutor(max_workers=workers)
    try:
        ordinary_kriging_grouped(
            groups, variogram, n_jobs=n_jobs, backend=backend, executor=executor
        )
        start = time.perf_counter()
        for _ in range(repetitions):
            ordinary_kriging_grouped(
                groups, variogram, n_jobs=n_jobs, backend=backend, executor=executor
            )
        return (time.perf_counter() - start) / (repetitions * n_groups * n_queries)
    finally:
        if executor is not None:
            executor.shutdown(wait=True)


def measure_simulation_time(simulate, configuration, *, repetitions: int = 3) -> float:
    """Mean wall-clock seconds of one reference simulation."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    simulate(configuration)  # warm-up
    start = time.perf_counter()
    for _ in range(repetitions):
        simulate(configuration)
    return (time.perf_counter() - start) / repetitions
