"""Fixed-point arithmetic substrate.

This package provides the bit-accurate quantization machinery that the
benchmark kernels (:mod:`repro.signal`, :mod:`repro.video`) use to emulate
finite-precision implementations, together with the error metrics of the
paper:

* :class:`~repro.fixedpoint.qformat.QFormat` — signed/unsigned Q-format
  descriptions (word-length, fractional bits, saturation bounds);
* :func:`~repro.fixedpoint.quantize.quantize` — vectorized rounding /
  truncation with saturation or wrap-around overflow;
* :class:`~repro.fixedpoint.simulate.QuantizationNode` — a named internal
  signal whose fractional precision is driven by a word-length variable;
* :mod:`~repro.fixedpoint.noise` — noise power, dB conversion, the
  equivalent-number-of-bits transform (paper Eq. 11) and the relative
  difference (paper Eq. 12).
"""

from repro.fixedpoint.noise import (
    bit_difference,
    db_to_power,
    equivalent_bits,
    noise_power,
    noise_power_db,
    power_to_db,
    relative_difference,
    uniform_quantization_noise_power,
)
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import Overflow, Rounding, quantize
from repro.fixedpoint.simulate import FixedPointSimulator, QuantizationNode

__all__ = [
    "QFormat",
    "Rounding",
    "Overflow",
    "quantize",
    "QuantizationNode",
    "FixedPointSimulator",
    "noise_power",
    "noise_power_db",
    "power_to_db",
    "db_to_power",
    "equivalent_bits",
    "bit_difference",
    "relative_difference",
    "uniform_quantization_noise_power",
]
