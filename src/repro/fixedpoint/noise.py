"""Error metrics for approximate implementations.

Implements the three metric transforms used throughout the paper:

* output **noise power** ``P = E[(y_approx - y_ref)^2]`` (the accuracy metric
  of the FIR / IIR / FFT / HEVC benchmarks, reported in dB);
* the **equivalent number of bits** of a noise power and the bit-valued
  interpolation error (Eq. 11);
* the **relative difference** ``|l_hat - l| / l`` (Eq. 12) used for the
  SqueezeNet classification-rate metric.

Two bit conventions exist:

* ``"physical"`` (default) — a uniform quantizer with ``n`` fractional bits
  produces ``P = (2^-n)^2 / 12 = 2^(-2n) / 12``, so one bit of precision is
  worth 6.02 dB and the error between two powers is
  ``eps = |log2(P_hat/P)| / 2``;
* ``"paper"`` — the literal Eq. 11 (``P = 2^(-n) / 12``,
  ``eps = |log2(P_hat/P)|``), which counts 3.01 dB per "bit" and therefore
  reports exactly twice the physical value.

The physical convention is used throughout the reproduced tables; see
DESIGN.md for the discussion.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "noise_power",
    "noise_power_db",
    "power_to_db",
    "db_to_power",
    "equivalent_bits",
    "bit_difference",
    "relative_difference",
    "uniform_quantization_noise_power",
]

_MIN_POWER = 1e-300
"""Floor applied before logarithms so exact-match simulations stay finite."""


def noise_power(approx: np.ndarray, reference: np.ndarray) -> float:
    """Mean-square error between an approximate and a reference output.

    Parameters
    ----------
    approx, reference:
        Arrays of identical shape (real or complex).

    Returns
    -------
    float
        ``mean(|approx - reference|^2)``.
    """
    a = np.asarray(approx)
    r = np.asarray(reference)
    if a.shape != r.shape:
        raise ValueError(f"shape mismatch: approx {a.shape} vs reference {r.shape}")
    if a.size == 0:
        raise ValueError("noise_power requires non-empty arrays")
    diff = a.astype(np.complex128) - r.astype(np.complex128)
    return float(np.mean(diff.real**2 + diff.imag**2))


def power_to_db(power: float) -> float:
    """Convert a linear power to decibels, flooring at ``1e-300``."""
    return 10.0 * math.log10(max(float(power), _MIN_POWER))


def db_to_power(power_db: float) -> float:
    """Convert a power in decibels back to linear scale."""
    return 10.0 ** (float(power_db) / 10.0)


def noise_power_db(approx: np.ndarray, reference: np.ndarray) -> float:
    """Noise power between ``approx`` and ``reference``, in dB."""
    return power_to_db(noise_power(approx, reference))


def uniform_quantization_noise_power(step: float) -> float:
    """Noise power of a uniform quantizer with step ``step`` (``step^2 / 12``)."""
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    return step * step / 12.0


def _bits_per_log2(convention: str) -> float:
    if convention == "physical":
        return 0.5
    if convention == "paper":
        return 1.0
    raise ValueError(f"convention must be 'physical' or 'paper', got {convention!r}")


def equivalent_bits(power: float, *, convention: str = "physical") -> float:
    """Equivalent number of bits of a noise power.

    Physical convention: ``P = 2^(-2n)/12`` gives ``n = -log2(12 P) / 2``.
    Paper convention (Eq. 11 environment): ``P = 2^(-n)/12`` gives
    ``n = -log2(12 P)``.
    """
    scale = _bits_per_log2(convention)
    return -scale * math.log2(12.0 * max(float(power), _MIN_POWER))


def bit_difference(
    power_hat: float, power_true: float, *, convention: str = "physical"
) -> float:
    """Interpolation error in equivalent bits between two linear powers (Eq. 11).

    Physical convention: ``eps = |log2(P_hat / P_true)| / 2`` (6.02 dB per
    bit); the paper's literal convention drops the factor 2.
    """
    scale = _bits_per_log2(convention)
    p_hat = max(float(power_hat), _MIN_POWER)
    p_true = max(float(power_true), _MIN_POWER)
    return scale * abs(math.log2(p_hat / p_true))


def bit_difference_db(
    power_hat_db: float, power_true_db: float, *, convention: str = "physical"
) -> float:
    """Interpolation error in equivalent bits from powers given in dB.

    ``|log2(P_hat/P)| = |P_hat_dB - P_dB| / (10 log10 2)``, scaled by the
    bit convention (physical: half of that, i.e. 6.02 dB per bit).
    """
    scale = _bits_per_log2(convention)
    return scale * abs(float(power_hat_db) - float(power_true_db)) / (10.0 * math.log10(2.0))


def relative_difference(value_hat: float, value_true: float) -> float:
    """Relative interpolation error (paper Eq. 12).

    ``eps = |l_hat - l| / |l|``.  Raises if the true value is zero, since the
    paper's metric is undefined there.
    """
    truth = float(value_true)
    if truth == 0.0:
        raise ZeroDivisionError("relative_difference undefined for a zero true value")
    return abs(float(value_hat) - truth) / abs(truth)


__all__.append("bit_difference_db")
