"""Q-format descriptions for fixed-point signals.

A fixed-point format is written ``Q(i, f)``: ``i`` integer bits, ``f``
fractional bits, plus one sign bit when signed.  The total word-length is
``w = sign + i + f``.  During word-length optimization the integer part of
every internal signal is pinned by dynamic-range analysis, and the optimizer
trades fractional bits (hence quantization noise) for cost — exactly the
setting of the paper's ``min+1 bit`` experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QFormat"]


@dataclass(frozen=True)
class QFormat:
    """A fixed-point number format.

    Parameters
    ----------
    integer_bits:
        Number of bits for the integer part (excluding the sign bit).
        May be negative for signals known to be much smaller than one
        (each negative integer bit halves the representable range).
    frac_bits:
        Number of fractional bits; must make the total word-length positive.
    signed:
        Whether a sign bit is present (two's complement semantics).

    Examples
    --------
    >>> fmt = QFormat(integer_bits=0, frac_bits=7)   # signed Q0.7, w = 8
    >>> fmt.word_length
    8
    >>> fmt.step
    0.0078125
    """

    integer_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.integer_bits, int) or isinstance(self.integer_bits, bool):
            raise TypeError(f"integer_bits must be int, got {type(self.integer_bits).__name__}")
        if not isinstance(self.frac_bits, int) or isinstance(self.frac_bits, bool):
            raise TypeError(f"frac_bits must be int, got {type(self.frac_bits).__name__}")
        if self.word_length < 1:
            raise ValueError(
                f"word length must be >= 1, got {self.word_length} "
                f"(integer_bits={self.integer_bits}, frac_bits={self.frac_bits}, "
                f"signed={self.signed})"
            )

    @property
    def word_length(self) -> int:
        """Total number of bits (sign + integer + fractional)."""
        return int(self.signed) + self.integer_bits + self.frac_bits

    @property
    def step(self) -> float:
        """Quantization step (weight of the least-significant bit)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0**self.integer_bits - self.step

    @property
    def min_value(self) -> float:
        """Smallest representable value (0 when unsigned)."""
        return -(2.0**self.integer_bits) if self.signed else 0.0

    @property
    def levels(self) -> int:
        """Number of representable codes, ``2 ** word_length``."""
        return 2**self.word_length

    def with_word_length(self, word_length: int) -> "QFormat":
        """Return a format with the same integer part but ``word_length`` total bits.

        This is the transform used by word-length optimization: the dynamic
        range (integer bits) of an internal signal is fixed; shrinking the
        word shaves fractional bits.
        """
        if not isinstance(word_length, int) or isinstance(word_length, bool):
            raise TypeError(f"word_length must be int, got {type(word_length).__name__}")
        frac = word_length - int(self.signed) - self.integer_bits
        return QFormat(integer_bits=self.integer_bits, frac_bits=frac, signed=self.signed)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the representable range."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        prefix = "Q" if self.signed else "UQ"
        return f"{prefix}{self.integer_bits}.{self.frac_bits}"
