"""Vectorized quantization with configurable rounding and overflow modes.

The quantizer is the single primitive every fixed-point benchmark kernel is
built from: FIR/IIR/FFT data paths and the HEVC interpolation pipeline all
insert :func:`quantize` calls at their internal nodes.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.fixedpoint.qformat import QFormat

__all__ = ["Rounding", "Overflow", "quantize"]


class Rounding(enum.Enum):
    """Rounding mode applied when discarding fractional bits."""

    NEAREST = "nearest"
    """Round to nearest, ties away from zero (DSP-style rounding)."""

    TRUNCATE = "truncate"
    """Round toward minus infinity (two's-complement truncation)."""

    CONVERGENT = "convergent"
    """Round to nearest, ties to even (unbiased convergent rounding)."""


class Overflow(enum.Enum):
    """Overflow mode applied when a value exceeds the representable range."""

    SATURATE = "saturate"
    """Clamp to the closest representable bound."""

    WRAP = "wrap"
    """Two's-complement wrap-around."""


def _round(scaled: np.ndarray, rounding: Rounding) -> np.ndarray:
    if rounding is Rounding.TRUNCATE:
        return np.floor(scaled)
    if rounding is Rounding.NEAREST:
        # Ties away from zero: floor(|x| + 0.5) * sign(x).
        return np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
    if rounding is Rounding.CONVERGENT:
        return np.rint(scaled)
    raise TypeError(f"unsupported rounding mode: {rounding!r}")


def _overflow(codes: np.ndarray, fmt: QFormat, overflow: Overflow) -> np.ndarray:
    min_code = fmt.min_value / fmt.step
    max_code = fmt.max_value / fmt.step
    if overflow is Overflow.SATURATE:
        return np.clip(codes, min_code, max_code)
    if overflow is Overflow.WRAP:
        span = fmt.levels
        return (codes - min_code) % span + min_code
    raise TypeError(f"unsupported overflow mode: {overflow!r}")


def quantize(
    values: np.ndarray | float,
    fmt: QFormat,
    *,
    rounding: Rounding = Rounding.NEAREST,
    overflow: Overflow = Overflow.SATURATE,
) -> np.ndarray:
    """Quantize ``values`` to the fixed-point format ``fmt``.

    Parameters
    ----------
    values:
        Scalar or array of real values.
    fmt:
        Target :class:`~repro.fixedpoint.qformat.QFormat`.
    rounding:
        How to resolve discarded fractional bits.
    overflow:
        How to resolve values outside the representable range.

    Returns
    -------
    numpy.ndarray
        Array of the same shape holding exactly representable values.

    Examples
    --------
    >>> import numpy as np
    >>> fmt = QFormat(integer_bits=0, frac_bits=3)
    >>> quantize(np.array([0.3, -0.3]), fmt)
    array([ 0.25, -0.25])
    """
    array = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        raise ValueError("quantize received non-finite values")
    scaled = array / fmt.step
    codes = _round(scaled, rounding)
    codes = _overflow(codes, fmt, overflow)
    return codes * fmt.step
