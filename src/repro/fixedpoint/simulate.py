"""Word-length-driven quantization nodes.

A benchmark kernel declares one :class:`QuantizationNode` per internal signal
whose precision is exposed to the optimizer.  The node pins the *integer*
part of the signal's format (obtained from dynamic-range analysis once, when
the kernel is built) and converts a *word-length* — the quantity the
optimizer manipulates — into a concrete :class:`~repro.fixedpoint.qformat.QFormat`.

:class:`FixedPointSimulator` groups the nodes of a kernel and binds a
word-length vector, so the kernel body reads as
``sim.apply("acc", accumulator_values)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import Overflow, Rounding, quantize

__all__ = ["QuantizationNode", "FixedPointSimulator"]


@dataclass(frozen=True)
class QuantizationNode:
    """A named internal signal with an optimizable word-length.

    Parameters
    ----------
    name:
        Identifier of the node (used in traces and error messages).
    integer_bits:
        Integer bits of the node's format, fixed by range analysis.
    signed:
        Signedness of the node.
    rounding / overflow:
        Quantization behaviour of the hardware operator modelled.
    """

    name: str
    integer_bits: int
    signed: bool = True
    rounding: Rounding = Rounding.NEAREST
    overflow: Overflow = Overflow.SATURATE

    def format_for(self, word_length: int) -> QFormat:
        """Q-format of this node under a total word-length of ``word_length``."""
        frac = int(word_length) - int(self.signed) - self.integer_bits
        return QFormat(integer_bits=self.integer_bits, frac_bits=frac, signed=self.signed)

    def apply(self, values: np.ndarray, word_length: int) -> np.ndarray:
        """Quantize ``values`` as this node would at ``word_length`` bits."""
        fmt = self.format_for(word_length)
        return quantize(values, fmt, rounding=self.rounding, overflow=self.overflow)


@dataclass
class FixedPointSimulator:
    """Binds a kernel's quantization nodes to a word-length vector.

    The node order defines the meaning of the word-length vector components:
    ``word_lengths[i]`` drives ``nodes[i]``.

    Examples
    --------
    >>> nodes = [QuantizationNode("mul", 0), QuantizationNode("acc", 3)]
    >>> sim = FixedPointSimulator(nodes)
    >>> sim.bind([8, 12])
    >>> sim.word_length("acc")
    12
    """

    nodes: list[QuantizationNode]
    _word_lengths: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")

    @property
    def node_names(self) -> list[str]:
        """Node names in word-length-vector order."""
        return [node.name for node in self.nodes]

    @property
    def num_variables(self) -> int:
        """Number of optimizable word-length variables (``Nv``)."""
        return len(self.nodes)

    def bind(self, word_lengths: object) -> None:
        """Attach a word-length vector (one entry per node, in node order)."""
        vector = np.asarray(word_lengths, dtype=np.int64)
        if vector.ndim != 1 or vector.size != len(self.nodes):
            raise ValueError(
                f"expected {len(self.nodes)} word-lengths, got shape {vector.shape}"
            )
        if np.any(vector < 1):
            raise ValueError(f"word-lengths must be >= 1, got {vector!r}")
        self._word_lengths = {
            node.name: int(w) for node, w in zip(self.nodes, vector)
        }

    def word_length(self, name: str) -> int:
        """Word-length currently bound to node ``name``."""
        if name not in self._word_lengths:
            raise KeyError(f"no word-length bound for node {name!r}")
        return self._word_lengths[name]

    def apply(self, name: str, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` at node ``name`` with its bound word-length."""
        node = self._node(name)
        return node.apply(values, self.word_length(name))

    def _node(self, name: str) -> QuantizationNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"unknown quantization node {name!r}")
