"""SqueezeNet-style CNN benchmark for error-sensitivity analysis (``Nv = 10``).

The paper's fifth benchmark injects an error source at the output of each of
the ten layers of a SqueezeNet image classifier (conv1, eight fire modules,
conv10) and searches for the maximal tolerated error powers under a
classification-rate constraint.

This package provides a from-scratch numpy implementation:

* :mod:`~repro.neural.layers` — conv2d / relu / maxpool / global-avg-pool;
* :mod:`~repro.neural.squeezenet` — the fire-module architecture with
  deterministic weights and named injection points;
* :mod:`~repro.neural.dataset` — a procedurally generated labelled image set
  standing in for the paper's 1000-image set;
* :mod:`~repro.neural.injection` — the error-source model (level grid →
  noise power) and deterministic noise injection;
* :mod:`~repro.neural.classification` — the ``pcl`` metric (probability of
  matching the error-free classification).
"""

from repro.neural.classification import classification_match_rate
from repro.neural.dataset import SyntheticImageDataset
from repro.neural.error_models import (
    BitFlipErrorModel,
    ErrorModel,
    GaussianErrorModel,
    UniformErrorModel,
)
from repro.neural.injection import ErrorSourceGrid, SensitivityBenchmark
from repro.neural.squeezenet import SqueezeNetModel

__all__ = [
    "SqueezeNetModel",
    "SyntheticImageDataset",
    "ErrorSourceGrid",
    "SensitivityBenchmark",
    "classification_match_rate",
    "ErrorModel",
    "GaussianErrorModel",
    "UniformErrorModel",
    "BitFlipErrorModel",
]
