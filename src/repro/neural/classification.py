"""The ``pcl`` quality metric.

The paper's SqueezeNet benchmark measures "the probability to have the same
classification as the one predicted by the reference, i.e. the
classification obtained without error injection".
"""

from __future__ import annotations

import numpy as np

__all__ = ["classification_match_rate"]


def classification_match_rate(
    noisy_predictions: np.ndarray, reference_predictions: np.ndarray
) -> float:
    """Fraction of inputs whose noisy prediction matches the clean one.

    Parameters
    ----------
    noisy_predictions, reference_predictions:
        Integer class indices of identical shape.

    Returns
    -------
    float
        ``pcl`` in ``[0, 1]``.
    """
    noisy = np.asarray(noisy_predictions)
    ref = np.asarray(reference_predictions)
    if noisy.shape != ref.shape:
        raise ValueError(f"shape mismatch: {noisy.shape} vs {ref.shape}")
    if noisy.size == 0:
        raise ValueError("classification_match_rate requires non-empty arrays")
    return float(np.mean(noisy == ref))
