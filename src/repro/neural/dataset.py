"""Procedurally generated labelled image set.

Stands in for the paper's 1000-image classification set.  Each "class" is a
procedural texture family (oriented gratings with class-specific frequency
and color balance) plus instance noise, so the clean network's predictions
are stable, diverse and have non-trivial decision margins — the properties
the sensitivity analysis depends on.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng

__all__ = ["SyntheticImageDataset"]


class SyntheticImageDataset:
    """Deterministic synthetic image batch of shape ``(n_images, 3, size, size)``.

    Parameters
    ----------
    n_images:
        Number of images (the paper uses 1000).
    size:
        Spatial size (32 matches the model's designed operating point).
    n_classes:
        Number of procedural texture families.
    seed:
        Generator seed; the same seed always yields the same images.
    """

    def __init__(
        self,
        *,
        n_images: int = 1000,
        size: int = 32,
        n_classes: int = 10,
        seed: int = 11,
    ) -> None:
        if n_images <= 0:
            raise ValueError(f"n_images must be > 0, got {n_images}")
        if size < 8:
            raise ValueError(f"size must be >= 8, got {size}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_images = n_images
        self.size = size
        self.n_classes = n_classes
        self.seed = seed
        self.images, self.labels = self._generate()

    def _generate(self) -> tuple[np.ndarray, np.ndarray]:
        rng = derive_rng(self.seed, "dataset")
        size = self.size
        y, x = np.mgrid[0:size, 0:size].astype(np.float64) / size

        images = np.empty((self.n_images, 3, size, size))
        labels = rng.integers(0, self.n_classes, size=self.n_images)
        for i in range(self.n_images):
            cls = int(labels[i])
            angle = np.pi * cls / self.n_classes + rng.normal(0.0, 0.05)
            freq = 2.0 + cls + rng.normal(0.0, 0.2)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            grating = np.sin(
                2.0 * np.pi * freq * (np.cos(angle) * x + np.sin(angle) * y) + phase
            )
            color = 0.5 + 0.4 * np.sin(
                2.0 * np.pi * (cls / self.n_classes + np.arange(3) / 3.0)
            )
            base = 0.5 + 0.35 * grating
            for c in range(3):
                images[i, c] = color[c] * base
            images[i] += rng.normal(0.0, 0.05, size=(3, size, size))
        return np.clip(images, 0.0, 1.0), labels.astype(np.int64)

    def __len__(self) -> int:
        return self.n_images
