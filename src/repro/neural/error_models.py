"""Error-source models for the sensitivity analysis.

The paper injects "error sources" of configurable power at each layer
output without committing to a distribution.  Besides the Gaussian model
(the default used for Table I), two other standard approximate-computing
error shapes are provided:

* **uniform** — matches quantization-style errors (e.g. truncated LSBs);
* **bit-flip** — sparse large-magnitude errors (e.g. voltage-overscaling
  timing faults): each activation is hit with small probability by an error
  of fixed magnitude, scaled so the configured average power is preserved.

All models draw from a caller-supplied generator so the
deterministic-per-configuration property of
:class:`~repro.neural.injection.SensitivityBenchmark` is preserved.
"""

from __future__ import annotations

import abc
import math

import numpy as np

__all__ = ["ErrorModel", "GaussianErrorModel", "UniformErrorModel", "BitFlipErrorModel"]


class ErrorModel(abc.ABC):
    """Additive error source with a configurable average power."""

    @abc.abstractmethod
    def sample(
        self, rng: np.random.Generator, shape: tuple[int, ...], power: float
    ) -> np.ndarray:
        """Draw an error tensor of the given ``shape`` and average ``power``."""

    def inject(
        self, rng: np.random.Generator, activations: np.ndarray, power: float
    ) -> np.ndarray:
        """Return ``activations`` plus a fresh error realization."""
        if power <= 0.0:
            return activations
        return activations + self.sample(rng, activations.shape, power)


class GaussianErrorModel(ErrorModel):
    """Zero-mean white Gaussian error (the default model)."""

    def sample(
        self, rng: np.random.Generator, shape: tuple[int, ...], power: float
    ) -> np.ndarray:
        return rng.normal(0.0, math.sqrt(power), size=shape)


class UniformErrorModel(ErrorModel):
    """Zero-mean uniform error: amplitude ``a = sqrt(3 P)`` gives power P."""

    def sample(
        self, rng: np.random.Generator, shape: tuple[int, ...], power: float
    ) -> np.ndarray:
        amplitude = math.sqrt(3.0 * power)
        return rng.uniform(-amplitude, amplitude, size=shape)


class BitFlipErrorModel(ErrorModel):
    """Sparse +/-M errors with hit probability ``p``: ``P = p * M^2``.

    Parameters
    ----------
    flip_probability:
        Per-element probability of being hit; the magnitude is derived from
        the requested power (``M = sqrt(P / p)``), so rarer hits are larger —
        the signature of timing-error-style faults.
    """

    def __init__(self, flip_probability: float = 1e-3) -> None:
        if not 0.0 < flip_probability <= 1.0:
            raise ValueError(
                f"flip_probability must be in (0, 1], got {flip_probability}"
            )
        self.flip_probability = flip_probability

    def sample(
        self, rng: np.random.Generator, shape: tuple[int, ...], power: float
    ) -> np.ndarray:
        magnitude = math.sqrt(power / self.flip_probability)
        hits = rng.random(size=shape) < self.flip_probability
        signs = rng.choice([-1.0, 1.0], size=shape)
        return np.where(hits, magnitude * signs, 0.0)
