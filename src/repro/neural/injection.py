"""Error-source model and injection harness for the sensitivity analysis.

The paper's SqueezeNet experiment assigns each of the ten layer outputs an
error source of configurable *power*; the optimization searches the maximal
tolerated powers under a ``pcl`` constraint.  To make the configuration
space a discrete hypercube (as required by the L1-distance kriging policy),
powers live on a logarithmic grid indexed by an integer **protection level**:

* level ``k`` maps to noise power ``base_db - step_db * k`` (dB),
* a *higher* level therefore means *less* injected noise and better quality —
  the same per-variable monotonicity as word-lengths, so the two problem
  families share the optimizer machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.noise import db_to_power
from repro.neural.classification import classification_match_rate
from repro.neural.dataset import SyntheticImageDataset
from repro.neural.error_models import ErrorModel, GaussianErrorModel
from repro.neural.squeezenet import INJECTION_POINTS, SqueezeNetModel
from repro.utils.rng import derive_rng
from repro.utils.validation import check_integer_vector

__all__ = ["ErrorSourceGrid", "SensitivityBenchmark"]


@dataclass(frozen=True)
class ErrorSourceGrid:
    """Mapping between integer protection levels and noise powers.

    Parameters
    ----------
    base_db:
        Noise power (dB) at level 0.
    step_db:
        Power reduction per level (dB); each level step divides the injected
        noise power by ``10^(step_db/10)``.
    max_level:
        Largest usable level.
    """

    base_db: float = 0.0
    step_db: float = 6.0
    max_level: int = 16

    def __post_init__(self) -> None:
        if self.step_db <= 0:
            raise ValueError(f"step_db must be > 0, got {self.step_db}")
        if self.max_level < 2:
            raise ValueError(f"max_level must be >= 2, got {self.max_level}")

    def power_db(self, level: int) -> float:
        """Noise power in dB for a protection ``level``."""
        return self.base_db - self.step_db * float(level)

    def power(self, level: int) -> float:
        """Linear noise power for a protection ``level``."""
        return db_to_power(self.power_db(level))

    def std(self, level: int) -> float:
        """Standard deviation of the injected Gaussian noise at ``level``."""
        return float(np.sqrt(self.power(level)))


class SensitivityBenchmark:
    """SqueezeNet error-sensitivity benchmark (paper Table I, last rows).

    Evaluating a configuration runs one forward pass of the full image set
    with zero-mean Gaussian noise of the configured power added at each of
    the ten injection points, then returns ``pcl`` — the fraction of images
    classified identically to the clean reference run.

    The noise realization is a deterministic function of ``(seed, levels)``,
    so repeated evaluations of a configuration agree exactly (a requirement
    of the record-then-replay methodology used for Table I).

    Parameters
    ----------
    n_images:
        Data-set size (paper: 1000).
    grid:
        Level-to-power mapping shared by all ten sources.
    seed:
        Master seed for weights, images and noise.
    error_model:
        Shape of the injected errors (defaults to the Gaussian model; see
        :mod:`repro.neural.error_models` for uniform and bit-flip variants).
    """

    NUM_VARIABLES = len(INJECTION_POINTS)
    VARIABLE_NAMES = INJECTION_POINTS

    def __init__(
        self,
        *,
        n_images: int = 1000,
        image_size: int = 32,
        grid: ErrorSourceGrid | None = None,
        seed: int = 5,
        error_model: ErrorModel | None = None,
    ) -> None:
        self.grid = grid if grid is not None else ErrorSourceGrid()
        self.seed = seed
        self.error_model = error_model if error_model is not None else GaussianErrorModel()
        self.model = SqueezeNetModel(seed=seed)
        self.dataset = SyntheticImageDataset(
            n_images=n_images, size=image_size, seed=seed
        )
        self.reference_predictions = self.model.predict(self.dataset.images)

    def evaluate(self, levels: object) -> float:
        """``pcl`` for a 10-vector of protection levels (higher = less noise)."""
        lv = check_integer_vector("levels", levels, minimum=0)
        if lv.size != self.NUM_VARIABLES:
            raise ValueError(f"expected {self.NUM_VARIABLES} levels, got {lv.size}")
        rng = derive_rng(self.seed, "inject", tuple(int(v) for v in lv))
        powers = {
            name: self.grid.power(int(level))
            for name, level in zip(INJECTION_POINTS, lv)
        }

        def perturb(name: str, activations: np.ndarray) -> np.ndarray:
            return self.error_model.inject(rng, activations, powers[name])

        noisy = self.model.predict(self.dataset.images, perturb=perturb)
        return classification_match_rate(noisy, self.reference_predictions)

    def classification_rate(self, levels: object) -> float:
        """Alias of :meth:`evaluate` (the quality metric of the paper)."""
        return self.evaluate(levels)
