"""Minimal numpy CNN layers (NCHW layout).

Only what a SqueezeNet-style classifier needs: 2-D convolution (via
``sliding_window_view`` + ``einsum``), ReLU, 2x2 max-pooling and global
average pooling.  All functions are pure and operate on float64 batches of
shape ``(N, C, H, W)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv2d", "relu", "maxpool2d", "global_avg_pool"]


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution (cross-correlation, as in every DL framework).

    Parameters
    ----------
    x:
        Input batch ``(N, C, H, W)``.
    weights:
        Filter bank ``(F, C, kh, kw)``.
    bias:
        Optional per-filter bias ``(F,)``.
    stride:
        Spatial stride (same in both dimensions).
    padding:
        Zero-padding applied to both spatial dimensions.

    Returns
    -------
    numpy.ndarray
        Output batch ``(N, F, H', W')``.
    """
    if x.ndim != 4:
        raise ValueError(f"x must be (N, C, H, W), got shape {x.shape}")
    if weights.ndim != 4:
        raise ValueError(f"weights must be (F, C, kh, kw), got shape {weights.shape}")
    if x.shape[1] != weights.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weights expect {weights.shape[1]}"
        )
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")

    kh, kw = weights.shape[2], weights.shape[3]
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    if x.shape[2] < kh or x.shape[3] < kw:
        raise ValueError(
            f"input {x.shape[2]}x{x.shape[3]} smaller than kernel {kh}x{kw}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    out = np.einsum("nchwij,fcij->nfhw", windows, weights, optimize=True)
    if bias is not None:
        out += bias[None, :, None, None]
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def maxpool2d(x: np.ndarray, *, size: int = 2, stride: int | None = None) -> np.ndarray:
    """Max pooling over ``size x size`` windows (default non-overlapping)."""
    if x.ndim != 4:
        raise ValueError(f"x must be (N, C, H, W), got shape {x.shape}")
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    stride = size if stride is None else stride
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    windows = np.lib.stride_tricks.sliding_window_view(x, (size, size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    return windows.max(axis=(4, 5))


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Average over both spatial dimensions: ``(N, C, H, W) -> (N, C)``."""
    if x.ndim != 4:
        raise ValueError(f"x must be (N, C, H, W), got shape {x.shape}")
    return x.mean(axis=(2, 3))
