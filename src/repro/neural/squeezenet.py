"""SqueezeNet-style classifier with named error-injection points.

The architecture mirrors SqueezeNet v1.0 (Iandola et al., 2016) at reduced
scale: a stem convolution, eight fire modules (squeeze 1x1 → expand 1x1 ∥
expand 3x3) with interspersed max-pooling, and a final 1x1 class convolution
followed by global average pooling.  The ten layer outputs — conv1, fire1-8,
conv10 — are the paper's ten error-injection points.

Weights are deterministic (He initialization from a seeded generator): the
``pcl`` metric compares noisy predictions against the *same network's*
error-free predictions, so no training is required for the benchmark to be
meaningful — only a stable, non-degenerate decision function.  To get one, a
calibration pass on a seeded image batch fixes (a) a per-channel affine
normalization of the fire8 features (a folded batch-norm) and (b) the conv10
biases so the average logit of every class is zero; without this, random
class biases drown the per-image feature variation and a single class wins
every argmax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.neural.layers import conv2d, global_avg_pool, maxpool2d, relu
from repro.utils.rng import derive_rng

__all__ = ["FireModule", "SqueezeNetModel", "INJECTION_POINTS"]

INJECTION_POINTS = (
    "conv1",
    "fire1",
    "fire2",
    "fire3",
    "fire4",
    "fire5",
    "fire6",
    "fire7",
    "fire8",
    "conv10",
)
"""The ten named layer outputs where error sources are injected."""


def _he_conv(rng: np.random.Generator, f: int, c: int, k: int) -> np.ndarray:
    scale = np.sqrt(2.0 / (c * k * k))
    return rng.normal(0.0, scale, size=(f, c, k, k))


@dataclass
class FireModule:
    """A SqueezeNet fire module: squeeze 1x1 → (expand 1x1 ∥ expand 3x3)."""

    squeeze_w: np.ndarray
    squeeze_b: np.ndarray
    expand1_w: np.ndarray
    expand1_b: np.ndarray
    expand3_w: np.ndarray
    expand3_b: np.ndarray

    @classmethod
    def create(
        cls,
        rng: np.random.Generator,
        in_channels: int,
        squeeze: int,
        expand: int,
    ) -> "FireModule":
        """Build a fire module with He-initialized weights.

        ``expand`` is the channel count of *each* expand branch; the module
        output has ``2 * expand`` channels.
        """
        return cls(
            squeeze_w=_he_conv(rng, squeeze, in_channels, 1),
            squeeze_b=np.zeros(squeeze),
            expand1_w=_he_conv(rng, expand, squeeze, 1),
            expand1_b=np.zeros(expand),
            expand3_w=_he_conv(rng, expand, squeeze, 3),
            expand3_b=np.zeros(expand),
        )

    @property
    def out_channels(self) -> int:
        """Channels produced by the module (both expand branches)."""
        return self.expand1_w.shape[0] + self.expand3_w.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the module to a batch ``(N, C, H, W)``."""
        s = relu(conv2d(x, self.squeeze_w, self.squeeze_b))
        e1 = conv2d(s, self.expand1_w, self.expand1_b)
        e3 = conv2d(s, self.expand3_w, self.expand3_b, padding=1)
        return relu(np.concatenate([e1, e3], axis=1))


class SqueezeNetModel:
    """Reduced-scale SqueezeNet with ten injection points.

    Parameters
    ----------
    n_classes:
        Number of output classes (10 by default).
    seed:
        Seed of the deterministic weight initialization.

    Notes
    -----
    Layer schedule for 32x32 inputs::

        conv1 3x3x16 → pool → fire1..2 (16ch) → pool → fire3..4 (32ch)
        → pool → fire5..6 (32/48ch) → fire7..8 (48/64ch) → conv10 1x1 → GAP
    """

    def __init__(self, *, n_classes: int = 10, seed: int = 7) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        rng = derive_rng(seed, "squeezenet", "weights")
        self.n_classes = n_classes

        self.conv1_w = _he_conv(rng, 16, 3, 3)
        self.conv1_b = np.zeros(16)
        self.fires = [
            FireModule.create(rng, 16, 4, 8),   # fire1 -> 16ch
            FireModule.create(rng, 16, 4, 8),   # fire2 -> 16ch
            FireModule.create(rng, 16, 8, 16),  # fire3 -> 32ch
            FireModule.create(rng, 32, 8, 16),  # fire4 -> 32ch
            FireModule.create(rng, 32, 8, 16),  # fire5 -> 32ch
            FireModule.create(rng, 32, 12, 24), # fire6 -> 48ch
            FireModule.create(rng, 48, 12, 24), # fire7 -> 48ch
            FireModule.create(rng, 48, 16, 32), # fire8 -> 64ch
        ]
        self.conv10_w = _he_conv(rng, n_classes, 64, 1)
        self.conv10_b = np.zeros(n_classes)
        # Pools after fire2 and fire4 (plus the stem pool after conv1).
        self._pool_after = {1, 3}
        # Folded-BN feature normalization, identity until calibration.
        self._feat_shift = np.zeros(64)
        self._feat_scale = np.ones(64)
        self._calibrate(seed)

    @property
    def num_injection_points(self) -> int:
        """Number of error-injection points (``Nv = 10``)."""
        return len(INJECTION_POINTS)

    def _trunk(
        self, images: np.ndarray, tap: Callable[[str, np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Feature extractor: conv1 + fire1-8 with injection taps."""
        x = relu(conv2d(images, self.conv1_w, self.conv1_b, padding=1))
        x = tap("conv1", x)
        x = maxpool2d(x)
        for index, fire in enumerate(self.fires):
            x = fire.forward(x)
            x = tap(f"fire{index + 1}", x)
            if index in self._pool_after:
                x = maxpool2d(x)
        return x

    def _calibrate(self, seed: int) -> None:
        """Fix the folded-BN feature normalization and class-balanced biases."""
        from repro.neural.dataset import SyntheticImageDataset

        batch = SyntheticImageDataset(
            n_images=64, size=32, n_classes=self.n_classes, seed=seed + 104729
        ).images
        identity = lambda _name, x: x  # noqa: E731 - local tap
        feats = self._trunk(batch, identity)
        self._feat_shift = feats.mean(axis=(0, 2, 3))
        # Floor the per-channel spread: dead ReLU channels (std ~ 0) would
        # otherwise get huge gains that amplify injected noise unboundedly.
        std = feats.std(axis=(0, 2, 3))
        floor = 0.25 * float(np.median(std)) + 1e-9
        self._feat_scale = 1.0 / np.maximum(std, floor)
        logits = self.forward(batch)
        self.conv10_b = self.conv10_b - logits.mean(axis=0)

    def forward(
        self,
        images: np.ndarray,
        *,
        perturb: Callable[[str, np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Compute class logits for ``images`` of shape ``(N, 3, H, W)``.

        Parameters
        ----------
        images:
            Input batch; 32x32 spatial size is the designed operating point.
        perturb:
            Optional hook ``perturb(point_name, activations) -> activations``
            invoked at every injection point; the error-injection harness
            uses it to add noise, ``None`` runs the clean network.

        Returns
        -------
        numpy.ndarray
            Logits of shape ``(N, n_classes)``.
        """
        if images.ndim != 4 or images.shape[1] != 3:
            raise ValueError(f"images must be (N, 3, H, W), got {images.shape}")

        def tap(name: str, activations: np.ndarray) -> np.ndarray:
            return perturb(name, activations) if perturb is not None else activations

        x = self._trunk(images, tap)
        x = (x - self._feat_shift[None, :, None, None]) * self._feat_scale[
            None, :, None, None
        ]
        x = conv2d(x, self.conv10_w, self.conv10_b)
        x = tap("conv10", x)
        return global_avg_pool(x)

    def predict(
        self,
        images: np.ndarray,
        *,
        perturb: Callable[[str, np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Class indices (argmax of logits) for ``images``."""
        return np.argmax(self.forward(images, perturb=perturb), axis=1)
