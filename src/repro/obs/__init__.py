"""repro.obs: observability for the serving stack.

Three cooperating pieces, all stdlib-only:

``trace``
    Wire-level request tracing.  Clients stamp a ``trace_id`` and a
    ``parent_span`` onto requests (exactly like the ``deadline_ms``
    budget); every hop that handles a traced request opens monotonic-clock
    spans around the work it does — dispatch, admission-queue wait,
    session-lock wait, batch-flush membership, the solve-phase split — and
    keeps finished spans in a bounded per-process ring buffer.  Traces
    whose root span exceeds a configurable threshold are *always* captured
    into a separate slow-trace buffer and logged, whatever the sampling
    rate did at the edge.
``metrics``
    A unified counter/gauge/histogram registry (histograms ride the
    existing P² :class:`~repro.utils.quantiles.QuantileSketch`).  The
    previously scattered counters — deadline misses, pool failures,
    breaker states, batcher stats, factor-cache reuse, shm attach
    failures — register here, and both the ``metrics`` verb and the
    optional ``--metrics-port`` HTTP listener render the same snapshot
    (JSON families, or Prometheus text exposition).
``logs``
    Structured JSON logging on stdlib ``logging``, with ``trace_id``
    correlation through a :mod:`contextvars` variable the servers set
    around dispatch.

Nothing in this package changes what the estimator computes: evaluate
results are bit-identical with observability on or off.
"""

from repro.obs.logs import configure_logging, get_logger, trace_id_var
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_families,
    render_prometheus,
)
from repro.obs.trace import Span, Tracer, wire_context

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "aggregate_families",
    "configure_logging",
    "get_logger",
    "render_prometheus",
    "trace_id_var",
    "wire_context",
]
