"""Minimal HTTP listener for Prometheus scraping (``--metrics-port``).

A deliberately tiny asyncio HTTP/1.0-style responder — no routing library,
no keep-alive, no TLS: a scraper GETs ``/metrics``, gets the Prometheus
text exposition of the owning server's registry snapshot, and the
connection closes.  Anything else is a 404.  It shares the server's event
loop, so a scrape sees exactly the same snapshot the ``metrics`` verb
would return.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.obs.logs import get_logger
from repro.obs.metrics import render_prometheus

__all__ = ["start_metrics_http"]

logger = get_logger("obs.http")

_MAX_REQUEST_BYTES = 8192


async def start_metrics_http(
    collect: Callable[[], Awaitable[list[dict]] | list[dict]],
    host: str,
    port: int,
) -> asyncio.AbstractServer:
    """Serve ``GET /metrics`` from ``collect()`` snapshots.

    ``collect`` may be sync (a worker reading its own registry) or async
    (the router, which fans out to workers).  Returns the listening server;
    the caller owns its lifecycle (``close()`` + ``wait_closed()``).
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                return
            # Drain headers until the blank line; ignore their content.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            if parts[:1] != ["GET"] or path.split("?")[0] != "/metrics":
                body = b"not found\n"
                status = "404 Not Found"
                ctype = "text/plain"
            else:
                families = collect()
                if asyncio.iscoroutine(families):
                    families = await families
                body = render_prometheus(families).encode("utf-8")
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # pragma: no cover - scraper misbehaviour
            logger.warning("metrics scrape failed", extra={"exc": repr(exc)})
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    server = await asyncio.start_server(handle, host, port)
    bound = server.sockets[0].getsockname() if server.sockets else (host, port)
    logger.info(
        "metrics listener up", extra={"host": bound[0], "port": bound[1]}
    )
    return server
