"""Structured JSON logging with trace correlation.

All serving-stack components log through stdlib :mod:`logging` under the
``repro.*`` namespace; :func:`configure_logging` (called once by
``run_server`` / ``run_cluster``) attaches a stderr handler whose formatter
emits one JSON object per line::

    {"ts": "2026-08-08T12:00:00.123Z", "level": "warning",
     "logger": "repro.cluster", "message": "...", "trace_id": "9f2c..."}

``trace_id`` comes from :data:`trace_id_var`, a context variable the
servers set around dispatch of a traced request — any log line emitted
while handling that request correlates to its trace without the call site
knowing tracing exists.

The formatter deliberately never renders tracebacks: exceptions passed via
``exc_info`` (or stamped as an ``exc`` extra) are collapsed to their
``repr``.  Operational tooling greps server stderr for ``Traceback`` to
distinguish crashes from handled failures, and a *handled* failure that is
merely being reported must not trip that check.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
import time

__all__ = ["configure_logging", "get_logger", "trace_id_var", "JsonFormatter"]

#: Trace id of the request currently being handled in this context (set by
#: the servers around dispatch; empty string when untraced).
trace_id_var: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_trace_id", default=""
)

_ROOT = "repro"

#: ``logging.LogRecord`` attributes that are plumbing, not payload — any
#: *other* record attribute (i.e. anything passed via ``extra=``) is
#: emitted as a top-level JSON field.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``extra=`` fields pass through."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": self.formatTime(record),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = trace_id_var.get()
        if trace_id:
            payload["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            payload["exc"] = repr(record.exc_info[1])
        try:
            return json.dumps(payload, default=repr)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return json.dumps({"level": "error", "message": record.getMessage()})

    def formatTime(self, record: logging.LogRecord, datefmt: str | None = None) -> str:
        # ISO-8601 UTC with millisecond precision.
        base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
        return f"{base}.{int(record.msecs):03d}Z"


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` namespace (``get_logger('cluster')`` →
    ``repro.cluster``)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def configure_logging(level: str = "info", stream=None) -> logging.Logger:
    """Attach the JSON stderr handler to the ``repro`` logger (idempotent).

    Only the ``repro`` namespace is touched — the root logger and any
    host-application handlers are left alone.  Calling again replaces the
    handler (so tests can re-point ``stream``) rather than stacking
    duplicates.
    """
    logger = logging.getLogger(_ROOT)
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    for existing in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(existing)
    handler._repro_obs = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger
