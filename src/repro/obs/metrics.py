"""Unified metrics registry (counters, gauges, P²-sketch histograms).

One :class:`MetricsRegistry` per server instance (worker service or cluster
router) replaces the scattered per-verb stat dicts.  Three primitive kinds:

``counter``
    Monotone float, ``inc()`` only — deadline misses, pool failures,
    breaker fast-fails, shm attach failures.
``gauge``
    Point-in-time float, ``set()`` — breaker state, inflight requests.
``histogram``
    Streaming distribution on the existing P²
    :class:`~repro.utils.quantiles.QuantileSketch` — queue wait, flush
    wait, request latency.  No samples are stored, so a histogram costs a
    few hundred bytes however hot the path is.

Components that already keep their own counters (the batcher's
``BatcherStats``, the breaker's ``trips``, the estimator's
``FactorCacheStats``) do not migrate their storage; the registry reads
them at collect time through callback-backed metrics (:meth:`counter_fn` /
:meth:`gauge_fn`), so there is exactly one source of truth and zero extra
hot-path work.

``collect()`` returns a JSON-safe *family list* — the one snapshot shape
both the ``metrics`` verb and the Prometheus renderings are derived from:

.. code-block:: python

    {"name": "repro_deadline_misses_total", "type": "counter",
     "help": "...", "samples": [{"labels": {}, "value": 3.0}]}

Router aggregation (:func:`aggregate_families`) merges worker fan-out into
the *same* shape, which is what makes the router's ``metrics`` output
structurally identical to a worker's.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Sequence

from repro.utils.quantiles import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "aggregate_families",
    "render_prometheus",
]

#: Quantiles every histogram tracks (rendered as Prometheus summary
#: quantile labels).
HISTOGRAM_PROBS = (0.5, 0.9, 0.99)


def _finite(value: float) -> float | None:
    """JSON-safe float: NaN/inf (empty-histogram extremes) become None."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        return None
    return value


class Counter:
    """Monotone counter; ``inc`` is thread-safe (flushes run off-loop)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def family(self) -> dict:
        return {
            "name": self.name,
            "type": "counter",
            "help": self.help,
            "samples": [{"labels": {}, "value": self._value}],
        }


class Gauge:
    """Point-in-time value (breaker state, inflight count)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def family(self) -> dict:
        return {
            "name": self.name,
            "type": "gauge",
            "help": self.help,
            "samples": [{"labels": {}, "value": self._value}],
        }


class Histogram:
    """Streaming distribution on a P² sketch; ``observe`` is thread-safe."""

    __slots__ = ("name", "help", "_sketch", "_lock")

    def __init__(
        self, name: str, help: str = "", probs: Sequence[float] = HISTOGRAM_PROBS
    ) -> None:
        self.name = name
        self.help = help
        self._sketch = QuantileSketch(probs=probs)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sketch.update(value)

    @property
    def count(self) -> int:
        return self._sketch.count

    def family(self) -> dict:
        with self._lock:
            sketch = self._sketch
            sample = {
                "labels": {},
                "count": sketch.count,
                "sum": sketch.sum,
                "min": _finite(sketch.min),
                "max": _finite(sketch.max),
                "quantiles": {
                    repr(p): _finite(v) for p, v in sketch.quantiles().items()
                },
            }
        return {
            "name": self.name,
            "type": "histogram",
            "help": self.help,
            "samples": [sample],
        }


class _CallbackMetric:
    """Counter/gauge whose value lives elsewhere, read at collect time.

    ``fn`` returns either a plain number (one unlabeled sample) or an
    iterable of ``(labels_dict, value)`` pairs (e.g. one breaker-state
    sample per worker).
    """

    __slots__ = ("name", "type", "help", "fn")

    def __init__(self, name: str, kind: str, fn: Callable, help: str = "") -> None:
        self.name = name
        self.type = kind
        self.help = help
        self.fn = fn

    def family(self) -> dict:
        produced = self.fn()
        if isinstance(produced, (int, float)):
            samples = [{"labels": {}, "value": float(produced)}]
        else:
            samples = [
                {"labels": dict(labels), "value": float(value)}
                for labels, value in produced
            ]
        return {
            "name": self.name,
            "type": self.type,
            "help": self.help,
            "samples": samples,
        }


class MetricsRegistry:
    """All metrics of one server instance, collected as one snapshot.

    Per *instance*, not per process: the test suite runs several servers in
    one interpreter and their counters must not bleed into each other.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _register(self, metric) -> None:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = Counter(name, help)
        self._register(metric)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = Gauge(name, help)
        self._register(metric)
        return metric

    def histogram(
        self, name: str, help: str = "", probs: Sequence[float] = HISTOGRAM_PROBS
    ) -> Histogram:
        metric = Histogram(name, help, probs)
        self._register(metric)
        return metric

    def counter_fn(self, name: str, fn: Callable, help: str = "") -> None:
        """Counter whose storage stays where it is (read via ``fn``)."""
        self._register(_CallbackMetric(name, "counter", fn, help))

    def gauge_fn(self, name: str, fn: Callable, help: str = "") -> None:
        """Gauge read via ``fn`` at collect time."""
        self._register(_CallbackMetric(name, "gauge", fn, help))

    def collect(self) -> list[dict]:
        """JSON-safe family list, sorted by metric name."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted((m.family() for m in metrics), key=lambda f: f["name"])

    def value(self, name: str) -> float:
        """One metric's current scalar (samples summed across label sets).

        The single-source-of-truth accessor: ``ping`` and ``stats`` both
        read ``repro_deadline_misses_total`` through here, so the two verbs
        can never disagree about the count again.
        """
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            raise KeyError(f"no metric named {name!r}")
        family = metric.family()
        if family["type"] == "histogram":
            return float(sum(s.get("count", 0) or 0 for s in family["samples"]))
        return float(sum(s.get("value", 0.0) for s in family["samples"]))


def aggregate_families(family_lists: Iterable[list[dict]]) -> list[dict]:
    """Merge fan-out snapshots into one family list of the same shape.

    Counters and gauges merge per label set by summation (distinct label
    sets — one breaker-state gauge per worker — simply union).  Histograms
    sum ``count``/``sum``, take min-of-min / max-of-max, and combine
    quantile estimates by count-weighted average: an approximation, but the
    component sketches are approximations already and the merged p50/p90
    stay honest for same-order distributions.
    """
    merged: dict[str, dict] = {}
    for families in family_lists:
        for family in families:
            name = family["name"]
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "name": name,
                    "type": family["type"],
                    "help": family.get("help", ""),
                    "samples": [dict(s) for s in family["samples"]],
                }
                continue
            for sample in family["samples"]:
                _merge_sample(into, sample)
    return sorted(merged.values(), key=lambda f: f["name"])


def _merge_sample(family: dict, sample: dict) -> None:
    labels = sample.get("labels", {})
    target = next(
        (s for s in family["samples"] if s.get("labels", {}) == labels), None
    )
    if target is None:
        family["samples"].append(dict(sample))
        return
    if family["type"] in ("counter", "gauge"):
        target["value"] = float(target.get("value", 0.0)) + float(
            sample.get("value", 0.0)
        )
        return
    # Histogram merge.
    count_a = float(target.get("count", 0) or 0)
    count_b = float(sample.get("count", 0) or 0)
    total = count_a + count_b
    target["count"] = int(total)
    target["sum"] = float(target.get("sum", 0.0) or 0.0) + float(
        sample.get("sum", 0.0) or 0.0
    )
    for key, pick in (("min", min), ("max", max)):
        values = [v for v in (target.get(key), sample.get(key)) if v is not None]
        target[key] = pick(values) if values else None
    quantiles: dict[str, float | None] = {}
    qa, qb = target.get("quantiles", {}), sample.get("quantiles", {})
    for prob in set(qa) | set(qb):
        a, b = qa.get(prob), qb.get(prob)
        if a is None or count_a == 0:
            quantiles[prob] = b
        elif b is None or count_b == 0:
            quantiles[prob] = a
        else:
            quantiles[prob] = (a * count_a + b * count_b) / total
    target["quantiles"] = quantiles


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: dict, extra: dict | None = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in sorted(pairs.items()))
    return "{" + body + "}"


def _prom_value(value: float | None) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def render_prometheus(families: list[dict]) -> str:
    """Prometheus text exposition of a :func:`aggregate_families`-shaped
    family list (histograms render as summaries: quantile-labeled samples
    plus ``_sum`` and ``_count``)."""
    lines: list[str] = []
    for family in families:
        name, kind = family["name"], family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {'summary' if kind == 'histogram' else kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_label_str(labels)} {_prom_value(sample.get('value'))}"
                )
                continue
            for prob, value in sorted(sample.get("quantiles", {}).items()):
                lines.append(
                    f"{name}{_label_str(labels, {'quantile': prob})} "
                    f"{_prom_value(value)}"
                )
            lines.append(
                f"{name}_sum{_label_str(labels)} {_prom_value(sample.get('sum', 0.0))}"
            )
            lines.append(f"{name}_count{_label_str(labels)} {int(sample.get('count', 0))}")
    return "\n".join(lines) + "\n"
