"""Wire-level request tracing (spans, ring buffer, slow-trace capture).

Propagation copies the ``deadline_ms`` model of
:mod:`repro.service.protocol` exactly: the *client* decides (by sampling)
whether a request is traced and stamps two plain JSON fields onto it —

``trace_id``
    32 hex chars naming the whole end-to-end request tree; and
``parent_span``
    16 hex chars naming the sender's own span, so the receiver's spans
    attach under it.

Every hop restamps ``parent_span`` with its own span id before forwarding
(the cluster router does this in ``_forwarded`` right next to the deadline
restamp) and ``trace_id`` travels untouched.  A request without the fields
is simply not traced: the server-side fast path is one dict lookup and
returns ``None`` before any allocation happens, which is what keeps the
sampling-off overhead at zero.

Spans are timed with ``time.perf_counter`` (monotonic); ``start_ms`` /
``end_ms`` therefore compare *within* one process only — cross-process
ordering comes from the parent/child links, never from the clocks.

Finished spans land in a bounded per-process ring buffer
(:attr:`Tracer.ring_size`); when a *root* span (a dispatch, or a client
round trip) finishes above :attr:`Tracer.slow_ms`, the whole trace — every
ring span sharing its ``trace_id`` — is copied into a separate slow-trace
buffer and logged as one structured JSON line, regardless of how full the
ring is or what the edge sampling rate was.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Iterable

from repro.obs.logs import get_logger

__all__ = ["Span", "Tracer", "new_span_id", "new_trace_id", "wire_context"]

logger = get_logger("obs.trace")

#: How many slow traces a process keeps (each one holds its full span list,
#: so this buffer is deliberately much smaller than the span ring).
SLOW_TRACE_BUFFER = 64

#: Ids only need to be collision-resistant within a deployment's trace
#: horizon, not unpredictable — the PRNG skips the ``os.urandom`` syscall
#: on the per-span hot path.  Seeded from real entropy at import.
_ids = random.Random()


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return f"{_ids.getrandbits(128):032x}"


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return f"{_ids.getrandbits(64):016x}"


def wire_context(request: dict) -> tuple[str, str | None] | None:
    """The ``(trace_id, parent_span)`` a request carries, or ``None``.

    Lenient like :meth:`~repro.service.protocol.Deadline.from_request`: a
    malformed field means "not traced", never an error — tracing is an
    observability aid and must not reject old clients.
    """
    trace_id = request.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent = request.get("parent_span")
    return trace_id, parent if isinstance(parent, str) and parent else None


class Span:
    """One timed operation inside a trace (monotonic-clock bounds)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: str | None = None,
        *,
        attrs: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter()
        self.end: float | None = None
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def set(self, **attrs: object) -> None:
        """Attach (or update) span attributes."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        """JSON-safe record (the shape the ring buffer and verbs expose)."""
        end = self.end if self.end is not None else self.start
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start * 1000.0, 3),
            "end_ms": round(end * 1000.0, 3),
            "duration_ms": round((end - self.start) * 1000.0, 3),
            "attrs": self.attrs or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {self.duration_ms:.2f} ms)"


class Tracer:
    """Per-process span collection: sampling, ring buffer, slow-trace log.

    Parameters
    ----------
    sample_rate:
        Probability that :meth:`sample` starts a new trace — the *client
        edge* decision.  Servers do not sample; they trace whatever arrives
        with a ``trace_id`` (the router restamped it, someone upstream paid
        the sampling roll already).
    ring_size:
        Finished spans kept per process (oldest evicted first).
    slow_ms:
        Root spans at or above this duration promote their whole trace
        into the slow-trace buffer and emit one warning log line.
        ``inf`` disables slow-trace capture.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 0.0,
        ring_size: int = 2048,
        slow_ms: float = float("inf"),
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.sample_rate = float(sample_rate)
        self.ring_size = int(ring_size)
        self.slow_ms = float(slow_ms)
        self._ring: deque[dict] = deque(maxlen=self.ring_size)
        self._slow: deque[dict] = deque(maxlen=SLOW_TRACE_BUFFER)
        self._lock = threading.Lock()
        #: Spans ever started / finished — the sampling-off test pins
        #: ``started == 0`` to prove the hot path allocates nothing.
        self.started = 0
        self.finished = 0
        self.slow_traces_captured = 0

    # -- starting spans -------------------------------------------------
    def sample(self) -> bool:
        """Roll the edge sampling decision for a brand-new trace."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            return True
        return random.random() < self.sample_rate

    def start_trace(self, name: str, *, attrs: dict | None = None) -> Span | None:
        """Root span of a new trace, or ``None`` when sampling says no."""
        if not self.sample():
            return None
        self.started += 1
        return Span(new_trace_id(), name, None, attrs=attrs)

    def start(
        self,
        name: str,
        parent: Span | None,
        *,
        context: tuple[str, str | None] | None = None,
        attrs: dict | None = None,
    ) -> Span | None:
        """Child span under ``parent``, or under a wire ``context``.

        With neither, the request is untraced: return ``None`` before
        allocating anything (the hot path).
        """
        if parent is not None:
            self.started += 1
            return Span(parent.trace_id, name, parent.span_id, attrs=attrs)
        if context is not None:
            self.started += 1
            return Span(context[0], name, context[1], attrs=attrs)
        return None

    # -- finishing spans ------------------------------------------------
    def finish(self, span: Span | None, *, root: bool = False) -> None:
        """Close a span into the ring; roots are checked for slowness.

        ``None`` is accepted so call sites do not need their own guard:
        ``tracer.finish(maybe_span)`` is the idiom.
        """
        if span is None:
            return
        span.end = time.perf_counter()
        record = span.to_dict()
        with self._lock:
            self._ring.append(record)
            self.finished += 1
            if root and span.duration_ms >= self.slow_ms:
                self._capture_slow(record)

    def _capture_slow(self, root_record: dict) -> None:
        # Called under the lock.  Copy every ring span of this trace so the
        # slow record survives ring eviction.
        trace_id = root_record["trace_id"]
        spans = [rec for rec in self._ring if rec["trace_id"] == trace_id]
        self._slow.append(
            {
                "trace_id": trace_id,
                "root": root_record["name"],
                "duration_ms": root_record["duration_ms"],
                "threshold_ms": self.slow_ms,
                "spans": spans,
            }
        )
        self.slow_traces_captured += 1
        logger.warning(
            "slow trace: %s took %.1f ms (threshold %.1f ms, %d spans)",
            root_record["name"],
            root_record["duration_ms"],
            self.slow_ms,
            len(spans),
            extra={"trace_id": trace_id},
        )

    # -- reading back ---------------------------------------------------
    def spans(self, trace_id: str | None = None) -> list[dict]:
        """Ring-buffer snapshot (optionally one trace's spans only)."""
        with self._lock:
            records = list(self._ring)
        if trace_id is None:
            return records
        return [rec for rec in records if rec["trace_id"] == trace_id]

    def slow_traces(self) -> list[dict]:
        """Captured slow traces, oldest first (non-destructive)."""
        with self._lock:
            return list(self._slow)

    def drain_slow(self) -> list[dict]:
        """Captured slow traces; clears the buffer (bench provenance dump)."""
        with self._lock:
            drained = list(self._slow)
            self._slow.clear()
        return drained

    def emit(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        start: float,
        end: float,
        *,
        attrs: dict | None = None,
    ) -> dict:
        """Record a span post-hoc from already-measured monotonic bounds.

        The batcher uses this: it times queue/lock/solve waits regardless of
        tracing (the metrics histograms want them), then — only for traced
        requests — turns the measurements into spans after the flush, so the
        flush hot path never mutates live span objects across threads.
        Returns the span record (the caller may parent further spans on its
        ``span_id``).
        """
        span = Span(trace_id, name, parent_id, attrs=attrs)
        span.start = start
        span.end = max(start, end)
        self.started += 1
        record = span.to_dict()
        with self._lock:
            self._ring.append(record)
            self.finished += 1
        return record

    def record_phases(
        self,
        trace_id: str,
        parent_id: str | None,
        phase_start: float,
        pairs: Iterable[tuple[str, float]],
    ) -> None:
        """Synthesize consecutive child spans from measured phase durations.

        The batch engine times its assembly/factorize/backsolve split as
        *durations* (:class:`~repro.core.kriging.SolvePhases`), not as
        intervals; lay them end to end from ``phase_start`` so the
        synthesized spans stay monotone and inside their parent.
        """
        cursor = phase_start
        for name, seconds in pairs:
            step = max(0.0, float(seconds))
            self.emit(name, trace_id, parent_id, cursor, cursor + step)
            cursor += step
