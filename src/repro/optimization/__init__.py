"""Design-space-exploration algorithms (paper Section III-B).

* :mod:`~repro.optimization.problem` — the constrained cost-minimization
  problem of Eq. 1 (metric sense, threshold, bounds, cost model);
* :mod:`~repro.optimization.evaluator` — tracing metric evaluators: pure
  simulation (with memoization) and kriging-accelerated;
* :mod:`~repro.optimization.minplusone` — the ``min+1 bit`` word-length
  optimizer (Algorithm 1 ``MinKWL`` + Algorithm 2 ``OptimKWL``);
* :mod:`~repro.optimization.descent` — steepest-descent noise budgeting for
  the error-sensitivity analysis (after Parashar et al., used by the
  SqueezeNet benchmark);
* :mod:`~repro.optimization.trace` — evaluation/decision records shared by
  the replay methodology.
"""

from repro.optimization.descent import NoiseBudgetingDescent
from repro.optimization.evaluator import (
    KrigingMetricEvaluator,
    MetricEvaluator,
    SimulationEvaluator,
)
from repro.optimization.minplusone import (
    MinPlusOneOptimizer,
    determine_minimum_wordlengths,
    optimize_wordlengths,
)
from repro.optimization.problem import DSEProblem, MetricSense
from repro.optimization.trace import EvaluationRecord, OptimizationResult, OptimizationTrace

__all__ = [
    "MetricSense",
    "DSEProblem",
    "MetricEvaluator",
    "SimulationEvaluator",
    "KrigingMetricEvaluator",
    "determine_minimum_wordlengths",
    "optimize_wordlengths",
    "MinPlusOneOptimizer",
    "NoiseBudgetingDescent",
    "EvaluationRecord",
    "OptimizationTrace",
    "OptimizationResult",
]
