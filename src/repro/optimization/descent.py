"""Steepest-descent noise budgeting for the error-sensitivity analysis.

The SqueezeNet benchmark (paper Section IV) does not optimize word-lengths;
it searches the *maximal tolerated power* of the per-layer error sources
under a classification-rate constraint, using the steepest-descent greedy
algorithm of Parashar et al. (paper ref. [22]).

With the library's protection-level convention (higher level = less noise =
better quality), the search starts from the all-max-level corner — where the
constraint must hold — and repeatedly *lowers* one variable's level (grants
more noise, i.e. reduces implementation cost).  Each iteration trials a
``-1`` step on every variable and commits the step that keeps the best
metric among those still satisfying the constraint; it stops when every
possible step violates the constraint.  This is the exact mirror of
Algorithm 2's competition and produces the same kind of configuration
trajectory for the replay evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.optimization.evaluator import MetricEvaluator, SimulationEvaluator
from repro.optimization.problem import DSEProblem
from repro.optimization.trace import OptimizationResult

__all__ = ["NoiseBudgetingDescent"]


class NoiseBudgetingDescent:
    """Greedy noise-budget maximization under a quality constraint.

    Parameters
    ----------
    problem:
        Sensitivity-analysis problem; ``simulate`` returns the quality metric
        (e.g. ``pcl``) of a protection-level configuration.
    evaluator:
        Metric oracle; defaults to a
        :class:`~repro.optimization.evaluator.SimulationEvaluator`.
    start:
        Starting configuration; defaults to the all-``max_value`` corner.
        Must satisfy the quality constraint.
    """

    def __init__(
        self,
        problem: DSEProblem,
        evaluator: MetricEvaluator | None = None,
        *,
        start: np.ndarray | None = None,
        verify_commits: bool = True,
    ) -> None:
        self.problem = problem
        self.evaluator = (
            evaluator if evaluator is not None else SimulationEvaluator(problem.simulate)
        )
        self.verify_commits = verify_commits
        if start is None:
            self.start = problem.full_configuration(problem.max_value)
        else:
            self.start = problem.validate_configuration(start)

    def run(self) -> OptimizationResult:
        """Execute the descent and return the maximal tolerated budget.

        With ``verify_commits`` (default), every committed step is confirmed
        by a measurement: a candidate that a kriging estimate declared
        feasible but a simulation refutes is skipped in favour of the next
        best, so the returned budget is feasible by construction.
        """
        problem = self.problem
        w = self.start.copy()
        value = self.evaluator.evaluate(w, phase="greedy")
        if not problem.satisfied(value):
            raise ValueError(
                f"starting configuration {w.tolist()} violates the quality "
                f"constraint (value {value}, threshold {problem.threshold})"
            )

        while True:
            candidate_values = np.full(problem.num_variables, problem.sense.worst)
            # The -1 competition mirrors Algorithm 2's sweep; batch it so a
            # kriging-backed evaluator shares factorizations across trials.
            open_vars = [
                i for i in range(problem.num_variables) if w[i] > problem.min_value
            ]
            if open_vars:
                trials = np.repeat(w[None, :], len(open_vars), axis=0)
                trials[np.arange(len(open_vars)), open_vars] -= 1
                values = self.evaluator.evaluate_batch(trials, phase="greedy")
                candidate_values[open_vars] = values

            feasible = [
                i
                for i in range(problem.num_variables)
                if np.isfinite(candidate_values[i])
                and problem.satisfied(float(candidate_values[i]))
            ]
            committed = False
            while feasible:
                jc = feasible[
                    problem.sense.best_index([candidate_values[i] for i in feasible])
                ]
                trial = w.copy()
                trial[jc] -= 1
                if self.verify_commits:
                    measured = self.evaluator.ensure_simulated(trial, phase="greedy")
                    if not problem.satisfied(measured):
                        feasible.remove(jc)
                        continue
                    step_value = measured
                else:
                    step_value = float(candidate_values[jc])
                w = trial
                value = step_value
                self.evaluator.trace.record_decision(jc)
                committed = True
                break
            if not committed:
                break

        return OptimizationResult(
            solution=tuple(int(x) for x in w),
            solution_value=float(value),
            minimum=tuple(int(x) for x in self.start),
            cost=problem.cost(w),
            trace=self.evaluator.trace,
            satisfied=problem.satisfied(float(value)),
        )
