"""Tracing metric evaluators.

The optimizers talk to a :class:`MetricEvaluator`; two implementations are
provided:

* :class:`SimulationEvaluator` — every new configuration is simulated
  (memoized on exact revisits).  Running an optimizer with it produces the
  ground-truth trajectory used by the paper's record-then-replay evaluation.
* :class:`KrigingMetricEvaluator` — the proposed method: queries go through
  a :class:`~repro.core.estimator.KrigingEstimator`, so most of them are
  interpolated instead of simulated.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.core.estimator import KrigingEstimator
from repro.optimization.trace import EvaluationRecord, OptimizationTrace

__all__ = ["MetricEvaluator", "SimulationEvaluator", "KrigingMetricEvaluator"]


class MetricEvaluator(abc.ABC):
    """A metric oracle that logs every query to an :class:`OptimizationTrace`."""

    def __init__(self) -> None:
        self.trace = OptimizationTrace()

    @abc.abstractmethod
    def _evaluate(self, configuration: np.ndarray) -> EvaluationRecord:
        """Answer one query (without logging)."""

    def evaluate(self, configuration: object, *, phase: str = "") -> float:
        """Return the metric value of ``configuration`` and log the query."""
        config = np.asarray(configuration, dtype=np.int64)
        record = self._evaluate(config)
        record = EvaluationRecord(
            configuration=record.configuration,
            value=record.value,
            simulated=record.simulated,
            exact_hit=record.exact_hit,
            n_neighbors=record.n_neighbors,
            phase=phase,
        )
        self.trace.append(record)
        return record.value

    def evaluate_batch(
        self, configurations: object, *, phase: str = ""
    ) -> list[float]:
        """Evaluate a sweep of configurations, logging each query in order.

        Semantically an in-order sequence of :meth:`evaluate` calls — the
        trace records the same queries with the same values.  Kriging-backed
        evaluators override this to route the sweep through the batch query
        engine (shared kriging factorizations); the base implementation just
        loops.
        """
        return [self.evaluate(config, phase=phase) for config in configurations]

    def ensure_simulated(self, configuration: object, *, phase: str = "") -> float:
        """Return a *measured* metric value for ``configuration``.

        Kriging-backed evaluators override this to bypass interpolation; the
        pure-simulation evaluator measures (or recalls) the value anyway.
        Optimizers call it on committed steps so that constraint decisions
        rest on measurements rather than estimates.
        """
        return self.evaluate(configuration, phase=phase)

    @property
    def n_simulations(self) -> int:
        """Fresh simulations performed so far."""
        return self.trace.n_simulated


class SimulationEvaluator(MetricEvaluator):
    """Ground-truth evaluator: simulate everything, memoize exact revisits."""

    def __init__(self, simulate: Callable[[np.ndarray], float]) -> None:
        super().__init__()
        self._simulate = simulate
        self._memo: dict[tuple[int, ...], float] = {}

    def _evaluate(self, configuration: np.ndarray) -> EvaluationRecord:
        key = tuple(int(x) for x in configuration)
        if key in self._memo:
            return EvaluationRecord(
                configuration=key,
                value=self._memo[key],
                simulated=False,
                exact_hit=True,
            )
        value = float(self._simulate(configuration))
        self._memo[key] = value
        return EvaluationRecord(configuration=key, value=value, simulated=True)


class KrigingMetricEvaluator(MetricEvaluator):
    """The proposed kriging-accelerated evaluator.

    Parameters
    ----------
    estimator:
        A configured :class:`~repro.core.estimator.KrigingEstimator` whose
        ``simulate`` function is the problem's reference evaluation.
    """

    def __init__(self, estimator: KrigingEstimator) -> None:
        super().__init__()
        self.estimator = estimator

    @staticmethod
    def _outcome_record(
        config: np.ndarray, outcome, *, phase: str = ""
    ) -> EvaluationRecord:
        """Translate an EstimationOutcome into a trace record."""
        return EvaluationRecord(
            configuration=tuple(int(x) for x in config),
            value=outcome.value,
            simulated=not outcome.interpolated,
            exact_hit=outcome.exact_hit,
            n_neighbors=outcome.n_neighbors,
            phase=phase,
        )

    def _evaluate(self, configuration: np.ndarray) -> EvaluationRecord:
        return self._outcome_record(
            configuration, self.estimator.evaluate(configuration)
        )

    def evaluate_batch(
        self, configurations: object, *, phase: str = ""
    ) -> list[float]:
        """Route a sweep through the estimator's batch engine.

        Outcomes (values, decisions, cache contents) are identical to an
        in-order sequence of :meth:`evaluate` calls; consecutive
        interpolations share kriging factorizations.
        """
        configs = np.asarray(configurations, dtype=np.int64)
        if configs.ndim != 2:
            raise ValueError(f"configurations must be 2-D, got shape {configs.shape}")
        values: list[float] = []
        for config, outcome in zip(configs, self.estimator.evaluate_batch(configs)):
            record = self._outcome_record(config, outcome, phase=phase)
            self.trace.append(record)
            values.append(record.value)
        return values

    def ensure_simulated(self, configuration: object, *, phase: str = "") -> float:
        """Measure ``configuration`` (bypassing interpolation) and log it."""
        config = np.asarray(configuration, dtype=np.int64)
        record = self._outcome_record(
            config, self.estimator.force_simulate(config), phase=phase
        )
        self.trace.append(record)
        return record.value
