"""The ``min+1 bit`` word-length optimizer (paper Algorithms 1 and 2).

The optimizer has two phases:

1. :func:`determine_minimum_wordlengths` (Algorithm 1, ``MinKWL``) — for each
   variable in turn, all other variables are held at ``Nmax`` and the
   variable is decreased from ``Nmax`` until the quality constraint breaks;
   the last satisfying value is that variable's minimum ``w_min_i``.
2. :func:`optimize_wordlengths` (Algorithm 2, ``OptimKWL``) — starting from
   ``w_min`` (which in general violates the constraint when all variables
   are simultaneously at their individual minima), each iteration trials a
   ``+1`` on every variable, commits the one with the best resulting metric
   (the paper's ``j_c`` competition) and repeats until the constraint holds.

Both phases issue every metric query through a
:class:`~repro.optimization.evaluator.MetricEvaluator`, which is where the
paper's kriging substitution plugs in (lines 7-24 of both listings).

The listings in the paper are written for a lower-is-better noise-power
metric; this implementation works for either sense through
:class:`~repro.optimization.problem.MetricSense` (see DESIGN.md, deviation
note 2).
"""

from __future__ import annotations

import numpy as np

from repro.optimization.evaluator import MetricEvaluator, SimulationEvaluator
from repro.optimization.problem import DSEProblem
from repro.optimization.trace import OptimizationResult

__all__ = [
    "determine_minimum_wordlengths",
    "optimize_wordlengths",
    "MinPlusOneOptimizer",
]


def determine_minimum_wordlengths(
    problem: DSEProblem,
    evaluator: MetricEvaluator,
) -> np.ndarray:
    """Algorithm 1 (``MinKWL``): per-variable minimum word-lengths.

    For each variable ``i``, with every other variable pinned at ``Nmax``,
    decrease ``w_i`` until the quality constraint is violated; ``w_min_i``
    is the smallest value that still satisfied the constraint (the paper's
    ``w_i + 1`` back-off).  Variables whose constraint holds all the way
    down saturate at the lower bound.

    Returns
    -------
    numpy.ndarray
        The vector ``w_min``.
    """
    wmin = np.empty(problem.num_variables, dtype=np.int64)
    for i in range(problem.num_variables):
        w = problem.full_configuration(problem.max_value)
        last_satisfied = problem.max_value
        for candidate in range(problem.max_value, problem.min_value - 1, -1):
            w[i] = candidate
            value = evaluator.evaluate(w, phase="min")
            if not problem.satisfied(value):
                break
            last_satisfied = candidate
        wmin[i] = last_satisfied
    return wmin


def optimize_wordlengths(
    problem: DSEProblem,
    evaluator: MetricEvaluator,
    wmin: np.ndarray,
    *,
    verify_commits: bool = True,
) -> tuple[np.ndarray, float]:
    """Algorithm 2 (``OptimKWL``): greedy refinement from ``w_min``.

    Each iteration evaluates the metric with one extra bit on every
    non-saturated variable, commits the best (``j_c``), and stops as soon as
    the committed configuration satisfies the constraint.  Decisions are
    logged in the evaluator's trace for the decision-divergence experiment.

    Parameters
    ----------
    verify_commits:
        When true (default), the metric value of each *committed* step is a
        measurement (``MetricEvaluator.ensure_simulated``) rather than a
        kriging estimate.  Candidate competitions still use estimates, so the
        interpolation rate stays high, but the termination decision rests on
        measured values — without this anchor, estimate lag behind one-sided
        support makes the greedy overshoot (or stop short of) the constraint.
        A no-op for pure-simulation evaluators.

    Returns
    -------
    tuple
        ``(w_res, metric value at w_res)``.
    """
    w = np.asarray(wmin, dtype=np.int64).copy()
    if w.shape != (problem.num_variables,):
        raise ValueError(f"wmin must have shape ({problem.num_variables},), got {w.shape}")

    value = (
        evaluator.ensure_simulated(w, phase="greedy")
        if verify_commits
        else evaluator.evaluate(w, phase="greedy")
    )
    if problem.satisfied(value):
        return w, value

    while True:
        candidate_values = np.full(problem.num_variables, problem.sense.worst)
        # The +1 competition is a sweep of independent queries: issue it
        # through the evaluator's batch path so a kriging-backed oracle can
        # share factorizations (outcomes identical to a per-trial loop).
        open_vars = [i for i in range(problem.num_variables) if w[i] < problem.max_value]
        if open_vars:
            trials = np.repeat(w[None, :], len(open_vars), axis=0)
            trials[np.arange(len(open_vars)), open_vars] += 1
            values = evaluator.evaluate_batch(trials, phase="greedy")
            candidate_values[open_vars] = values

        if not np.any(np.isfinite(candidate_values)):
            # Every variable saturated at Nmax without meeting the
            # constraint: the problem is infeasible at this threshold.
            return w, value

        jc = problem.sense.best_index(candidate_values)
        w[jc] += 1
        value = float(candidate_values[jc])
        if verify_commits:
            value = evaluator.ensure_simulated(w, phase="greedy")
        evaluator.trace.record_decision(jc)
        if problem.satisfied(value):
            return w, value


class MinPlusOneOptimizer:
    """Bundled two-phase ``min+1 bit`` run over a problem and an evaluator.

    Parameters
    ----------
    problem:
        The DSE problem (Eq. 1).
    evaluator:
        Metric oracle; defaults to a fresh
        :class:`~repro.optimization.evaluator.SimulationEvaluator` (the
        ground-truth configuration used to record trajectories).
    """

    def __init__(
        self,
        problem: DSEProblem,
        evaluator: MetricEvaluator | None = None,
        *,
        verify_commits: bool = True,
    ) -> None:
        self.problem = problem
        self.evaluator = (
            evaluator if evaluator is not None else SimulationEvaluator(problem.simulate)
        )
        self.verify_commits = verify_commits

    def run(self) -> OptimizationResult:
        """Execute both phases and return the optimization result."""
        wmin = determine_minimum_wordlengths(self.problem, self.evaluator)
        wres, value = optimize_wordlengths(
            self.problem, self.evaluator, wmin, verify_commits=self.verify_commits
        )
        return OptimizationResult(
            solution=tuple(int(x) for x in wres),
            solution_value=float(value),
            minimum=tuple(int(x) for x in wmin),
            cost=self.problem.cost(wres),
            trace=self.evaluator.trace,
            satisfied=self.problem.satisfied(value),
        )
