"""The AC design-space-exploration problem (paper Eq. 1).

``min C(e)  subject to  quality(e) meets threshold``

over an integer hypercube of approximation-source parameters.  Two metric
conventions appear in the paper — the body text uses an accuracy
(higher-is-better, e.g. ``-P`` or ``pcl``) while the algorithm listings use
the noise power directly (lower-is-better).  :class:`MetricSense` makes the
convention explicit so both are supported without sign tricks.

All concrete problems in this library share one geometric convention:
**increasing a variable improves the metric** (more word-length bits, or a
higher error-protection level).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.utils.validation import check_integer_vector

__all__ = ["MetricSense", "DSEProblem"]


class MetricSense(enum.Enum):
    """Whether smaller or larger metric values are better."""

    LOWER_IS_BETTER = "lower"
    """E.g. output noise power: the constraint is ``value <= threshold``."""

    HIGHER_IS_BETTER = "higher"
    """E.g. classification rate: the constraint is ``value >= threshold``."""

    def satisfied(self, value: float, threshold: float) -> bool:
        """Whether ``value`` meets the quality constraint ``threshold``."""
        if self is MetricSense.LOWER_IS_BETTER:
            return value <= threshold
        return value >= threshold

    def is_better(self, a: float, b: float) -> bool:
        """Whether metric value ``a`` is strictly better than ``b``."""
        if self is MetricSense.LOWER_IS_BETTER:
            return a < b
        return a > b

    def best_index(self, values: Sequence[float]) -> int:
        """Index of the best metric value (paper's ``argmin``/``argmax``)."""
        if len(values) == 0:
            raise ValueError("best_index of an empty sequence")
        array = np.asarray(values, dtype=np.float64)
        if self is MetricSense.LOWER_IS_BETTER:
            return int(np.argmin(array))
        return int(np.argmax(array))

    @property
    def worst(self) -> float:
        """A sentinel strictly worse than any finite metric value."""
        return np.inf if self is MetricSense.LOWER_IS_BETTER else -np.inf


@dataclass
class DSEProblem:
    """A concrete instance of the paper's optimization problem.

    Parameters
    ----------
    name:
        Benchmark identifier (used in reports).
    num_variables:
        Dimension ``Nv`` of the configuration hypercube.
    min_value / max_value:
        Inclusive per-variable bounds (``max_value`` is the paper's
        ``Nmax``).
    simulate:
        The expensive reference evaluation ``evaluateAccuracy(I, w)``.
    sense:
        Metric direction (see :class:`MetricSense`).
    threshold:
        The quality constraint ``lambda_m``.
    cost_weights:
        Per-variable implementation-cost weights; the cost model is the
        standard linear ``C(w) = sum_i c_i * w_i``.  Defaults to all ones.
    """

    name: str
    num_variables: int
    min_value: int
    max_value: int
    simulate: Callable[[np.ndarray], float]
    sense: MetricSense
    threshold: float
    cost_weights: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if self.num_variables < 1:
            raise ValueError(f"num_variables must be >= 1, got {self.num_variables}")
        if self.min_value >= self.max_value:
            raise ValueError(
                f"min_value must be < max_value, got [{self.min_value}, {self.max_value}]"
            )
        if self.cost_weights is None:
            self.cost_weights = np.ones(self.num_variables)
        else:
            self.cost_weights = np.asarray(self.cost_weights, dtype=np.float64)
            if self.cost_weights.shape != (self.num_variables,):
                raise ValueError(
                    f"cost_weights must have shape ({self.num_variables},), "
                    f"got {self.cost_weights.shape}"
                )
            if np.any(self.cost_weights < 0):
                raise ValueError("cost_weights must be non-negative")

    def validate_configuration(self, configuration: object) -> np.ndarray:
        """Check bounds/shape and return the configuration as an int vector."""
        config = check_integer_vector("configuration", configuration)
        if config.size != self.num_variables:
            raise ValueError(
                f"configuration must have {self.num_variables} components, got {config.size}"
            )
        if np.any(config < self.min_value) or np.any(config > self.max_value):
            raise ValueError(
                f"configuration {config.tolist()} outside bounds "
                f"[{self.min_value}, {self.max_value}]"
            )
        return config

    def cost(self, configuration: object) -> float:
        """Linear implementation cost ``C(w)`` of a configuration."""
        config = self.validate_configuration(configuration)
        assert self.cost_weights is not None
        return float(self.cost_weights @ config)

    def satisfied(self, value: float) -> bool:
        """Whether a metric value meets this problem's quality constraint."""
        return self.sense.satisfied(value, self.threshold)

    def full_configuration(self, value: int) -> np.ndarray:
        """The constant configuration ``(value, ..., value)``."""
        if not self.min_value <= value <= self.max_value:
            raise ValueError(
                f"value {value} outside bounds [{self.min_value}, {self.max_value}]"
            )
        return np.full(self.num_variables, value, dtype=np.int64)
