"""JSON (de)serialization of optimization traces.

Trajectory recording is the expensive half of the paper's evaluation
methodology (minutes for the HEVC and SqueezeNet benchmarks); persisting
traces lets the replays, ablations and plots run repeatedly without
re-simulating.
"""

from __future__ import annotations

import json
import pathlib

from repro.optimization.trace import EvaluationRecord, OptimizationTrace

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def trace_to_dict(trace: OptimizationTrace) -> dict:
    """Convert a trace to a JSON-serializable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "records": [
            {
                "configuration": list(r.configuration),
                "value": r.value,
                "simulated": r.simulated,
                "exact_hit": r.exact_hit,
                "n_neighbors": r.n_neighbors,
                "phase": r.phase,
            }
            for r in trace.records
        ],
        "decisions": list(trace.decisions),
    }


def trace_from_dict(data: dict) -> OptimizationTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    if not isinstance(data, dict) or "records" not in data:
        raise ValueError("not a serialized trace (missing 'records')")
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    trace = OptimizationTrace(decisions=[int(d) for d in data.get("decisions", [])])
    for entry in data["records"]:
        trace.append(
            EvaluationRecord(
                configuration=tuple(int(x) for x in entry["configuration"]),
                value=float(entry["value"]),
                simulated=bool(entry["simulated"]),
                exact_hit=bool(entry.get("exact_hit", False)),
                n_neighbors=int(entry.get("n_neighbors", 0)),
                phase=str(entry.get("phase", "")),
            )
        )
    return trace


def save_trace(trace: OptimizationTrace, path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace to ``path`` as JSON and return the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(trace_to_dict(trace)))
    return path


def load_trace(path: str | pathlib.Path) -> OptimizationTrace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(pathlib.Path(path).read_text()))
