"""Evaluation and decision records.

The paper's evaluation methodology (Section IV) records every configuration
tested by the optimizer *in test order* together with its metric value, then
replays the kriging policy over that trajectory.  The structures here are
that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EvaluationRecord", "OptimizationTrace", "OptimizationResult"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One metric query answered during an optimization run.

    Attributes
    ----------
    configuration:
        The tested configuration (immutable tuple of ints).
    value:
        Metric value returned to the optimizer.
    simulated:
        ``True`` when the value came from a fresh simulation; ``False`` for
        kriging interpolations and exact cache hits.
    exact_hit:
        ``True`` when the configuration had been simulated before and the
        memoized value was returned.
    n_neighbors:
        Support-point count inside the distance ball at query time
        (0 for pure-simulation evaluators).
    phase:
        Optimizer phase that issued the query (``"min"`` or ``"greedy"``).
    """

    configuration: tuple[int, ...]
    value: float
    simulated: bool
    exact_hit: bool = False
    n_neighbors: int = 0
    phase: str = ""


@dataclass
class OptimizationTrace:
    """Ordered log of every metric query plus the greedy decisions taken."""

    records: list[EvaluationRecord] = field(default_factory=list)
    decisions: list[int] = field(default_factory=list)

    def append(self, record: EvaluationRecord) -> None:
        """Log one metric query."""
        self.records.append(record)

    def record_decision(self, variable_index: int) -> None:
        """Log the variable chosen by one greedy iteration (``j_c``)."""
        self.decisions.append(int(variable_index))

    def __len__(self) -> int:
        return len(self.records)

    @property
    def configurations(self) -> np.ndarray:
        """``(n, Nv)`` matrix of tested configurations, in test order."""
        if not self.records:
            return np.empty((0, 0))
        return np.asarray([r.configuration for r in self.records], dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        """Metric values aligned with :attr:`configurations`."""
        return np.asarray([r.value for r in self.records], dtype=np.float64)

    @property
    def n_simulated(self) -> int:
        """Number of queries answered by fresh simulation."""
        return sum(1 for r in self.records if r.simulated)

    @property
    def n_interpolated(self) -> int:
        """Number of queries answered without simulation (kriging or memo)."""
        return sum(1 for r in self.records if not r.simulated)

    def unique_first_visits(self) -> "OptimizationTrace":
        """Trace restricted to the first visit of each configuration.

        The replay methodology feeds each distinct configuration once; exact
        revisits (which cost nothing in either scheme) are dropped.
        """
        seen: set[tuple[int, ...]] = set()
        filtered = OptimizationTrace(decisions=list(self.decisions))
        for record in self.records:
            if record.configuration in seen:
                continue
            seen.add(record.configuration)
            filtered.append(record)
        return filtered


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a full optimizer run.

    Attributes
    ----------
    solution:
        The final configuration (``w_res`` for min+1, the maximal tolerated
        noise budget for the sensitivity descent).
    solution_value:
        Metric value at :attr:`solution`.
    minimum:
        The per-variable starting point (``w_min``); equals ``solution`` for
        optimizers without a min phase.
    cost:
        Implementation cost ``C(solution)``.
    trace:
        Full evaluation/decision log of the run.
    satisfied:
        Whether the final configuration meets the quality constraint.
    """

    solution: tuple[int, ...]
    solution_value: float
    minimum: tuple[int, ...]
    cost: float
    trace: OptimizationTrace
    satisfied: bool
