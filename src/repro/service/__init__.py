"""The kriging evaluation service: a long-lived, multi-client front end.

Everything below :mod:`repro.core` is a single-process library; this package
turns it into a *system* (the ROADMAP's north star): named estimator
sessions that many clients share over TCP, so the engine's grouping and
factor-reuse layers see the union of everyone's queries — exactly the regime
they get better in.

Modules
-------

:mod:`repro.service.protocol`
    The newline-delimited JSON wire format (stdlib only).
:mod:`repro.service.session`
    Named estimator sessions; versioned NPZ snapshot/restore.
:mod:`repro.service.batcher`
    The asyncio micro-batching coalescer: concurrent ``evaluate`` requests
    from unrelated clients flush as one ``evaluate_batch`` call.
:mod:`repro.service.server`
    The asyncio TCP server (``repro serve``).
:mod:`repro.service.client`
    Sync and async clients (``repro client ...``, tests, load generator).
"""

from repro.service.batcher import BatcherStats, MicroBatcher
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import ProtocolError, RemoteError
from repro.service.server import KrigingService, run_server
from repro.service.session import EstimatorSession, load_snapshot, make_simulator

__all__ = [
    "AsyncServiceClient",
    "BatcherStats",
    "EstimatorSession",
    "KrigingService",
    "MicroBatcher",
    "ProtocolError",
    "RemoteError",
    "ServiceClient",
    "load_snapshot",
    "make_simulator",
    "run_server",
]
