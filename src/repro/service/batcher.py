"""Cross-client micro-batching for the evaluation service.

The batch query engine gets *better* the more queries it sees at once:
queries sharing a support set share one factorization
(:func:`~repro.core.kriging.ordinary_kriging_batch`), and consecutive
near-identical support sets share factors through the reuse layer.  A
network service naively answering each request with a single
:meth:`~repro.core.estimator.KrigingEstimator.evaluate` call would throw
that away — every client would pay a full solve even when eight clients ask
about the same neighbourhood in the same millisecond (exactly what parallel
word-length searches do).

:class:`MicroBatcher` closes the gap: concurrent ``evaluate`` requests for
one session are collected into a pending list and flushed as a **single**
``evaluate_batch`` call, either when :attr:`~MicroBatcher.max_batch`
requests have accumulated or when the oldest has waited
:attr:`~MicroBatcher.max_delay_ms` milliseconds — whichever comes first.
Lone requests on an idle session therefore pay at most ``max_delay_ms`` of
extra latency, while bursts coalesce into shared factorizations.

Flushes are serialized on the session's lock and the batch preserves
arrival order, so decisions stay deterministic given the arrival sequence;
the flush itself runs on a worker thread (``asyncio.to_thread``), so the
event loop keeps accepting — and coalescing — the *next* batch while the
solves run.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.estimator import EstimationOutcome
from repro.service.protocol import Deadline, DeadlineExceeded
from repro.utils.quantiles import QuantileSketch

__all__ = ["BatcherStats", "MicroBatcher"]

FlushFn = Callable[[Sequence[object]], "list[EstimationOutcome]"]


@dataclass
class BatcherStats:
    """Coalescing effectiveness counters of one :class:`MicroBatcher`."""

    requests: int = 0
    flushes: int = 0
    deadline_misses: int = 0
    """Requests shed at flush time because their deadline had expired."""
    batch_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    """Distribution of flushed batch sizes (P² quantile sketch)."""

    @property
    def mean_batch(self) -> float:
        """Mean requests per flush (the coalescing factor)."""
        return self.batch_sketch.mean

    @property
    def max_batch_seen(self) -> float:
        """Largest batch flushed so far."""
        return self.batch_sketch.max

    def summary(self) -> dict:
        """JSON-safe summary for the service's ``stats`` verb."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "deadline_misses": self.deadline_misses,
            "batch_size": self.batch_sketch.summary(),
        }


class MicroBatcher:
    """Coalesce concurrent evaluate requests into ``evaluate_batch`` flushes.

    Parameters
    ----------
    flush_fn:
        Called with the coalesced configuration list, in arrival order;
        returns one outcome per configuration.  Runs on a worker thread —
        for the service this is the session's
        ``estimator.evaluate_batch``.
    max_batch:
        Flush as soon as this many requests are pending, and never put
        more than this many in one flush (a burst beyond it flushes in
        consecutive chunks).  ``1`` disables coalescing — every request
        solves alone, which is the fair baseline the load generator
        compares against.
    max_delay_ms:
        Upper bound on how long an incomplete batch may wait after its
        first request.  The batcher flushes *earlier* as soon as the
        pending set stops growing for a couple of event-loop iterations —
        i.e. every request already in flight has been read and coalesced —
        so a burst of blocked clients never pays the full delay; the bound
        only matters for stragglers trickling in mid-burst.  ``0`` flushes
        immediately.
    lock:
        Flush serialization lock — pass the session's lock so flushes,
        direct simulations and snapshots never interleave.
    """

    def __init__(
        self,
        flush_fn: FlushFn,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        lock: asyncio.Lock | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self._flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self._lock = lock if lock is not None else asyncio.Lock()
        self._pending: list[tuple[object, asyncio.Future, Deadline | None]] = []
        self._timer: asyncio.Task | None = None
        # Strong references to in-flight flush tasks: the event loop only
        # holds tasks weakly, and an unreferenced task's failure would
        # surface as "exception was never retrieved" GC noise instead of
        # being observed here.
        self._flush_tasks: set[asyncio.Task] = set()
        self.stats = BatcherStats()

    @property
    def pending(self) -> int:
        """Requests waiting for the next flush."""
        return len(self._pending)

    async def submit(
        self, config: object, deadline: Deadline | None = None
    ) -> EstimationOutcome:
        """Enqueue one configuration; resolves with its outcome after the
        flush it lands in completes.

        A ``deadline`` that expires before the request's flush starts sheds
        the request with :class:`~repro.service.protocol.DeadlineExceeded`
        instead of spending a solve on an answer nobody is waiting for —
        and, because a flush solves many clients' requests together,
        instead of delaying everyone else's batch with it.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((config, future, deadline))
        self.stats.requests += 1
        if len(self._pending) >= self.max_batch:
            self._cancel_timer()
            self._spawn_flush(loop)
        elif len(self._pending) == 1 and self._timer is None:
            if self.max_delay_ms <= 0:
                self._spawn_flush(loop)
            else:
                self._timer = loop.create_task(self._delayed_flush())
                self._timer.add_done_callback(self._flush_done)
        return await future

    def _spawn_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        task = loop.create_task(self._flush())
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_done)

    def _flush_done(self, task: asyncio.Task) -> None:
        self._flush_tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            # _flush routes flush_fn errors into the request futures, so an
            # exception here is a batcher bug: report it deterministically
            # through the loop's handler instead of as GC-time noise.
            task.get_loop().call_exception_handler(
                {"message": "micro-batcher flush task failed", "exception": exc}
            )

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight flushes.

        The snapshot and shutdown paths call this so a snapshot can never
        cut a batch in half.
        """
        self._cancel_timer()
        await self._flush()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    #: Event-loop iterations the pending set must stay static before an
    #: early flush: 1 would race the loop still dispatching just-read
    #: frames into request tasks; 3+ only adds spin.
    IDLE_ITERATIONS = 2

    #: Grace period (seconds) before idle detection may flush early: long
    #: enough for a burst of concurrent requests to cross loopback TCP and
    #: land in the batch (tens of microseconds apart), short enough to be
    #: noise next to a kriging solve.
    IDLE_GRACE_SECONDS = 0.0003

    async def _delayed_flush(self) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay_ms / 1000.0
        grace = min(deadline, loop.time() + self.IDLE_GRACE_SECONDS)
        seen = len(self._pending)
        idle = 0
        try:
            await asyncio.sleep(max(0.0, grace - loop.time()))
            while loop.time() < deadline:
                # One full loop iteration: sockets are polled and ready
                # request tasks run (each may submit) before we resume.
                await asyncio.sleep(0)
                pending = len(self._pending)
                if pending >= self.max_batch:
                    break  # the size trigger scheduled its own flush
                if pending == seen:
                    idle += 1
                    if idle >= self.IDLE_ITERATIONS:
                        break
                else:
                    seen = pending
                    idle = 0
        except asyncio.CancelledError:
            return
        self._timer = None
        await self._flush()

    async def _flush(self) -> None:
        # Loop until nothing is pending: a flush scheduled while another
        # runs picks up everything that accumulated meanwhile, in chunks of
        # at most max_batch.  Taking each chunk *before* awaiting the lock
        # keeps arrival order (and makes the take atomic on the loop).
        if self._pending:
            self._cancel_timer()
        while self._pending:
            taken = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            # Shed expired requests at the door of the flush: their clients
            # have already given up, and a batch entry costs every coalesced
            # request solve time.
            batch = []
            for config, future, deadline in taken:
                if deadline is not None and deadline.expired:
                    self.stats.deadline_misses += 1
                    if not future.done():
                        future.set_exception(
                            DeadlineExceeded(
                                "evaluate: deadline expired "
                                f"{-deadline.remaining_ms():.0f} ms before the flush"
                            )
                        )
                    continue
                batch.append((config, future))
            if not batch:
                continue
            async with self._lock:
                configs = [config for config, _ in batch]
                try:
                    outcomes = await asyncio.to_thread(self._flush_fn, configs)
                except Exception as exc:
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(exc)
                    continue
            self.stats.flushes += 1
            self.stats.batch_sketch.update(float(len(batch)))
            for (_, future), outcome in zip(batch, outcomes):
                if not future.done():
                    future.set_result(outcome)
