"""Cross-client micro-batching for the evaluation service.

The batch query engine gets *better* the more queries it sees at once:
queries sharing a support set share one factorization
(:func:`~repro.core.kriging.ordinary_kriging_batch`), and consecutive
near-identical support sets share factors through the reuse layer.  A
network service naively answering each request with a single
:meth:`~repro.core.estimator.KrigingEstimator.evaluate` call would throw
that away — every client would pay a full solve even when eight clients ask
about the same neighbourhood in the same millisecond (exactly what parallel
word-length searches do).

:class:`MicroBatcher` closes the gap: concurrent ``evaluate`` requests for
one session are collected into a pending list and flushed as a **single**
``evaluate_batch`` call, either when :attr:`~MicroBatcher.max_batch`
requests have accumulated or when the oldest has waited
:attr:`~MicroBatcher.max_delay_ms` milliseconds — whichever comes first.
Lone requests on an idle session therefore pay at most ``max_delay_ms`` of
extra latency, while bursts coalesce into shared factorizations.

Flushes are serialized on the session's lock and the batch preserves
arrival order, so decisions stay deterministic given the arrival sequence;
the flush itself runs on a worker thread (``asyncio.to_thread``), so the
event loop keeps accepting — and coalescing — the *next* batch while the
solves run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.estimator import EstimationOutcome
from repro.obs.metrics import Histogram
from repro.obs.trace import Span, Tracer
from repro.service.protocol import Deadline, DeadlineExceeded
from repro.utils.quantiles import QuantileSketch

__all__ = ["BatcherStats", "MicroBatcher"]

FlushFn = Callable[[Sequence[object]], "list[EstimationOutcome]"]

#: One queued request: (config, future, deadline, dispatch span, waits
#: sink, submit timestamp).  A plain tuple — this is the hot path.
_PendingRequest = tuple

#: Duration pairs the solve-phase span synthesis consumes: the names of the
#: spans and the order they execute in inside one flush.
PHASE_SPAN_NAMES = ("solve.assembly", "solve.factorize", "solve.backsolve")


@dataclass
class BatcherStats:
    """Coalescing effectiveness counters of one :class:`MicroBatcher`."""

    requests: int = 0
    flushes: int = 0
    deadline_misses: int = 0
    """Requests shed at flush time because their deadline had expired."""
    batch_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    """Distribution of flushed batch sizes (P² quantile sketch)."""

    @property
    def mean_batch(self) -> float:
        """Mean requests per flush (the coalescing factor)."""
        return self.batch_sketch.mean

    @property
    def max_batch_seen(self) -> float:
        """Largest batch flushed so far."""
        return self.batch_sketch.max

    def summary(self) -> dict:
        """JSON-safe summary for the service's ``stats`` verb."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "deadline_misses": self.deadline_misses,
            "batch_size": self.batch_sketch.summary(),
        }


class MicroBatcher:
    """Coalesce concurrent evaluate requests into ``evaluate_batch`` flushes.

    Parameters
    ----------
    flush_fn:
        Called with the coalesced configuration list, in arrival order;
        returns one outcome per configuration.  Runs on a worker thread —
        for the service this is the session's
        ``estimator.evaluate_batch``.
    max_batch:
        Flush as soon as this many requests are pending, and never put
        more than this many in one flush (a burst beyond it flushes in
        consecutive chunks).  ``1`` disables coalescing — every request
        solves alone, which is the fair baseline the load generator
        compares against.
    max_delay_ms:
        Upper bound on how long an incomplete batch may wait after its
        first request.  The batcher flushes *earlier* as soon as the
        pending set stops growing for a couple of event-loop iterations —
        i.e. every request already in flight has been read and coalesced —
        so a burst of blocked clients never pays the full delay; the bound
        only matters for stragglers trickling in mid-burst.  ``0`` flushes
        immediately.
    lock:
        Flush serialization lock — pass the session's lock so flushes,
        direct simulations and snapshots never interleave.
    tracer / phase_totals:
        Optional observability hooks.  A traced request's dispatch span
        rides into the pending tuple; at flush time one ``batch.flush``
        span is emitted linked to every coalesced member, with
        ``server.lock_wait`` and the solve-phase split (``phase_totals``
        returns the cumulative assembly/factorize/backsolve seconds; the
        flush takes before/after deltas) as children.  Untraced requests
        cost nothing beyond two clock reads.
    queue_wait_hist / flush_wait_hist:
        Optional :class:`~repro.obs.metrics.Histogram` sinks fed the
        per-request queue wait (submit → session lock acquired) and flush
        wait (lock acquired → outcomes ready), tracing or not.
    """

    def __init__(
        self,
        flush_fn: FlushFn,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        lock: asyncio.Lock | None = None,
        tracer: Tracer | None = None,
        phase_totals: Callable[[], tuple[float, float, float]] | None = None,
        queue_wait_hist: Histogram | None = None,
        flush_wait_hist: Histogram | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self._flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.tracer = tracer
        self._phase_totals = phase_totals
        self._queue_wait_hist = queue_wait_hist
        self._flush_wait_hist = flush_wait_hist
        self._lock = lock if lock is not None else asyncio.Lock()
        self._pending: list[_PendingRequest] = []
        self._timer: asyncio.Task | None = None
        # Strong references to in-flight flush tasks: the event loop only
        # holds tasks weakly, and an unreferenced task's failure would
        # surface as "exception was never retrieved" GC noise instead of
        # being observed here.
        self._flush_tasks: set[asyncio.Task] = set()
        self.stats = BatcherStats()

    @property
    def pending(self) -> int:
        """Requests waiting for the next flush."""
        return len(self._pending)

    async def submit(
        self,
        config: object,
        deadline: Deadline | None = None,
        *,
        span: Span | None = None,
        waits: dict | None = None,
    ) -> EstimationOutcome:
        """Enqueue one configuration; resolves with its outcome after the
        flush it lands in completes.

        A ``deadline`` that expires before the request's flush starts sheds
        the request with :class:`~repro.service.protocol.DeadlineExceeded`
        instead of spending a solve on an answer nobody is waiting for —
        and, because a flush solves many clients' requests together,
        instead of delaying everyone else's batch with it.

        ``span`` is the request's dispatch span when it is traced (the
        flush links to it and parents a ``server.queue_wait`` child on it).
        ``waits`` is an optional dict the flush fills with the request's
        measured ``queue_wait_ms``/``flush_wait_ms`` before resolving — the
        server attaches them to the response so clients and the bench
        harness can trend hop-level latency.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((config, future, deadline, span, waits, time.perf_counter()))
        self.stats.requests += 1
        if len(self._pending) >= self.max_batch:
            self._cancel_timer()
            self._spawn_flush(loop)
        elif len(self._pending) == 1 and self._timer is None:
            if self.max_delay_ms <= 0:
                self._spawn_flush(loop)
            else:
                self._timer = loop.create_task(self._delayed_flush())
                self._timer.add_done_callback(self._flush_done)
        return await future

    def _spawn_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        task = loop.create_task(self._flush())
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_done)

    def _flush_done(self, task: asyncio.Task) -> None:
        self._flush_tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            # _flush routes flush_fn errors into the request futures, so an
            # exception here is a batcher bug: report it deterministically
            # through the loop's handler instead of as GC-time noise.
            task.get_loop().call_exception_handler(
                {"message": "micro-batcher flush task failed", "exception": exc}
            )

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight flushes.

        The snapshot and shutdown paths call this so a snapshot can never
        cut a batch in half.
        """
        self._cancel_timer()
        await self._flush()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    #: Event-loop iterations the pending set must stay static before an
    #: early flush: 1 would race the loop still dispatching just-read
    #: frames into request tasks; 3+ only adds spin.
    IDLE_ITERATIONS = 2

    #: Grace period (seconds) before idle detection may flush early: long
    #: enough for a burst of concurrent requests to cross loopback TCP and
    #: land in the batch (tens of microseconds apart), short enough to be
    #: noise next to a kriging solve.
    IDLE_GRACE_SECONDS = 0.0003

    async def _delayed_flush(self) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay_ms / 1000.0
        grace = min(deadline, loop.time() + self.IDLE_GRACE_SECONDS)
        seen = len(self._pending)
        idle = 0
        try:
            await asyncio.sleep(max(0.0, grace - loop.time()))
            while loop.time() < deadline:
                # One full loop iteration: sockets are polled and ready
                # request tasks run (each may submit) before we resume.
                await asyncio.sleep(0)
                pending = len(self._pending)
                if pending >= self.max_batch:
                    break  # the size trigger scheduled its own flush
                if pending == seen:
                    idle += 1
                    if idle >= self.IDLE_ITERATIONS:
                        break
                else:
                    seen = pending
                    idle = 0
        except asyncio.CancelledError:
            return
        self._timer = None
        await self._flush()

    async def _flush(self) -> None:
        # Loop until nothing is pending: a flush scheduled while another
        # runs picks up everything that accumulated meanwhile, in chunks of
        # at most max_batch.  Taking each chunk *before* awaiting the lock
        # keeps arrival order (and makes the take atomic on the loop).
        if self._pending:
            self._cancel_timer()
        while self._pending:
            taken = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            # Shed expired requests at the door of the flush: their clients
            # have already given up, and a batch entry costs every coalesced
            # request solve time.
            batch = []
            for config, future, deadline, span, waits, t_submit in taken:
                if deadline is not None and deadline.expired:
                    self.stats.deadline_misses += 1
                    if not future.done():
                        future.set_exception(
                            DeadlineExceeded(
                                "evaluate: deadline expired "
                                f"{-deadline.remaining_ms():.0f} ms before the flush"
                            )
                        )
                    continue
                batch.append((config, future, span, waits, t_submit))
            if not batch:
                continue
            t_flush = time.perf_counter()
            async with self._lock:
                t_lock = time.perf_counter()
                # Read the cumulative phase totals only once the lock is
                # held: a concurrent flush of the same session mutates them,
                # and a pre-lock read would inflate this flush's deltas.
                phases_before = self._phase_totals() if self._phase_totals else None
                configs = [entry[0] for entry in batch]
                try:
                    outcomes = await asyncio.to_thread(self._flush_fn, configs)
                except Exception as exc:
                    for _, future, _, _, _ in batch:
                        if not future.done():
                            future.set_exception(exc)
                    continue
                t_done = time.perf_counter()
                phases_after = self._phase_totals() if phases_before is not None else None
            self.stats.flushes += 1
            self.stats.batch_sketch.update(float(len(batch)))
            flush_ms = (t_done - t_lock) * 1000.0
            if self._flush_wait_hist is not None:
                self._flush_wait_hist.observe(flush_ms)
            for _, _, _, _, t_submit in batch:
                if self._queue_wait_hist is not None:
                    self._queue_wait_hist.observe((t_lock - t_submit) * 1000.0)
            for _, _, _, waits, t_submit in batch:
                if waits is not None:
                    waits["queue_wait_ms"] = (t_lock - t_submit) * 1000.0
                    waits["flush_wait_ms"] = flush_ms
            self._emit_flush_spans(
                batch, phases_before, phases_after, t_flush, t_lock, t_done
            )
            for (_, future, _, _, _), outcome in zip(batch, outcomes):
                if not future.done():
                    future.set_result(outcome)

    def _emit_flush_spans(
        self,
        batch: list,
        phases_before: tuple[float, float, float] | None,
        phases_after: tuple[float, float, float] | None,
        t_flush: float,
        t_lock: float,
        t_done: float,
    ) -> None:
        """One ``batch.flush`` span linked to its N coalesced request spans.

        The flush span parents on the *first* traced member (batches have no
        span of their own on the wire) and carries every member's span id in
        its ``links`` attribute; each traced member additionally gets a
        ``server.queue_wait`` child of its own dispatch span.  Children of
        the flush: ``server.lock_wait`` and the synthesized solve phases.
        """
        tracer = self.tracer
        if tracer is None:
            return
        traced = [entry for entry in batch if entry[2] is not None]
        if not traced:
            return
        for _, _, span, _, t_submit in traced:
            tracer.emit("server.queue_wait", span.trace_id, span.span_id, t_submit, t_lock)
        anchor = traced[0][2]
        flush_record = tracer.emit(
            "batch.flush",
            anchor.trace_id,
            anchor.span_id,
            t_flush,
            t_done,
            attrs={
                "batch_size": len(batch),
                "traced": len(traced),
                "links": [entry[2].span_id for entry in traced],
            },
        )
        tracer.emit(
            "server.lock_wait",
            anchor.trace_id,
            flush_record["span_id"],
            t_flush,
            t_lock,
        )
        if phases_before is not None and phases_after is not None:
            tracer.record_phases(
                anchor.trace_id,
                flush_record["span_id"],
                t_lock,
                [
                    (name, phases_after[i] - phases_before[i])
                    for i, name in enumerate(PHASE_SPAN_NAMES)
                ],
            )
