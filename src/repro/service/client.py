"""Clients for the kriging evaluation service.

:class:`ServiceClient` is a small blocking client (plain ``socket``) for
scripts, the CLI and tests; :class:`AsyncServiceClient` is the asyncio
twin the load generator uses to keep many logical clients in flight on one
thread.  Both speak :mod:`repro.service.protocol` and expose one method
per verb; server-side errors surface as
:class:`~repro.service.protocol.RemoteError`.

The async client pipelines: requests are matched to responses by ``id``,
so many may be outstanding per connection — that is what lets a burst of
``evaluate`` calls from *one* client coalesce in the server's
micro-batcher alongside other clients' queries.

Both clients stamp their ``timeout`` onto every request as the wire-level
``deadline_ms`` budget (see :mod:`repro.service.protocol`): the server and
the cluster router shed the request with a structured ``DeadlineExceeded``
once the budget runs out, instead of doing work nobody is waiting for.
Pass an explicit ``deadline_ms`` field to override per request; clients
constructed with ``timeout=None`` stamp nothing (no deadline).
"""

from __future__ import annotations

import asyncio
import socket
import time
from itertools import count
from typing import Any, Sequence

from repro.core.estimator import EstimationOutcome
from repro.obs.trace import Tracer
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    RemoteError,
    decode,
    encode,
    outcome_from_wire,
    read_message,
    write_message,
)

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _raise_on_error(response: dict) -> dict:
    if not isinstance(response, dict) or "ok" not in response:
        raise ProtocolError(f"malformed response {response!r}")
    if not response["ok"]:
        error = response.get("error") or {}
        raise RemoteError(
            str(error.get("type", "UnknownError")),
            str(error.get("message", "")),
            {k: v for k, v in error.items() if k not in ("type", "message")},
        )
    result = response.get("result")
    return result if isinstance(result, dict) else {}


#: Server-side error kinds worth retrying when the client opts into
#: ``retries``: admission-control rejections and the transient window while
#: the cluster migrates or fails a session over to another worker.
RETRYABLE_KINDS = frozenset({"Overloaded", "Unavailable"})


class _VerbsMixin:
    """Convenience verbs shared by both clients.

    Subclasses provide ``request(op, **fields)`` (sync or async); every
    verb builds the request dict through :meth:`_fields` so the two
    transports cannot drift apart.
    """

    @staticmethod
    def _fields(**fields: Any) -> dict:
        return {key: value for key, value in fields.items() if value is not None}

    @staticmethod
    def _outcome(result: dict) -> EstimationOutcome:
        return outcome_from_wire(result)

    @staticmethod
    def _outcomes(result: dict) -> list[EstimationOutcome]:
        return [outcome_from_wire(data) for data in result["outcomes"]]

    @staticmethod
    def _stamp_trace(message: dict, span) -> None:
        """Put a sampled request's trace context on the wire (the exact
        analogue of the ``deadline_ms`` stamp below it)."""
        if span is not None and "trace_id" not in message:
            message["trace_id"] = span.trace_id
            message["parent_span"] = span.span_id


class ServiceClient(_VerbsMixin):
    """Blocking newline-delimited JSON client (one request in flight).

    With ``retries > 0`` the client survives transient failures: a dropped
    connection (``ConnectionResetError``/``BrokenPipeError``/clean EOF)
    or a read timeout triggers a reconnect (a timed-out stream is always
    dropped — the late response would otherwise be matched against the
    next request's id), and retryable server errors (``Overloaded``
    admission rejections, the ``Unavailable`` window while the cluster
    fails a session over) are retried after a capped exponential back-off —
    honouring the server's ``retry_after_ms`` hint when it sends one.

    Retries re-send the request verbatim, so a retried ``simulate`` that
    *did* reach the server before the connection died may record its
    measurement twice; retries are therefore opt-in, and the default
    (``retries=0``) keeps the old fail-fast behaviour.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        trace_sample: float = 0.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        #: Edge sampling: the client decides which requests are traced and
        #: stamps ``trace_id``/``parent_span``; with the default 0.0 no
        #: trace field ever hits the wire and no span is ever allocated.
        self.tracer = Tracer(sample_rate=trace_sample, ring_size=512)
        self._sock: socket.socket | None = None
        self._file = None
        self._ids = count(1)
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def _disconnect(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _backoff(self, attempt: int, hint_ms: float | None = None) -> None:
        """Sleep before retry ``attempt`` (0-based): capped exponential, or
        the server's explicit hint when it gave one."""
        if hint_ms is not None:
            delay = min(hint_ms / 1000.0, self.backoff_max)
        else:
            delay = min(self.backoff_base * (2.0**attempt), self.backoff_max)
        if delay > 0:
            time.sleep(delay)

    def _roundtrip(self, op: str, fields: dict) -> dict:
        if self._file is None:
            self._connect()
        request_id = next(self._ids)
        message = {"id": request_id, "op": op, **fields}
        span = self.tracer.start_trace("client.request", attrs={"op": op})
        self._stamp_trace(message, span)
        if "deadline_ms" not in message and self._timeout is not None:
            # Stamp the read timeout as the request's time budget: the
            # server sheds it once we would have stopped listening anyway.
            message["deadline_ms"] = self._timeout * 1000.0
        try:
            self._file.write(encode(message))
            self._file.flush()
            line = self._file.readline(MAX_LINE_BYTES)
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode(line)
        finally:
            self.tracer.finish(span, root=True)
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} != request id {request_id}"
            )
        return _raise_on_error(response)

    def request(self, op: str, **fields: Any) -> dict:
        """One round trip; raises :class:`RemoteError` on server errors.

        With ``retries > 0``, reconnects and retries on connection failure
        and on retryable server errors (see :data:`RETRYABLE_KINDS`).
        """
        payload = self._fields(**fields)
        for attempt in count():
            try:
                return self._roundtrip(op, payload)
            except ConnectionError:
                # Covers ConnectionResetError and BrokenPipeError (both are
                # subclasses) plus the clean-EOF ConnectionError above.
                self._disconnect()
                if attempt >= self.retries:
                    raise
                self._backoff(attempt)
            except TimeoutError:
                # socket.timeout (an OSError, *not* a ConnectionError): the
                # late response may still arrive and sit buffered, where it
                # would be matched against the next request's id — the
                # stream is poisoned either way, so drop the connection and
                # treat the timeout like any other transport failure.
                self._disconnect()
                if attempt >= self.retries:
                    raise
                self._backoff(attempt)
            except RemoteError as exc:
                if attempt >= self.retries or exc.kind not in RETRYABLE_KINDS:
                    raise
                self._backoff(attempt, exc.retry_after_ms)

    # -- verbs ----------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def create_session(
        self,
        session: str,
        *,
        simulator: dict,
        num_variables: int | None = None,
        replace: bool = False,
        max_batch: int | None = None,
        max_delay_ms: float | None = None,
        **estimator_kwargs: Any,
    ) -> dict:
        return self.request(
            "create_session",
            session=session,
            simulator=simulator,
            num_variables=num_variables,
            replace=replace or None,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            **estimator_kwargs,
        )

    def list_sessions(self) -> list[dict]:
        return self.request("list_sessions")["sessions"]

    def evaluate(self, session: str, config: Sequence[float]) -> EstimationOutcome:
        return self._outcome(self.request("evaluate", session=session, config=list(config)))

    def evaluate_many(
        self, session: str, configs: Sequence[Sequence[float]]
    ) -> list[EstimationOutcome]:
        return self._outcomes(
            self.request("evaluate", session=session, configs=[list(c) for c in configs])
        )

    def simulate(
        self,
        session: str,
        config: Sequence[float],
        value: float | None = None,
    ) -> EstimationOutcome:
        return self._outcome(
            self.request("simulate", session=session, config=list(config), value=value)
        )

    def simulate_many(
        self,
        session: str,
        configs: Sequence[Sequence[float]],
        values: Sequence[float] | None = None,
    ) -> list[EstimationOutcome]:
        return self._outcomes(
            self.request(
                "simulate",
                session=session,
                configs=[list(c) for c in configs],
                values=None if values is None else [float(v) for v in values],
            )
        )

    def fit(self, session: str) -> dict:
        return self.request("fit", session=session)

    def stats(self, session: str | None = None) -> dict:
        return self.request("stats", session=session)

    def metrics(self) -> list[dict]:
        """Metrics-registry snapshot (family list; router = aggregated
        fan-out, structurally identical to a worker's)."""
        return self.request("metrics")["families"]

    def traces(self, *, trace_id: str | None = None) -> dict:
        """Span ring-buffer snapshot (``spans`` + ``slow_traces``); a
        ``trace_id`` filters to one trace's spans."""
        return self.request("traces", trace_id=trace_id)

    def snapshot(
        self, session: str, *, name: str | None = None, path: str | None = None
    ) -> dict:
        return self.request("snapshot", session=session, name=name, path=path)

    def restore(
        self,
        *,
        path: str | None = None,
        name: str | None = None,
        session: str | None = None,
        replace: bool = False,
    ) -> dict:
        return self.request(
            "restore", path=path, name=name, session=session, replace=replace or None
        )

    def delete_session(self, session: str) -> dict:
        return self.request("delete_session", session=session)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # -- cluster-only verbs (answered by the router) --------------------
    def migrate(self, session: str, *, worker: str | None = None) -> dict:
        """Live-migrate a session to another worker (cluster router only)."""
        return self.request("migrate", session=session, worker=worker)

    def cluster_stats(self) -> dict:
        """Routing table, worker fleet and admission counters (router only)."""
        return self.request("cluster_stats")

    def replicate(self, session: str | None = None) -> dict:
        """Force snapshot replication now (router only; all sessions when
        ``session`` is omitted)."""
        return self.request("replicate", session=session)


class AsyncServiceClient(_VerbsMixin):
    """Pipelining asyncio client; create with :meth:`connect`.

    ``timeout`` bounds every request (overridable per call): the await is
    wrapped in :func:`asyncio.wait_for` and the ``deadline_ms`` budget is
    stamped onto the wire request, so a hung server fails the call with
    ``TimeoutError`` instead of parking it forever.  The default ``None``
    keeps the old wait-until-``close()`` behaviour.  Unlike the blocking
    client a timeout does *not* poison the stream — responses match by
    ``id``, and a late response to a timed-out request is simply dropped.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout: float | None = None,
        trace_sample: float = 0.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._timeout = timeout
        self.tracer = Tracer(sample_rate=trace_sample, ring_size=512)
        self._ids = count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._receiver = asyncio.create_task(self._receive_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = None,
        trace_sample: float = 0.0,
    ) -> "AsyncServiceClient":
        opening = asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
        if timeout is not None:
            reader, writer = await asyncio.wait_for(opening, timeout)
        else:
            reader, writer = await opening
        return cls(reader, writer, timeout=timeout, trace_sample=trace_sample)

    @property
    def is_broken(self) -> bool:
        """True once the receive loop has died — EOF, reset or a garbled
        frame.  New requests on a broken client would hang until their
        timeout (nothing reads responses any more); owners such as the
        cluster router check this and reconnect."""
        return self._receiver.done()

    async def close(self) -> None:
        self._receiver.cancel()
        try:
            await self._receiver
        except (asyncio.CancelledError, Exception):
            pass
        # Nothing can complete the in-flight futures once the receiver is
        # gone: fail them so concurrent request() calls return instead of
        # awaiting forever (e.g. requests proxied to a hung worker whose
        # client is closed by mark_dead).
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError("client closed with the request in flight")
                )
        self._pending.clear()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _receive_loop(self) -> None:
        try:
            while True:
                response = await read_message(self._reader)
                if response is None:
                    raise ConnectionError("server closed the connection")
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(exc)
            self._pending.clear()

    async def request(
        self, op: str, *, timeout: float | None = None, **fields: Any
    ) -> dict:
        """One request; may pipeline with other in-flight requests.

        ``timeout`` (falling back to the client-wide default) bounds the
        whole round trip and is stamped as the request's ``deadline_ms``
        budget; on expiry the await fails with ``TimeoutError`` and the
        response, should it ever arrive, is dropped by the receive loop.
        """
        if timeout is None:
            timeout = self._timeout
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        message = {"id": request_id, "op": op, **self._fields(**fields)}
        span = self.tracer.start_trace("client.request", attrs={"op": op})
        self._stamp_trace(message, span)
        if "deadline_ms" not in message and timeout is not None:
            message["deadline_ms"] = timeout * 1000.0
        try:
            await write_message(self._writer, message)
            if timeout is not None:
                response = await asyncio.wait_for(future, timeout)
            else:
                response = await future
        finally:
            self.tracer.finish(span, root=True)
            self._pending.pop(request_id, None)
            # If this request was cancelled (e.g. a timed-out health ping)
            # in the same tick the receive loop failed the future, nobody
            # awaits it any more: mark the exception retrieved so the loop
            # does not log "exception was never retrieved".
            if future.done() and not future.cancelled():
                future.exception()
        return _raise_on_error(response)

    # -- verbs ----------------------------------------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def create_session(
        self,
        session: str,
        *,
        simulator: dict,
        num_variables: int | None = None,
        replace: bool = False,
        max_batch: int | None = None,
        max_delay_ms: float | None = None,
        **estimator_kwargs: Any,
    ) -> dict:
        return await self.request(
            "create_session",
            session=session,
            simulator=simulator,
            num_variables=num_variables,
            replace=replace or None,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            **estimator_kwargs,
        )

    async def list_sessions(self) -> list[dict]:
        return (await self.request("list_sessions"))["sessions"]

    async def evaluate(self, session: str, config: Sequence[float]) -> EstimationOutcome:
        return self._outcome(
            await self.request("evaluate", session=session, config=list(config))
        )

    async def evaluate_many(
        self, session: str, configs: Sequence[Sequence[float]]
    ) -> list[EstimationOutcome]:
        return self._outcomes(
            await self.request(
                "evaluate", session=session, configs=[list(c) for c in configs]
            )
        )

    async def simulate(
        self,
        session: str,
        config: Sequence[float],
        value: float | None = None,
    ) -> EstimationOutcome:
        return self._outcome(
            await self.request(
                "simulate", session=session, config=list(config), value=value
            )
        )

    async def simulate_many(
        self,
        session: str,
        configs: Sequence[Sequence[float]],
        values: Sequence[float] | None = None,
    ) -> list[EstimationOutcome]:
        return self._outcomes(
            await self.request(
                "simulate",
                session=session,
                configs=[list(c) for c in configs],
                values=None if values is None else [float(v) for v in values],
            )
        )

    async def fit(self, session: str) -> dict:
        return await self.request("fit", session=session)

    async def stats(self, session: str | None = None) -> dict:
        return await self.request("stats", session=session)

    async def metrics(self) -> list[dict]:
        return (await self.request("metrics"))["families"]

    async def traces(self, *, trace_id: str | None = None) -> dict:
        return await self.request("traces", trace_id=trace_id)

    async def snapshot(
        self, session: str, *, name: str | None = None, path: str | None = None
    ) -> dict:
        return await self.request("snapshot", session=session, name=name, path=path)

    async def restore(
        self,
        *,
        path: str | None = None,
        name: str | None = None,
        session: str | None = None,
        replace: bool = False,
    ) -> dict:
        return await self.request(
            "restore", path=path, name=name, session=session, replace=replace or None
        )

    async def delete_session(self, session: str) -> dict:
        return await self.request("delete_session", session=session)

    async def shutdown(self) -> dict:
        return await self.request("shutdown")

    # -- cluster-only verbs (answered by the router) --------------------
    async def migrate(self, session: str, *, worker: str | None = None) -> dict:
        return await self.request("migrate", session=session, worker=worker)

    async def cluster_stats(self) -> dict:
        return await self.request("cluster_stats")

    async def replicate(self, session: str | None = None) -> dict:
        return await self.request("replicate", session=session)
