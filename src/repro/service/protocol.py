"""Wire protocol of the kriging evaluation service.

Newline-delimited JSON over a plain TCP stream — one request or response
object per line, stdlib only, trivially speakable from ``netcat`` or any
language with a JSON parser.

Requests carry a client-chosen ``id`` (echoed verbatim in the response so
clients may pipeline), an ``op`` naming the verb, and op-specific fields::

    {"id": 7, "op": "evaluate", "session": "fir", "config": [9, 11]}

Responses are either results or structured errors::

    {"id": 7, "ok": true, "result": {"value": -41.2, ...}}
    {"id": 7, "ok": false, "error": {"type": "UnknownSession", "message": "..."}}

Responses to pipelined requests may arrive out of order (the server handles
each request concurrently — that is what lets one client's in-flight
evaluations coalesce in the micro-batcher); clients match on ``id``.

``NaN`` never crosses the wire (it is not JSON): the kriging variance of a
simulation outcome is mapped to ``null`` and back.

Deadlines
---------

Requests may carry a ``deadline_ms`` field: the **remaining time budget**
in milliseconds, relative to the moment the receiver reads the frame
(relative budgets survive hops between machines whose clocks disagree;
absolute timestamps would not).  Every hop restamps the field with
whatever budget is left when it forwards the request — the cluster router
decrements it by its own queueing time before proxying to a worker — and
any hop may *shed* a request whose budget has already run out, answering a
structured ``DeadlineExceeded`` error instead of doing work nobody is
waiting for.  Requests without the field have no deadline (the pre-v2
behaviour).

Tracing
-------

Requests may additionally carry a ``trace_id`` (32 hex chars naming the
end-to-end request tree) and a ``parent_span`` (16 hex chars naming the
sender's span).  Propagation follows the ``deadline_ms`` model exactly:
the *client* decides — by sampling — whether a request is traced and
stamps both fields; every hop that forwards the request restamps
``parent_span`` with its own span id while ``trace_id`` travels untouched,
so the spans each process records (see :mod:`repro.obs.trace`) assemble
into one tree.  Requests without the fields are simply not traced — the
fields are advisory observability context, never validated and never a
reason to reject a request.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from typing import Any

from repro.core.estimator import EstimationOutcome

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "Deadline",
    "DeadlineExceeded",
    "ProtocolError",
    "RemoteError",
    "encode",
    "decode",
    "json_safe",
    "ok_response",
    "error_response",
    "outcome_to_wire",
    "outcome_from_wire",
    "read_message",
    "write_message",
]

PROTOCOL_VERSION = 1

#: Upper bound on one encoded line (asyncio's default 64 KiB readline limit
#: is too small for bulk ``configs`` payloads).
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame: not JSON, not an object, or over the line limit."""


class DeadlineExceeded(Exception):
    """A request's time budget ran out before (or while) serving it.

    Raised inside the server when an already-expired request is shed —
    at dispatch, in the micro-batcher, or while waiting on a proxied
    worker call — and mapped to the ``DeadlineExceeded`` wire error kind.
    """


class Deadline:
    """One request's remaining time budget, stamped at frame-read time.

    Wraps the wire-level ``deadline_ms`` budget (see the module docstring)
    with a monotonic-clock expiry so every later stage — dispatch, queue
    wait, batch flush, proxied call — asks the same object how much time
    is left instead of re-deriving it.
    """

    __slots__ = ("budget_ms", "_expires_at")

    def __init__(self, budget_ms: float) -> None:
        self.budget_ms = float(budget_ms)
        self._expires_at = time.monotonic() + self.budget_ms / 1000.0

    @classmethod
    def from_request(cls, request: dict) -> "Deadline | None":
        """The request's deadline, or ``None`` when it carries none.

        A malformed ``deadline_ms`` (non-numeric, non-finite, bool) is
        treated as absent rather than rejected: deadlines are an
        optimization, and a lenient reader keeps old clients working.
        """
        budget = request.get("deadline_ms")
        if (
            isinstance(budget, (int, float))
            and not isinstance(budget, bool)
            and math.isfinite(budget)
        ):
            return cls(float(budget))
        return None

    def remaining_ms(self) -> float:
        """Milliseconds left; negative once expired."""
        return (self._expires_at - time.monotonic()) * 1000.0

    @property
    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0

    def raise_if_expired(self, context: str) -> None:
        if self.expired:
            raise DeadlineExceeded(
                f"{context}: deadline exceeded by {-self.remaining_ms():.0f} ms "
                f"(budget was {self.budget_ms:.0f} ms)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_ms={self.budget_ms}, remaining_ms={self.remaining_ms():.1f})"


class RemoteError(Exception):
    """Client-side view of a server-reported error.

    Attributes
    ----------
    kind:
        The server-side error type name (e.g. ``"UnknownSession"``).
    details:
        Any extra structured fields the error carried (e.g. the
        ``retry_after_ms`` hint on an ``Overloaded`` rejection).
    """

    def __init__(self, kind: str, message: str, details: dict | None = None) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.details = details if details is not None else {}

    @property
    def retry_after_ms(self) -> float | None:
        """The server's back-off hint, when it sent one."""
        hint = self.details.get("retry_after_ms")
        return float(hint) if isinstance(hint, (int, float)) else None


def encode(message: dict) -> bytes:
    """One message as a compact JSON line (trailing newline included)."""
    try:
        line = json.dumps(message, separators=(",", ":"), allow_nan=False).encode()
    except (TypeError, ValueError) as exc:
        # NaN/Infinity (ValueError) or a non-JSON type such as a numpy
        # scalar (TypeError): not valid strict JSON either way.
        raise ProtocolError(f"unserializable message: {exc}") from exc
    if len(line) >= MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(line)} bytes exceeds {MAX_LINE_BYTES}")
    return line + b"\n"


def json_safe(value: object) -> object:
    """Recursively replace non-finite floats with ``None`` (strict JSON).

    Statistics summaries legitimately contain ``nan`` (empty sketches) and
    ``inf``; on the wire they become ``null``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def decode(line: bytes) -> dict:
    """Parse one line back into a message object."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def ok_response(request_id: Any, result: dict) -> dict:
    """A success response echoing the request ``id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, kind: str, message: str, **details: Any) -> dict:
    """A structured error response echoing the request ``id``.

    ``details`` become extra fields of the error object — machine-readable
    context such as the ``retry_after_ms`` back-off hint of an
    ``Overloaded`` rejection or the ``worker`` an ``Unavailable`` error
    names.
    """
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message, **details},
    }


def outcome_to_wire(outcome: EstimationOutcome) -> dict:
    """An :class:`EstimationOutcome` as a JSON-safe object."""
    variance = outcome.variance
    return {
        "value": outcome.value,
        "interpolated": outcome.interpolated,
        "n_neighbors": outcome.n_neighbors,
        "variance": None if math.isnan(variance) else variance,
        "exact_hit": outcome.exact_hit,
    }


def outcome_from_wire(data: dict) -> EstimationOutcome:
    """Inverse of :func:`outcome_to_wire` (client side)."""
    variance = data.get("variance")
    return EstimationOutcome(
        value=float(data["value"]),
        interpolated=bool(data["interpolated"]),
        n_neighbors=int(data["n_neighbors"]),
        variance=float("nan") if variance is None else float(variance),
        exact_hit=bool(data.get("exact_hit", False)),
    )


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one message; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except ValueError as exc:
        # StreamReader.readline signals an over-limit line as ValueError
        # (LimitOverrunError is converted internally).
        raise ProtocolError(f"line exceeds stream limit: {exc}") from exc
    if not line:
        return None
    if not line.endswith(b"\n"):
        # EOF mid-line: a peer that died while writing.
        raise ProtocolError("connection closed mid-frame")
    return decode(line)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one message and drain the transport."""
    writer.write(encode(message))
    await writer.drain()
