"""The asyncio TCP front end of the kriging evaluation service.

One :class:`KrigingService` owns a set of named
:class:`~repro.service.session.EstimatorSession` instances and speaks the
newline-delimited JSON protocol of :mod:`repro.service.protocol` over
``asyncio.start_server`` (stdlib only — no web framework).

The transport machinery lives in :class:`JsonLineServer`, a small reusable
base (connection handling, per-request tasks, structured errors, graceful
drain); :class:`KrigingService` layers the session registry and verbs on
top.  The cluster router (:mod:`repro.cluster.router`) reuses the same base
to speak the same protocol.

Concurrency model
-----------------

* every connection gets a handler task; every *request* gets its own task,
  so a client may pipeline and its in-flight evaluations coalesce in the
  session's micro-batcher together with everyone else's (responses carry
  the request ``id`` and may return out of order);
* all mutation of a session — micro-batch flushes, direct simulations,
  refits, snapshot writes, restores — serializes on that session's asyncio
  lock, so decisions are deterministic given the arrival order and a
  snapshot can never observe a half-applied batch;
* the actual numeric work runs on worker threads (``asyncio.to_thread``),
  keeping the event loop free to accept and coalesce the next batch.

Verbs: ``ping``, ``create_session``, ``list_sessions``, ``evaluate``,
``simulate``, ``fit``, ``stats``, ``snapshot``, ``restore``,
``delete_session``, ``shutdown``.

Shutdown is graceful: a ``shutdown`` request — or SIGTERM/SIGINT when run
via ``repro serve`` — stops the listener first, then waits for every
in-flight request, flushes each session's micro-batcher, and only then
releases the sessions, so no accepted request is ever dropped mid-solve.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import pathlib
import signal
import time
from typing import Awaitable, Callable

from repro.core import estimator as estimator_mod
from repro.core.estimator import KrigingEstimator
from repro.core.models import variogram_from_state
from repro.obs.httpexp import start_metrics_http
from repro.obs.logs import configure_logging, trace_id_var
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, wire_context
from repro.service import protocol
from repro.service.session import EstimatorSession, check_name, load_snapshot, make_simulator

__all__ = ["JsonLineServer", "KrigingService", "ServiceError", "run_server"]

#: Estimator constructor keywords ``create_session`` forwards verbatim.
ESTIMATOR_KEYS = (
    "distance",
    "nn_min",
    "metric",
    "variogram",
    "min_fit_points",
    "refit_interval",
    "max_neighbors",
    "max_variance",
    "interpolator",
    "neighbor_index",
    "n_jobs",
    "backend",
    "factor_cache",
)


class ServiceError(Exception):
    """A structured, client-visible error (becomes ``error.type`` on the wire).

    ``details`` travel as extra fields of the wire error object (e.g. the
    ``retry_after_ms`` hint of an ``Overloaded`` rejection).
    """

    def __init__(self, kind: str, message: str, **details: object) -> None:
        super().__init__(message)
        self.kind = kind
        self.details = details


def _bad_request(message: str) -> ServiceError:
    return ServiceError("BadRequest", message)


class JsonLineServer:
    """Transport core of a newline-delimited JSON verb server.

    Subclasses implement :meth:`dispatch` (verb -> result dict, raising
    :class:`ServiceError` for structured failures) and may override the
    lifecycle hooks: :meth:`_started` (after the socket binds),
    :meth:`_drained` (after the listener closed and every in-flight request
    finished — flush buffers here) and :meth:`_cleanup` (always, last).

    Request accounting hooks ``_request_begun``/``_request_ended`` bracket
    every dispatch; the base keeps the set of in-flight request tasks that
    the graceful drain waits on.
    """

    #: Ceiling on the graceful drain (seconds): how long ``serve`` waits for
    #: in-flight requests after the listener closed before giving up.
    drain_timeout: float = 30.0

    #: Prefix of this server's dispatch spans (the router overrides it, so
    #: a trace distinguishes the router hop from the worker hop by name).
    span_prefix: str = "server"

    def __init__(self) -> None:
        self.address: tuple[str, int] | None = None
        self._stopping = asyncio.Event()
        self._request_tasks: set[asyncio.Task] = set()
        #: Span collector; subclasses that trace set one.  ``None`` keeps
        #: the transport entirely tracing-free.
        self.tracer: Tracer | None = None

    # -- subclass surface ----------------------------------------------
    async def dispatch(self, request: dict) -> dict:
        raise NotImplementedError

    async def _started(self) -> None:
        """Hook: the socket is bound and :attr:`address` is set."""

    async def _drained(self) -> None:
        """Hook: listener closed, every in-flight request answered."""

    async def _cleanup(self) -> None:
        """Hook: final teardown (runs even when the drain timed out)."""

    def _request_begun(self, request: dict) -> None:
        """Hook: a request entered dispatch."""

    def _request_ended(self, request: dict) -> None:
        """Hook: the request's response is being written."""

    def _deadline_missed(self, request: dict) -> None:
        """Hook: a request was shed at the dispatch door — its deadline had
        already expired when its turn came (the micro-batcher counts its
        own flush-time sheds separately)."""

    # -- request plumbing ----------------------------------------------
    def stop(self) -> None:
        """Ask :meth:`serve` to exit (what the ``shutdown`` verb does after
        its response is on the wire, and what SIGTERM triggers)."""
        self._stopping.set()

    async def _respond(
        self,
        request: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = request.get("id")
        self._request_begun(request)
        # The dispatch span of a traced request: the per-process root every
        # downstream span (queue wait, flush, solve phases) hangs under.
        # trace_id_var correlates any log line emitted while handling it.
        span = None
        token = None
        tracer = self.tracer
        if tracer is not None:
            ctx = request.get("_trace")
            if ctx is not None:
                span = tracer.start(
                    f"{self.span_prefix}.dispatch",
                    None,
                    context=ctx,
                    attrs={"op": request.get("op")},
                )
                request["_span"] = span
                token = trace_id_var.set(span.trace_id)
        try:
            deadline = request.get("_deadline")
            if deadline is not None and deadline.expired:
                # Shed at the door: the client has already given up, so any
                # work done now — a solve, a snapshot write — is wasted and
                # delays requests someone *is* still waiting for.
                self._deadline_missed(request)
                deadline.raise_if_expired("dispatch")
            result = await self.dispatch(request)
            response = protocol.ok_response(request_id, result)
        except protocol.DeadlineExceeded as exc:
            response = protocol.error_response(request_id, "DeadlineExceeded", str(exc))
        except ServiceError as exc:
            response = protocol.error_response(
                request_id, exc.kind, str(exc), **exc.details
            )
        except (ValueError, KeyError, TypeError) as exc:
            response = protocol.error_response(request_id, type(exc).__name__, str(exc))
        except Exception as exc:  # keep the server alive on estimator bugs
            response = protocol.error_response(request_id, "InternalError", repr(exc))
        finally:
            self._request_ended(request)
            if token is not None:
                trace_id_var.reset(token)
        if span is not None:
            if not response.get("ok", False):
                error = response.get("error") or {}
                span.set(error=error.get("type", "Error"))
            # root=True: the dispatch span is this process's top of the
            # trace, so it is what the slow-trace threshold judges.
            tracer.finish(span, root=True)
        try:
            payload = protocol.encode(response)
        except protocol.ProtocolError as exc:
            # A result that does not serialize must still answer the
            # request — a swallowed frame would hang the client forever.
            # The request id itself may be the unserializable part (e.g. a
            # NaN literal, which json.loads accepts): fall back to a null
            # id rather than failing the fallback too.
            fallback = protocol.error_response(
                request_id, "ProtocolError", f"unserializable result: {exc}"
            )
            try:
                payload = protocol.encode(fallback)
            except protocol.ProtocolError:
                fallback["id"] = None
                payload = protocol.encode(fallback)
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except ConnectionError:
            return
        # The response is on the wire; now it is safe to stop accepting.
        if request.get("op") == "shutdown" and response.get("ok"):
            self._stopping.set()

    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read frames, answer each in its own task."""
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    request = await protocol.read_message(reader)
                except protocol.ProtocolError as exc:
                    async with write_lock:
                        await protocol.write_message(
                            writer,
                            protocol.error_response(None, "ProtocolError", str(exc)),
                        )
                    break
                if request is None:
                    break
                # Stamp the deadline now: the wire budget is relative to the
                # moment the frame is read, and everything downstream —
                # dispatch, batcher, proxied calls — shares this one object.
                request["_deadline"] = protocol.Deadline.from_request(request)
                # Same moment for the trace context: one dict lookup for
                # untraced requests (wire_context returns None), the parsed
                # (trace_id, parent_span) tuple for traced ones.  Underscore
                # fields never forward — the router restamps explicitly.
                if self.tracer is not None:
                    ctx = wire_context(request)
                    if ctx is not None:
                        request["_trace"] = ctx
                task = asyncio.create_task(self._respond(request, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Event-loop teardown after shutdown: close the transport and
            # exit quietly instead of surfacing a cancellation traceback.
            pass
        finally:
            # Cleanup must not surface a second CancelledError (e.g. the
            # event loop tearing down after ``shutdown``): a handler task
            # that ends "cancelled" would be logged as a callback error.
            with contextlib.suppress(asyncio.CancelledError):
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, ConnectionError):
                await writer.wait_closed()

    async def _drain_requests(self) -> None:
        """Wait (bounded) for every in-flight request task to answer."""
        pending = [task for task in self._request_tasks if not task.done()]
        if not pending:
            return
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                asyncio.gather(*pending, return_exceptions=True), self.drain_timeout
            )

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        port_file: object | None = None,
        on_ready: Callable[[str, int], None] | None = None,
        handle_signals: bool = False,
    ) -> None:
        """Listen until a ``shutdown`` request (or handled signal) arrives.

        ``port=0`` binds an ephemeral port; the bound address lands in
        :attr:`address`, in ``port_file`` (just the port number — what the
        CI smoke job polls for) and in the ``on_ready`` callback.

        With ``handle_signals`` (the CLI entry points), SIGTERM and SIGINT
        trigger the same graceful path as ``shutdown``: stop accepting,
        drain in-flight requests, flush buffers, exit — so an operator's
        ``kill`` never drops an accepted request.
        """
        server = await asyncio.start_server(
            self.handle_client, host, port, limit=protocol.MAX_LINE_BYTES
        )
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if port_file is not None:
            pathlib.Path(port_file).write_text(f"{self.address[1]}\n")
        handled_signals: list[signal.Signals] = []
        if handle_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(signum, self.stop)
                    handled_signals.append(signum)
        await self._started()
        if on_ready is not None:
            on_ready(self.address[0], self.address[1])
        try:
            async with server:
                await self._stopping.wait()
                # Graceful drain: stop accepting first, then let every
                # request already accepted run to completion and answer.
                server.close()
                await server.wait_closed()
                await self._drain_requests()
                await self._drained()
        finally:
            if handled_signals:
                loop = asyncio.get_running_loop()
                for signum in handled_signals:
                    with contextlib.suppress(NotImplementedError, RuntimeError):
                        loop.remove_signal_handler(signum)
            await self._cleanup()


class KrigingService(JsonLineServer):
    """Session registry plus request dispatch (transport-independent core).

    Parameters
    ----------
    snapshot_dir:
        Directory for named snapshots (``snapshot``/``restore`` with a
        ``name`` instead of a ``path``); created on first use.  Without
        it, those verbs require explicit paths.  Named snapshots may never
        resolve outside this directory (hostile names are rejected).
    max_batch / max_delay_ms:
        Default micro-batcher knobs for new sessions (overridable per
        session at ``create_session``).
    slow_trace_ms / trace_ring:
        Span ring-buffer size and the always-captured slow-trace threshold
        of this server's :class:`~repro.obs.trace.Tracer` (``None``
        disables slow-trace capture).  The server never *samples* — it
        traces whatever arrives already stamped with a ``trace_id``.
    metrics_port:
        When set, an HTTP listener on this port serves ``GET /metrics`` in
        Prometheus text format (same snapshot as the ``metrics`` verb).
    """

    def __init__(
        self,
        *,
        snapshot_dir: object | None = None,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        slow_trace_ms: float | None = None,
        trace_ring: int = 2048,
        metrics_port: int | None = None,
    ) -> None:
        super().__init__()
        self.sessions: dict[str, EstimatorSession] = {}
        self.snapshot_dir = pathlib.Path(snapshot_dir) if snapshot_dir is not None else None
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        #: Dispatch-door sheds of requests naming no (known) session —
        #: per-session sheds live on the sessions themselves.
        self.deadline_misses = 0
        self._inflight: dict[str, int] = {}
        self.tracer = Tracer(
            ring_size=trace_ring,
            slow_ms=float("inf") if slow_trace_ms is None else float(slow_trace_ms),
        )
        self.metrics_port = metrics_port
        self._metrics_http: asyncio.AbstractServer | None = None
        self.metrics = MetricsRegistry()
        self._register_metrics()
        self._ops: dict[str, Callable[[dict], Awaitable[dict]]] = {
            "ping": self._op_ping,
            "create_session": self._op_create_session,
            "list_sessions": self._op_list_sessions,
            "evaluate": self._op_evaluate,
            "simulate": self._op_simulate,
            "fit": self._op_fit,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "traces": self._op_traces,
            "snapshot": self._op_snapshot,
            "restore": self._op_restore,
            "delete_session": self._op_delete_session,
            "shutdown": self._op_shutdown,
        }

    def _register_metrics(self) -> None:
        """Re-register the scattered counters under one roof.

        Counters that components already keep (batcher stats, factor-cache
        stats, estimator pool failures) stay where they are and are read at
        collect time — one source of truth, no double bookkeeping.  Only
        the wait histograms are registry-owned storage, because nothing
        recorded them before.
        """
        m = self.metrics
        self._queue_wait_hist = m.histogram(
            "repro_queue_wait_ms",
            "per-request micro-batcher wait: submit to session lock acquired",
        )
        self._flush_wait_hist = m.histogram(
            "repro_flush_wait_ms",
            "per-flush solve time: session lock acquired to outcomes ready",
        )
        m.counter_fn(
            "repro_deadline_misses_total",
            lambda: float(self.total_deadline_misses()),
            "requests shed because their deadline budget ran out (all sheds)",
        )
        m.counter_fn(
            "repro_pool_failures_total",
            lambda: float(
                sum(s.estimator.stats.pool_failures for s in self.sessions.values())
            ),
            "BrokenProcessPool recoveries across sessions",
        )
        m.counter_fn(
            "repro_shm_attach_failures_total",
            lambda: float(estimator_mod.shm_attach_failures()),
            "shared-memory attach failures that forced the pickled fallback",
        )
        m.counter_fn(
            "repro_batcher_requests_total",
            lambda: float(sum(s.batcher.stats.requests for s in self.sessions.values())),
            "evaluate requests entering the micro-batchers",
        )
        m.counter_fn(
            "repro_batcher_flushes_total",
            lambda: float(sum(s.batcher.stats.flushes for s in self.sessions.values())),
            "micro-batcher flushes (coalesced solve calls)",
        )
        m.counter_fn(
            "repro_factor_cache_events_total",
            self._factor_cache_events,
            "factor-cache outcomes by event (hits, updates, fresh, ...)",
        )
        m.gauge_fn(
            "repro_sessions", lambda: float(len(self.sessions)), "live sessions"
        )
        m.gauge_fn(
            "repro_inflight_requests",
            lambda: float(self.inflight()),
            "requests currently in dispatch",
        )
        m.counter_fn(
            "repro_slow_traces_total",
            lambda: float(self.tracer.slow_traces_captured),
            "traces promoted to the slow-trace buffer",
        )

    def _factor_cache_events(self) -> list[tuple[dict, float]]:
        totals: dict[str, float] = {}
        for session in self.sessions.values():
            for event, value in session.estimator.stats.factor.as_pairs():
                totals[event] = totals.get(event, 0.0) + float(value)
        return [({"event": event}, value) for event, value in sorted(totals.items())]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _session(self, request: dict) -> EstimatorSession:
        name = request.get("session")
        if not isinstance(name, str):
            raise _bad_request("missing 'session' field")
        session = self.sessions.get(name)
        if session is None:
            raise ServiceError("UnknownSession", f"no session named {name!r}")
        return session

    @staticmethod
    def _configs(request: dict) -> tuple[list, bool]:
        """The request's configuration payload: ``(configs, was_batch)``."""
        if "configs" in request:
            configs = request["configs"]
            if not isinstance(configs, list) or not configs:
                raise _bad_request("'configs' must be a non-empty list")
            return configs, True
        if "config" in request:
            return [request["config"]], False
        raise _bad_request("missing 'config' or 'configs' field")

    @staticmethod
    def _checked_config(session: EstimatorSession, config: object) -> list[float]:
        """Validate one configuration *before* it enters the micro-batcher.

        A flush solves many clients' requests together, so a malformed
        config must be rejected at the door — inside the batch it would
        fail every coalesced request, not just its sender's.
        """
        nv = session.estimator.cache.num_variables
        if (
            not isinstance(config, list)
            or len(config) != nv
            or not all(
                isinstance(x, (int, float)) and not isinstance(x, bool) for x in config
            )
        ):
            raise _bad_request(f"config must be a list of {nv} numbers")
        values = [float(x) for x in config]
        if not all(math.isfinite(x) for x in values):
            raise _bad_request("config contains non-finite values")
        return values

    def _snapshot_path(self, request: dict) -> pathlib.Path:
        if "path" in request:
            return pathlib.Path(str(request["path"]))
        if self.snapshot_dir is None:
            raise _bad_request(
                "no 'path' given and the server has no --snapshot-dir"
            )
        name = check_name(request.get("name", request.get("session")))
        path = self.snapshot_dir / f"{name}.npz"
        # check_name already forbids separators and leading dots, but a
        # *resolved* containment check closes what the regex cannot see —
        # e.g. a symlink planted inside the snapshot dir pointing outside
        # it.  resolve() follows symlinks in every existing component and
        # keeps the (possibly not-yet-created) tail.
        base = self.snapshot_dir.resolve()
        resolved = path.resolve()
        if resolved.parent != base and base not in resolved.parents:
            raise _bad_request(
                f"snapshot name {name!r} resolves outside the snapshot dir"
            )
        return path

    async def _register(self, session: EstimatorSession, replace: bool) -> None:
        existing = self.sessions.get(session.name)
        if existing is not None:
            if not replace:
                raise ServiceError(
                    "SessionExists",
                    f"session {session.name!r} exists (pass replace=true to swap)",
                )
            # Claim the name first so concurrent replaces cannot both close
            # the same session; close() can wait on in-flight pool work, so
            # it runs off the event loop.
            self.sessions[session.name] = session
            await asyncio.to_thread(existing.close)
            return
        self.sessions[session.name] = session

    # -- request accounting --------------------------------------------
    def _request_begun(self, request: dict) -> None:
        name = request.get("session")
        if isinstance(name, str):
            self._inflight[name] = self._inflight.get(name, 0) + 1

    def _request_ended(self, request: dict) -> None:
        name = request.get("session")
        if isinstance(name, str):
            left = self._inflight.get(name, 0) - 1
            if left > 0:
                self._inflight[name] = left
            else:
                self._inflight.pop(name, None)

    def inflight(self, session: str | None = None) -> int:
        """In-flight request count — one session's, or the whole server's."""
        if session is not None:
            return self._inflight.get(session, 0)
        return sum(self._inflight.values())

    def _deadline_missed(self, request: dict) -> None:
        name = request.get("session")
        session = self.sessions.get(name) if isinstance(name, str) else None
        if session is not None:
            session.deadline_misses += 1
        else:
            self.deadline_misses += 1

    def total_deadline_misses(self) -> int:
        """Every shed so far: dispatch-door plus flush-time, all sessions."""
        return self.deadline_misses + sum(
            session.deadline_misses + session.batcher.stats.deadline_misses
            for session in self.sessions.values()
        )

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    async def _op_ping(self, request: dict) -> dict:
        # deadline_misses comes from the metrics registry — the same single
        # source the stats verb reads, so the two can never drift apart.
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "sessions": len(self.sessions),
            "inflight": self.inflight(),
            "deadline_misses": int(self.metrics.value("repro_deadline_misses_total")),
        }

    async def _op_create_session(self, request: dict) -> dict:
        name = check_name(request.get("session"))
        spec = request.get("simulator")
        if spec is None:
            raise _bad_request("missing 'simulator' spec")
        num_variables = request.get("num_variables")
        kwargs = {key: request[key] for key in ESTIMATOR_KEYS if key in request}
        if isinstance(kwargs.get("variogram"), dict):
            # A fixed model shipped as its to_state() dict (kind strings
            # like "auto"/"exponential" identify from the data instead).
            kwargs["variogram"] = variogram_from_state(kwargs["variogram"])

        def build() -> tuple[KrigingEstimator, int]:
            # Off the loop: benchmark simulators construct whole substrates.
            simulate, nv = make_simulator(
                spec, int(num_variables) if num_variables is not None else None
            )
            return KrigingEstimator(simulate, nv, **kwargs), nv

        estimator, nv = await asyncio.to_thread(build)
        session = EstimatorSession(
            name,
            estimator,
            spec,
            max_batch=int(request.get("max_batch", self.max_batch)),
            max_delay_ms=float(request.get("max_delay_ms", self.max_delay_ms)),
            tracer=self.tracer,
            queue_wait_hist=self._queue_wait_hist,
            flush_wait_hist=self._flush_wait_hist,
        )
        await self._register(session, bool(request.get("replace", False)))
        return {
            "session": name,
            "num_variables": nv,
            "max_batch": session.batcher.max_batch,
            "max_delay_ms": session.batcher.max_delay_ms,
        }

    async def _op_list_sessions(self, request: dict) -> dict:
        return {
            "sessions": [
                {
                    "session": session.name,
                    "num_variables": session.estimator.cache.num_variables,
                    "cache_size": len(session.estimator.cache),
                }
                for session in self.sessions.values()
            ]
        }

    async def _op_evaluate(self, request: dict) -> dict:
        session = self._session(request)
        configs, was_batch = self._configs(request)
        deadline = request.get("_deadline")
        span = request.get("_span")
        if was_batch:
            # A bulk request is already a batch: go straight to
            # evaluate_batch under the session lock (deterministic grouping,
            # no reason to trickle it through the coalescer).
            checked = [self._checked_config(session, config) for config in configs]
            t_wait = time.perf_counter()
            async with session.lock:
                t_lock = time.perf_counter()
                if span is not None:
                    self.tracer.emit(
                        "server.lock_wait", span.trace_id, span.span_id, t_wait, t_lock
                    )
                # Re-check after the lock wait: the budget may have run out
                # queueing behind other flushes — shed before the solve.
                if deadline is not None and deadline.expired:
                    session.deadline_misses += 1
                    deadline.raise_if_expired("evaluate")
                phases_before = session.solve_phase_totals() if span is not None else None
                outcomes = await asyncio.to_thread(session.evaluate_batch, checked)
                if span is not None and phases_before is not None:
                    after = session.solve_phase_totals()
                    self.tracer.record_phases(
                        span.trace_id,
                        span.span_id,
                        t_lock,
                        [
                            ("solve.assembly", after[0] - phases_before[0]),
                            ("solve.factorize", after[1] - phases_before[1]),
                            ("solve.backsolve", after[2] - phases_before[2]),
                        ],
                    )
            wired = [protocol.outcome_to_wire(outcome) for outcome in outcomes]
            return {"outcomes": wired}
        waits: dict = {}
        outcome = await session.evaluate(
            self._checked_config(session, configs[0]), deadline, span=span, waits=waits
        )
        wired_one = protocol.outcome_to_wire(outcome)
        # Hop-level latency in the response itself (tracing-independent):
        # how long this request sat in the coalescer and how long its flush
        # solved.  Extra keys are ignored by outcome_from_wire.
        wired_one.update(waits)
        return wired_one

    async def _op_simulate(self, request: dict) -> dict:
        session = self._session(request)
        configs, was_batch = self._configs(request)
        values = request.get("values")
        if values is None and "value" in request:
            values = [request["value"]]
        if values is not None and (
            not isinstance(values, list) or len(values) != len(configs)
        ):
            raise _bad_request(
                f"'values' must be a list matching the {len(configs)} configurations"
            )

        # Same door check as evaluate: simulate *permanently* mutates the
        # shared cache, so a NaN coordinate would poison every client's
        # future variogram fits (and any snapshot taken afterwards).
        checked = [self._checked_config(session, config) for config in configs]

        def run() -> list[dict]:
            return [
                protocol.outcome_to_wire(
                    session.simulate(
                        config, None if values is None else float(values[i])
                    )
                )
                for i, config in enumerate(checked)
            ]

        async with session.lock:
            wired = await asyncio.to_thread(run)
        return {"outcomes": wired} if was_batch else wired[0]

    async def _op_fit(self, request: dict) -> dict:
        session = self._session(request)
        async with session.lock:
            return protocol.json_safe(await asyncio.to_thread(session.refit))

    async def _op_stats(self, request: dict) -> dict:
        # Statistics legitimately contain NaN (empty sketches): scrub to
        # null so the response stays strict JSON.
        if "session" in request:
            session = self._session(request)
            stats = session.stats()
            stats["inflight"] = self.inflight(session.name)
            return protocol.json_safe(stats)
        return protocol.json_safe(
            {
                "sessions": [session.stats() for session in self.sessions.values()],
                # Registry-derived, like ping's: one assembly, no drift.
                "deadline_misses": int(
                    self.metrics.value("repro_deadline_misses_total")
                ),
            }
        )

    async def _op_metrics(self, request: dict) -> dict:
        return protocol.json_safe({"families": self.metrics.collect()})

    async def _op_traces(self, request: dict) -> dict:
        trace_id = request.get("trace_id")
        return protocol.json_safe(
            {
                "spans": self.tracer.spans(
                    trace_id if isinstance(trace_id, str) else None
                ),
                "slow_traces": self.tracer.slow_traces(),
            }
        )

    async def _op_snapshot(self, request: dict) -> dict:
        session = self._session(request)
        path = self._snapshot_path(request)
        # Drain first (the flush needs the lock drain waits on), then write
        # under the lock so no new flush interleaves with the file write.
        await session.batcher.drain()
        async with session.lock:
            written = await asyncio.to_thread(session.snapshot, path)
        return {"session": session.name, "path": str(written)}

    async def _op_restore(self, request: dict) -> dict:
        if "path" not in request and "name" not in request and "session" not in request:
            raise _bad_request("missing 'path' (or snapshot 'name')")
        path = self._snapshot_path(request)
        def rebuild() -> EstimatorSession:
            # Off the loop: restoring re-inserts every cache row into the
            # neighbour index.
            state = load_snapshot(path)
            return EstimatorSession.from_state(
                state,
                name=request.get("session"),
                max_batch=int(request.get("max_batch", self.max_batch)),
                max_delay_ms=float(request.get("max_delay_ms", self.max_delay_ms)),
                tracer=self.tracer,
                queue_wait_hist=self._queue_wait_hist,
                flush_wait_hist=self._flush_wait_hist,
            )

        try:
            session = await asyncio.to_thread(rebuild)
        except FileNotFoundError as exc:
            raise ServiceError("UnknownSnapshot", str(exc)) from exc
        await self._register(session, bool(request.get("replace", False)))
        return {
            "session": session.name,
            "path": str(path),
            "cache_size": len(session.estimator.cache),
        }

    async def _op_delete_session(self, request: dict) -> dict:
        session = self._session(request)
        # Drain the batcher first so no coalesced request is dropped, then
        # unregister; close() may wait on pool work, so off the loop.
        await session.batcher.drain()
        self.sessions.pop(session.name, None)
        await asyncio.to_thread(session.close)
        return {"session": session.name, "deleted": True}

    async def _op_shutdown(self, request: dict) -> dict:
        return {"stopping": True}

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    async def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = self._ops.get(op) if isinstance(op, str) else None
        if handler is None:
            raise ServiceError("UnknownOp", f"unknown op {op!r}")
        return await handler(request)

    async def _started(self) -> None:
        if self.metrics_port is not None and self.address is not None:
            self._metrics_http = await start_metrics_http(
                lambda: self.metrics.collect(), self.address[0], self.metrics_port
            )

    async def _drained(self) -> None:
        # Every request task has answered; flush whatever the batchers
        # still hold (e.g. requests whose flush task had not run yet).
        for session in list(self.sessions.values()):
            await session.batcher.drain()

    async def _cleanup(self) -> None:
        if self._metrics_http is not None:
            self._metrics_http.close()
            with contextlib.suppress(Exception):
                await self._metrics_http.wait_closed()
            self._metrics_http = None
        for session in self.sessions.values():
            session.close()


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    snapshot_dir: object | None = None,
    max_batch: int = 64,
    max_delay_ms: float = 2.0,
    port_file: object | None = None,
    on_ready: Callable[[str, int], None] | None = None,
    slow_trace_ms: float | None = None,
    trace_ring: int = 2048,
    metrics_port: int | None = None,
    log_level: str = "info",
) -> None:
    """Blocking entry point used by ``repro serve``.

    Installs SIGTERM/SIGINT handlers: either signal triggers the graceful
    drain (stop accepting, answer in-flight requests, flush batchers) and
    the process exits 0.
    """
    configure_logging(log_level)
    service = KrigingService(
        snapshot_dir=snapshot_dir,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        slow_trace_ms=slow_trace_ms,
        trace_ring=trace_ring,
        metrics_port=metrics_port,
    )
    asyncio.run(
        service.serve(
            host, port, port_file=port_file, on_ready=on_ready, handle_signals=True
        )
    )
