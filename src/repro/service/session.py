"""Named estimator sessions and their versioned snapshot files.

A session is one long-lived :class:`~repro.core.estimator.KrigingEstimator`
— simulation cache, variogram and statistics — shared by every client that
names it.  Sessions are what make the service pay: parallel design-space
searches over the same application share one support cache, so each
client's simulations become every other client's interpolation
neighbours.

Snapshots serialize a session to a single ``.npz`` file: a versioned JSON
manifest (configuration, fitted variogram, statistics including the
quantile-sketch markers) plus the cache arrays stored as raw float64 — so a
restore reproduces decisions and cache contents **bit for bit**.  The
simulate callable does not serialize; it is rebuilt from the session's
JSON *simulator spec* (:func:`make_simulator`), which is stored in the
manifest.

Format version 2 adds the estimator's Cholesky factor cache as dedicated
``factor{i}_rows`` / ``factor{i}_gamma`` / ``factor{i}_chol`` NPZ members
(shifts and entry count in the manifest), so a restored session starts
*warm* — zero refactorizations on a replayed workload.  Version-1 files
still load; they simply restore with a cold factor cache.  A corrupted or
missing factor section likewise degrades to a cold restore (with a
``RuntimeWarning``) instead of failing the whole restore.

Simulator specs
---------------

``{"kind": "linear", "coefficients": [...], "offset": o}``
    ``value = config @ coefficients + offset`` (coefficients cycle over the
    dimension when shorter) — the load generator's smooth field.
``{"kind": "quadratic", "center": [...], "scale": s, "offset": o}``
    ``value = offset + scale * ||config - center||^2`` — a curved field for
    exercising non-linear variograms.
``{"kind": "benchmark", "name": "fir", "scale": "small"}``
    The real thing: ``problem.simulate`` of a registry benchmark
    (FIR/IIR/FFT/DCT/HEVC/SqueezeNet word-length or sensitivity problems).
    ``num_variables`` is taken from the problem.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import re
import warnings
from typing import Callable, Sequence

import numpy as np

from repro.core.estimator import EstimationOutcome, KrigingEstimator
from repro.service.batcher import MicroBatcher
from repro.service.protocol import Deadline

__all__ = [
    "SNAPSHOT_VERSION",
    "EstimatorSession",
    "make_simulator",
    "save_snapshot",
    "load_snapshot",
]

SNAPSHOT_VERSION = 2

#: Snapshot versions this build can read.  Version 1 predates the factor
#: cache section — those files restore with a cold cache.
_READABLE_VERSIONS = (1, 2)

#: Session (and snapshot) names must be filesystem- and protocol-safe
#: (matched with fullmatch: unlike ``$``, it rejects trailing newlines).
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}")

SimulateFn = Callable[[np.ndarray], float]


def check_name(name: object) -> str:
    """Validate a session/snapshot name (no separators, no traversal)."""
    if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
        raise ValueError(
            f"invalid name {name!r}: expected [A-Za-z0-9._-]+ starting with an "
            "alphanumeric, at most 128 characters"
        )
    return name


# ---------------------------------------------------------------------------
# simulator registry
# ---------------------------------------------------------------------------
def _linear_simulator(num_variables: int, spec: dict) -> SimulateFn:
    coefficients = np.resize(
        np.asarray(spec.get("coefficients", [1.0]), dtype=np.float64), num_variables
    )
    offset = float(spec.get("offset", 0.0))

    def simulate(config: np.ndarray) -> float:
        return float(np.asarray(config, dtype=np.float64) @ coefficients + offset)

    return simulate


def _quadratic_simulator(num_variables: int, spec: dict) -> SimulateFn:
    center = np.resize(
        np.asarray(spec.get("center", [0.0]), dtype=np.float64), num_variables
    )
    scale = float(spec.get("scale", 1.0))
    offset = float(spec.get("offset", 0.0))

    def simulate(config: np.ndarray) -> float:
        delta = np.asarray(config, dtype=np.float64) - center
        return float(offset + scale * (delta @ delta))

    return simulate


def make_simulator(spec: dict, num_variables: int | None = None) -> tuple[SimulateFn, int]:
    """Build a simulate callable from a JSON spec.

    Returns ``(simulate, num_variables)`` — benchmark simulators define
    their own dimension; analytic kinds require ``num_variables``.
    """
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ValueError(f"simulator spec must be an object with a 'kind', got {spec!r}")
    kind = spec["kind"]
    if kind == "benchmark":
        # Imported lazily: the registry pulls in every benchmark substrate.
        from repro.experiments.registry import build_benchmark

        setup = build_benchmark(spec.get("name", "fir"), spec.get("scale", "small"))
        return setup.problem.simulate, setup.problem.num_variables
    if num_variables is None:
        raise ValueError(f"simulator kind {kind!r} requires num_variables")
    if kind == "linear":
        return _linear_simulator(num_variables, spec), num_variables
    if kind == "quadratic":
        return _quadratic_simulator(num_variables, spec), num_variables
    raise ValueError(
        f"unknown simulator kind {kind!r}; expected 'linear', 'quadratic' or 'benchmark'"
    )


# ---------------------------------------------------------------------------
# snapshot files
# ---------------------------------------------------------------------------
def save_snapshot(path: object, state: dict) -> pathlib.Path:
    """Write a session state to ``path`` as a single ``.npz`` file.

    The cache arrays travel as raw float64 NPZ members (bitwise); the rest
    of the state is a JSON manifest embedded as a uint8 member.  ``.npz``
    is appended when missing (numpy's convention).
    """
    state = dict(state)
    estimator = dict(state["estimator"])
    cache = dict(estimator["cache"])
    points = np.ascontiguousarray(cache.pop("points"), dtype=np.float64)
    values = np.ascontiguousarray(cache.pop("values"), dtype=np.float64)
    estimator["cache"] = cache
    members: dict[str, np.ndarray] = {}
    factor_state = estimator.pop("factor_entries", None)
    if factor_state is not None:
        entries = factor_state["entries"]
        for i, entry in enumerate(entries):
            members[f"factor{i}_rows"] = np.ascontiguousarray(
                entry["rows"], dtype=np.int64
            )
            members[f"factor{i}_gamma"] = np.ascontiguousarray(
                entry["gamma"], dtype=np.float64
            )
            members[f"factor{i}_chol"] = np.ascontiguousarray(
                entry["chol"], dtype=np.float64
            )
        estimator["factor_section"] = {
            "version": int(factor_state["version"]),
            "count": len(entries),
            "shifts": [float(entry["shift"]) for entry in entries],
        }
    else:
        estimator["factor_section"] = None
    state["estimator"] = estimator
    manifest = json.dumps({"snapshot_version": SNAPSHOT_VERSION, **state})
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        manifest=np.frombuffer(manifest.encode(), dtype=np.uint8),
        cache_points=points,
        cache_values=values,
        **members,
    )
    return path


def _load_factor_entries(archive: object, meta: dict | None) -> dict | None:
    """Reassemble the factor-cache state from its NPZ members.

    Raises on any inconsistency; the caller degrades to a cold restore.
    """
    if meta is None:
        return None
    count = int(meta["count"])
    shifts = meta["shifts"]
    if len(shifts) != count:
        raise ValueError("factor-cache shift count mismatch")
    entries = []
    for i in range(count):
        entries.append(
            {
                "rows": np.ascontiguousarray(archive[f"factor{i}_rows"], dtype=np.int64),
                "gamma": np.ascontiguousarray(
                    archive[f"factor{i}_gamma"], dtype=np.float64
                ),
                "chol": np.ascontiguousarray(
                    archive[f"factor{i}_chol"], dtype=np.float64
                ),
                "shift": float(shifts[i]),
            }
        )
    return {"version": int(meta["version"]), "entries": entries}


def load_snapshot(path: object) -> dict:
    """Read a :func:`save_snapshot` file back into a session state dict."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as archive:
        try:
            manifest = bytes(archive["manifest"].tobytes()).decode()
            state = json.loads(manifest)
            points = np.ascontiguousarray(archive["cache_points"], dtype=np.float64)
            values = np.ascontiguousarray(archive["cache_values"], dtype=np.float64)
        except KeyError as exc:
            raise ValueError(f"{path} is not a session snapshot: missing {exc}") from exc
        version = state.get("snapshot_version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(f"unsupported snapshot version {version!r} in {path}")
        factor_meta = state["estimator"].pop("factor_section", None)
        factor_entries = None
        if version >= 2 and factor_meta is not None:
            try:
                factor_entries = _load_factor_entries(archive, factor_meta)
            except Exception as exc:
                warnings.warn(
                    f"discarding corrupted factor-cache section in {path}: {exc}; "
                    "restoring with a cold factor cache",
                    RuntimeWarning,
                    stacklevel=2,
                )
                factor_entries = None
    state["estimator"]["cache"]["points"] = points
    state["estimator"]["cache"]["values"] = values
    state["estimator"]["factor_entries"] = factor_entries
    return state


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------
class EstimatorSession:
    """One named, long-lived estimator shared by many clients.

    Wraps the estimator with the pieces the server needs per session: the
    asyncio write lock serializing every mutation (micro-batch flushes,
    direct simulations, refits, restores), the
    :class:`~repro.service.batcher.MicroBatcher` coalescing concurrent
    evaluations, and snapshot/restore.

    Direct (non-asyncio) use is fine too — tests and the snapshot tooling
    call :meth:`evaluate_batch` / :meth:`snapshot` synchronously.
    """

    def __init__(
        self,
        name: str,
        estimator: KrigingEstimator,
        simulator_spec: dict,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        tracer: object | None = None,
        queue_wait_hist: object | None = None,
        flush_wait_hist: object | None = None,
    ) -> None:
        self.name = check_name(name)
        self.estimator = estimator
        self.simulator_spec = dict(simulator_spec)
        self.lock = asyncio.Lock()
        #: Requests shed at the dispatch door because their deadline had
        #: already expired (the batcher counts its own flush-time sheds).
        self.deadline_misses = 0
        # Observability rides along but never into snapshots: to_state()
        # must stay byte-identical with tracing on or off.
        self.batcher = MicroBatcher(
            self.evaluate_batch,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            lock=self.lock,
            tracer=tracer,
            phase_totals=self.solve_phase_totals,
            queue_wait_hist=queue_wait_hist,
            flush_wait_hist=flush_wait_hist,
        )

    # -- query paths ----------------------------------------------------
    def evaluate_batch(self, configs: Sequence[object]) -> list[EstimationOutcome]:
        """Synchronous batch evaluation (the batcher's flush function)."""
        return self.estimator.evaluate_batch(np.asarray(configs, dtype=np.float64))

    async def evaluate(
        self,
        config: object,
        deadline: Deadline | None = None,
        *,
        span: object | None = None,
        waits: dict | None = None,
    ) -> EstimationOutcome:
        """One query through the micro-batcher (coalesces across clients).

        ``span``/``waits`` forward to :meth:`MicroBatcher.submit`: the
        request's dispatch span when traced, and an optional sink for its
        measured queue/flush waits.
        """
        return await self.batcher.submit(config, deadline, span=span, waits=waits)

    def solve_phase_totals(self) -> tuple[float, float, float]:
        """Cumulative assembly/factorize/backsolve seconds (the batcher
        takes before/after deltas around each flush to synthesize
        solve-phase spans)."""
        solve = self.estimator.stats.solve
        return (
            solve.assembly_seconds,
            solve.factorize_seconds,
            solve.backsolve_seconds,
        )

    def simulate(self, config: object, value: float | None = None) -> EstimationOutcome:
        """Force a simulation — or record a client-measured ``value``."""
        if value is None:
            return self.estimator.force_simulate(config)
        return self.estimator.record_measurement(config, value)

    def refit(self) -> dict:
        """Force a variogram re-identification; returns a description."""
        model = self.estimator.refit_variogram()
        described: object = None
        to_state = getattr(model, "to_state", None)
        if callable(to_state):
            described = to_state()
        return {"model": described if described is not None else repr(model)}

    def stats(self) -> dict:
        """JSON-safe statistics: estimator counters plus batcher coalescing."""
        stats = self.estimator.stats
        return {
            "session": self.name,
            "num_variables": self.estimator.cache.num_variables,
            "cache_size": len(self.estimator.cache),
            "n_simulated": stats.n_simulated,
            "n_interpolated": stats.n_interpolated,
            "n_exact_hits": stats.n_exact_hits,
            "interpolated_fraction": stats.interpolated_fraction,
            "neighbor_sketch": stats.neighbor_sketch.summary(),
            "factor": dict(stats.factor.as_pairs()),
            "deadline_misses": self.deadline_misses
            + self.batcher.stats.deadline_misses,
            "batcher": self.batcher.stats.summary(),
        }

    # -- snapshot / restore ---------------------------------------------
    def to_state(self) -> dict:
        """Session state (estimator state plus name and simulator spec)."""
        return {
            "name": self.name,
            "simulator": self.simulator_spec,
            "estimator": self.estimator.to_state(),
        }

    def snapshot(self, path: object) -> pathlib.Path:
        """Write this session to a snapshot file (see :func:`save_snapshot`).

        Callers on the event loop must drain the batcher and hold the
        session lock around this (the server's ``snapshot`` verb does), so
        a snapshot never lands mid-batch.
        """
        return save_snapshot(path, self.to_state())

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        name: str | None = None,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        tracer: object | None = None,
        queue_wait_hist: object | None = None,
        flush_wait_hist: object | None = None,
        **overrides: object,
    ) -> "EstimatorSession":
        """Rebuild a session from a state dict (``name`` optionally renames).

        The simulate callable is rebuilt from the stored simulator spec;
        ``overrides`` forward to
        :meth:`~repro.core.estimator.KrigingEstimator.from_state` (e.g.
        ``n_jobs`` for different hardware).
        """
        spec = state["simulator"]
        num_variables = int(state["estimator"]["cache"]["num_variables"])
        simulate, spec_nv = make_simulator(spec, num_variables)
        if spec_nv != num_variables:
            raise ValueError(
                f"simulator dimension {spec_nv} != snapshot dimension {num_variables}"
            )
        estimator = KrigingEstimator.from_state(simulate, state["estimator"], **overrides)
        return cls(
            name if name is not None else state["name"],
            estimator,
            spec,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            tracer=tracer,
            queue_wait_hist=queue_wait_hist,
            flush_wait_hist=flush_wait_hist,
        )

    @classmethod
    def restore(cls, path: object, **kwargs: object) -> "EstimatorSession":
        """Load a snapshot file into a fresh session."""
        return cls.from_state(load_snapshot(path), **kwargs)

    def close(self) -> None:
        """Release the estimator's solve executor (idempotent)."""
        self.estimator.close()
