"""Signal-processing benchmark kernels (FIR, IIR, FFT).

Each kernel provides a double-precision reference implementation and a
bit-accurate fixed-point implementation whose internal precisions are driven
by a word-length vector — the configuration ``e`` explored by the paper's
optimization algorithms.  The quality metric of all three kernels is the
output noise power (in dB) between the two implementations, measured on a
pre-generated input data set ``I``.
"""

from repro.signal.dct import DCTBenchmark, dct_matrix
from repro.signal.fft import FFTBenchmark
from repro.signal.fir import FIRBenchmark, design_lowpass_fir
from repro.signal.generators import gaussian_signal, multitone_signal, uniform_signal
from repro.signal.iir import IIRBenchmark, design_butterworth_sos

__all__ = [
    "FIRBenchmark",
    "design_lowpass_fir",
    "IIRBenchmark",
    "design_butterworth_sos",
    "FFTBenchmark",
    "DCTBenchmark",
    "dct_matrix",
    "uniform_signal",
    "gaussian_signal",
    "multitone_signal",
]
