"""8x8 2-D DCT benchmark (``Nv = 6``) — an extra image-processing kernel.

Not part of the paper's Table I, but a natural member of the benchmark
family its introduction motivates (image/video kernels) and a demonstration
of how to add a new substrate to the registry: the separable 8x8 DCT-II used
by JPEG/intra coding, with optimizable word-lengths on

* the row-pass MAC output and row-pass result register (2),
* the transpose/intermediate buffer (1),
* the column-pass MAC output and result register (2),
* the final coefficient register (1).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise import noise_power_db
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import quantize
from repro.utils.rng import derive_rng
from repro.utils.validation import check_integer_vector

__all__ = ["dct_matrix", "DCTBenchmark"]

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n`` (rows are basis vectors)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    matrix = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    matrix[0] *= np.sqrt(1.0 / n)
    matrix[1:] *= np.sqrt(2.0 / n)
    return matrix


class DCTBenchmark:
    """Fixed-point separable 8x8 DCT over a batch of image blocks.

    The word-length vector is ``[w_rmac, w_rout, w_buf, w_cmac, w_cout,
    w_coef]``.  Coefficients (the DCT basis) are pre-quantized at a fixed
    precision in both implementations.
    """

    NUM_VARIABLES = 6
    VARIABLE_NAMES = ("row_mac", "row_out", "buffer", "col_mac", "col_out", "output")

    def __init__(
        self,
        *,
        n_blocks: int = 96,
        seed: int = 4,
        coeff_bits: int = 16,
    ) -> None:
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be > 0, got {n_blocks}")
        rng = derive_rng(seed, "dct", "blocks")
        base = rng.uniform(0.0, 0.999, size=(n_blocks, BLOCK, BLOCK))
        # Mix in smooth content so the blocks have realistic spectra.
        ramp = np.linspace(0.0, 0.5, BLOCK)
        base = 0.5 * base + 0.5 * (ramp[None, :, None] + ramp[None, None, :]) / 2.0
        input_fmt = QFormat(integer_bits=0, frac_bits=15, signed=False)
        self.blocks = quantize(base, input_fmt)

        coeff_fmt = QFormat(integer_bits=0, frac_bits=coeff_bits - 1)
        self.dct = quantize(dct_matrix(), coeff_fmt)
        self._reference = np.einsum(
            "ij,njk,lk->nil", self.dct, self.blocks, self.dct, optimize=True
        )

    def reference(self) -> np.ndarray:
        """Double-precision 2-D DCT coefficients (the baseline)."""
        return self._reference

    @staticmethod
    def _fmt(word_length: int, integer_bits: int) -> QFormat:
        return QFormat(
            integer_bits=integer_bits, frac_bits=int(word_length) - 1 - integer_bits
        )

    def _pass(
        self,
        data: np.ndarray,
        mac_fmt: QFormat,
        out_fmt: QFormat,
    ) -> np.ndarray:
        """One separable DCT pass along the last axis with MAC quantization."""
        acc = np.zeros(data.shape[:-1] + (BLOCK,))
        for k in range(BLOCK):
            acc = quantize(acc + data[..., k, None] * self.dct[:, k], mac_fmt)
        return quantize(acc, out_fmt)

    def simulate(self, word_lengths: object) -> np.ndarray:
        """Bit-accurate fixed-point 2-D DCT for the 6-vector ``w``."""
        w = check_integer_vector("word_lengths", word_lengths, minimum=1)
        if w.size != self.NUM_VARIABLES:
            raise ValueError(f"expected {self.NUM_VARIABLES} word-lengths, got {w.size}")
        # 8x8 DCT of values in [0, 1): DC can reach 8, AC terms stay below 4.
        row_mac = self._fmt(int(w[0]), 3)
        row_out = self._fmt(int(w[1]), 3)
        buffer_fmt = self._fmt(int(w[2]), 3)
        col_mac = self._fmt(int(w[3]), 4)
        col_out = self._fmt(int(w[4]), 4)
        out_fmt = self._fmt(int(w[5]), 4)

        rows = self._pass(self.blocks, row_mac, row_out)  # transform rows
        rows = quantize(np.swapaxes(rows, 1, 2), buffer_fmt)
        cols = self._pass(rows, col_mac, col_out)
        return quantize(np.swapaxes(cols, 1, 2), out_fmt)

    def noise_power_db(self, word_lengths: object) -> float:
        """Output noise power (dB) of a configuration."""
        return noise_power_db(self.simulate(word_lengths), self._reference)
