"""64-point FFT benchmark (``Nv = 10``).

The paper's third benchmark: a 64-point FFT with ten optimizable
word-lengths.  The decomposition used here:

* six **per-stage data word-lengths** — the butterfly outputs of each of the
  ``log2(64) = 6`` radix-2 stages (variables 0–5);
* four **twiddle-factor word-lengths** for stages 3–6 (variables 6–9) —
  stages 1 and 2 only use the exact twiddles ``{1, -1, j, -j}`` and thus have
  nothing to quantize.

Each butterfly applies the conventional ``1/2`` block-floating scaling so
every internal signal stays inside ``[-1, 1]``; the reference output is the
identically scaled double-precision FFT (``X = FFT(x) / 64``).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise import noise_power_db
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import quantize
from repro.signal.generators import complex_signal
from repro.utils.validation import check_integer_vector

__all__ = ["FFTBenchmark", "bit_reverse_permutation"]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Bit-reversal index permutation for an ``n``-point radix-2 FFT."""
    if n < 2 or n & (n - 1) != 0:
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


class FFTBenchmark:
    """Fixed-point radix-2 DIT FFT over frames of 64 complex samples.

    The word-length vector is
    ``[w_stage1, ..., w_stage6, w_tw3, w_tw4, w_tw5, w_tw6]``.
    """

    NUM_VARIABLES = 10
    N_POINTS = 64
    N_STAGES = 6
    VARIABLE_NAMES = tuple(
        [f"stage{s}_data" for s in range(1, 7)] + [f"stage{s}_twiddle" for s in range(3, 7)]
    )
    _EXACT_TWIDDLE_STAGES = 2  # stages 1-2 use {1, -1, j, -j} exactly

    def __init__(
        self,
        *,
        n_frames: int = 48,
        seed: int = 2,
        input_bits: int = 16,
    ) -> None:
        input_fmt = QFormat(integer_bits=0, frac_bits=input_bits - 1)
        raw = complex_signal(n_frames, self.N_POINTS, seed=seed, amplitude=0.999)
        self.inputs = (
            quantize(raw.real, input_fmt) + 1j * quantize(raw.imag, input_fmt)
        )
        self._permutation = bit_reverse_permutation(self.N_POINTS)
        self._twiddles = [
            np.exp(-2j * np.pi * np.arange(half) / (2 * half))
            for half in (2**s for s in range(self.N_STAGES))
        ]
        self._reference = np.fft.fft(self.inputs, axis=1) / self.N_POINTS

    def reference(self) -> np.ndarray:
        """Scaled double-precision FFT of the input frames (the baseline)."""
        return self._reference

    def _quantize_complex(self, values: np.ndarray, fmt: QFormat) -> np.ndarray:
        return quantize(values.real, fmt) + 1j * quantize(values.imag, fmt)

    def simulate(self, word_lengths: object) -> np.ndarray:
        """Bit-accurate fixed-point FFT output for the 10-vector ``w``."""
        w = check_integer_vector("word_lengths", word_lengths, minimum=1)
        if w.size != self.NUM_VARIABLES:
            raise ValueError(f"expected {self.NUM_VARIABLES} word-lengths, got {w.size}")
        data_wl = w[: self.N_STAGES]
        twiddle_wl = w[self.N_STAGES :]

        data = self.inputs[:, self._permutation].copy()
        n_frames = data.shape[0]
        for stage in range(self.N_STAGES):
            half = 2**stage
            block = 2 * half
            # Internal signals stay within [-1, 1] thanks to the 1/2 scaling,
            # but real/imag parts of intermediate sums can slightly exceed 1.
            data_fmt = QFormat(integer_bits=1, frac_bits=int(data_wl[stage]) - 2)
            twiddles = self._twiddles[stage]
            if stage >= self._EXACT_TWIDDLE_STAGES:
                tw_index = stage - self._EXACT_TWIDDLE_STAGES
                tw_fmt = QFormat(integer_bits=1, frac_bits=int(twiddle_wl[tw_index]) - 2)
                twiddles = self._quantize_complex(twiddles, tw_fmt)

            shaped = data.reshape(n_frames, self.N_POINTS // block, block)
            top = shaped[:, :, :half]
            bottom = shaped[:, :, half:] * twiddles
            if stage >= self._EXACT_TWIDDLE_STAGES:
                bottom = self._quantize_complex(bottom, data_fmt)
            out_top = self._quantize_complex((top + bottom) / 2.0, data_fmt)
            out_bottom = self._quantize_complex((top - bottom) / 2.0, data_fmt)
            shaped = np.concatenate([out_top, out_bottom], axis=2)
            data = shaped.reshape(n_frames, self.N_POINTS)
        return data

    def noise_power_db(self, word_lengths: object) -> float:
        """Output noise power (dB) — the quality metric of the FFT rows."""
        return noise_power_db(self.simulate(word_lengths), self._reference)
