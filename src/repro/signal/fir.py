"""64-tap FIR filter benchmark (``Nv = 2``).

The paper's smallest benchmark: a 64th-order FIR filter whose two optimizable
word-lengths are the *multiplier output* and the *adder (accumulator) output*
(Figure 1 of the paper plots the noise-power surface over exactly these two
variables).

The fixed-point data path models a classic MAC structure::

    x[n-k] --(Q: input, fixed)--> (*h_k) --(Q: w_mul)--> (+) --(Q: w_add)--> ...

Input samples and coefficients are pre-quantized at a fixed high precision so
that the *only* approximation sources are the two optimizable nodes, matching
the paper's two-variable formulation.

The accumulator carries guard bits and writes back to its ``w_add``-bit
register every ``guard_interval`` products (with unbiased convergent
rounding), the standard pipelined-MAC arrangement.  This keeps both noise
sources active around the optimum: a guard-less model has *exactly zero*
accumulation noise whenever the accumulator grid is at least as fine as the
product grid, which collapses the two-variable trade-off the paper's
Figure 1 illustrates.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise import noise_power_db
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import Rounding, quantize
from repro.fixedpoint.simulate import QuantizationNode
from repro.signal.generators import uniform_signal
from repro.utils.validation import check_integer_vector

__all__ = ["design_lowpass_fir", "FIRBenchmark"]


def design_lowpass_fir(n_taps: int, cutoff: float) -> np.ndarray:
    """Design a linear-phase low-pass FIR filter (windowed sinc, Hamming).

    Parameters
    ----------
    n_taps:
        Number of coefficients (the filter order is ``n_taps - 1``).
    cutoff:
        Normalized cutoff frequency in ``(0, 0.5)`` (1.0 = sampling rate).
    """
    if n_taps < 2:
        raise ValueError(f"n_taps must be >= 2, got {n_taps}")
    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5), got {cutoff}")
    n = np.arange(n_taps)
    center = (n_taps - 1) / 2.0
    ideal = 2.0 * cutoff * np.sinc(2.0 * cutoff * (n - center))
    window = 0.54 - 0.46 * np.cos(2.0 * np.pi * n / (n_taps - 1))
    taps = ideal * window
    return taps / np.sum(taps)


class FIRBenchmark:
    """Fixed-point FIR filter with optimizable multiplier/adder word-lengths.

    Parameters
    ----------
    n_taps:
        Filter length (64 in the paper).
    cutoff:
        Normalized cutoff of the low-pass design.
    n_samples:
        Length of the input data set ``I``.
    seed:
        Seed of the deterministic input generator.
    input_bits / coeff_bits:
        Fixed (non-optimized) precisions of the input samples and
        coefficients.
    guard_interval:
        Number of products accumulated at full precision between two
        write-backs of the ``w_add``-bit accumulator register.

    Notes
    -----
    The word-length vector is ``[w_mul, w_add]``:

    * ``w_mul`` — word-length at the output of every multiplier;
    * ``w_add`` — word-length of the accumulator register.
    """

    NUM_VARIABLES = 2
    VARIABLE_NAMES = ("mul_out", "add_out")

    def __init__(
        self,
        *,
        n_taps: int = 64,
        cutoff: float = 0.2,
        n_samples: int = 2048,
        seed: int = 0,
        input_bits: int = 16,
        coeff_bits: int = 16,
        guard_interval: int = 8,
    ) -> None:
        if guard_interval < 1:
            raise ValueError(f"guard_interval must be >= 1, got {guard_interval}")
        self.guard_interval = guard_interval
        self.n_taps = n_taps
        self.coefficients = design_lowpass_fir(n_taps, cutoff)

        input_fmt = QFormat(integer_bits=0, frac_bits=input_bits - 1)
        coeff_fmt = QFormat(integer_bits=0, frac_bits=coeff_bits - 1)
        raw_input = uniform_signal(n_samples, seed=seed, amplitude=0.999)
        self.inputs = quantize(raw_input, input_fmt)
        self.q_coefficients = quantize(self.coefficients, coeff_fmt)

        # Dynamic ranges: |h_k x| < max|h| <= 0.5 and |sum h_k x| <= sum|h|,
        # which stays below 2 for the normalized low-pass designs used here.
        acc_bound = float(np.sum(np.abs(self.q_coefficients)))
        acc_int_bits = max(1, int(np.ceil(np.log2(acc_bound + 1e-12))))
        self.nodes = (
            QuantizationNode("mul_out", integer_bits=0),
            QuantizationNode("add_out", integer_bits=acc_int_bits, rounding=Rounding.CONVERGENT),
        )

        self._delay_matrix = self._build_delay_matrix(self.inputs)
        self._reference = self._delay_matrix @ self.q_coefficients

    def _build_delay_matrix(self, x: np.ndarray) -> np.ndarray:
        """Matrix ``D[n, k] = x[n - k]`` (zero-padded past the start)."""
        padded = np.concatenate([np.zeros(self.n_taps - 1), x])
        windows = np.lib.stride_tricks.sliding_window_view(padded, self.n_taps)
        return windows[:, ::-1].copy()

    def reference(self) -> np.ndarray:
        """Double-precision filter output on the data set (the baseline)."""
        return self._reference

    def simulate(self, word_lengths: object) -> np.ndarray:
        """Bit-accurate fixed-point filter output for ``[w_mul, w_add]``."""
        w = check_integer_vector("word_lengths", word_lengths, minimum=1)
        if w.size != self.NUM_VARIABLES:
            raise ValueError(f"expected {self.NUM_VARIABLES} word-lengths, got {w.size}")
        w_mul, w_add = int(w[0]), int(w[1])
        mul_node, add_node = self.nodes

        products = mul_node.apply(self._delay_matrix * self.q_coefficients, w_mul)
        acc = products[:, 0]
        for k in range(1, self.n_taps):
            acc = acc + products[:, k]
            if k % self.guard_interval == 0 or k == self.n_taps - 1:
                acc = add_node.apply(acc, w_add)
        return acc

    def noise_power_db(self, word_lengths: object) -> float:
        """Output noise power (dB) of configuration ``[w_mul, w_add]``.

        This is the quality metric ``lambda`` of the paper's FIR rows.
        """
        return noise_power_db(self.simulate(word_lengths), self._reference)

    def surface(self, word_length_range: range) -> np.ndarray:
        """Exhaustive noise-power surface over a square word-length grid.

        Returns a matrix ``S[i, j]`` = noise power (dB) at
        ``w_mul = word_length_range[i]``, ``w_add = word_length_range[j]`` —
        the data behind the paper's Figure 1.
        """
        values = list(word_length_range)
        if not values:
            raise ValueError("word_length_range is empty")
        surface = np.empty((len(values), len(values)))
        for i, w_mul in enumerate(values):
            for j, w_add in enumerate(values):
                surface[i, j] = self.noise_power_db([w_mul, w_add])
        return surface
