"""Input-signal generators for the simulation data sets.

The paper evaluates every word-length configuration on an "arbitrary large
pre-defined input data set I".  These generators build such data sets
deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng

__all__ = ["uniform_signal", "gaussian_signal", "multitone_signal", "complex_signal"]


def uniform_signal(
    n_samples: int,
    *,
    seed: int = 0,
    amplitude: float = 1.0,
    name: str = "uniform",
) -> np.ndarray:
    """Uniform white signal in ``[-amplitude, amplitude)``."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be > 0, got {n_samples}")
    rng = derive_rng(seed, "signal", name)
    return rng.uniform(-amplitude, amplitude, size=n_samples)


def gaussian_signal(
    n_samples: int,
    *,
    seed: int = 0,
    std: float = 0.25,
    clip: float = 1.0,
    name: str = "gaussian",
) -> np.ndarray:
    """Clipped Gaussian signal with standard deviation ``std``.

    Clipping keeps the signal inside the fixed-point input range so the
    measured error isolates quantization noise from overflow.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be > 0, got {n_samples}")
    rng = derive_rng(seed, "signal", name)
    return np.clip(rng.normal(0.0, std, size=n_samples), -clip, clip)


def multitone_signal(
    n_samples: int,
    *,
    seed: int = 0,
    n_tones: int = 5,
    amplitude: float = 0.9,
    name: str = "multitone",
) -> np.ndarray:
    """Sum of ``n_tones`` random sinusoids, normalized to ``amplitude`` peak."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be > 0, got {n_samples}")
    if n_tones <= 0:
        raise ValueError(f"n_tones must be > 0, got {n_tones}")
    rng = derive_rng(seed, "signal", name)
    t = np.arange(n_samples)
    signal = np.zeros(n_samples)
    for _ in range(n_tones):
        freq = rng.uniform(0.01, 0.45)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        signal += np.sin(2.0 * np.pi * freq * t + phase)
    peak = np.max(np.abs(signal))
    if peak > 0:
        signal *= amplitude / peak
    return signal


def complex_signal(
    n_frames: int,
    frame_size: int,
    *,
    seed: int = 0,
    amplitude: float = 1.0,
    name: str = "complex",
) -> np.ndarray:
    """Frames of complex uniform data for FFT benchmarks, shape ``(n_frames, frame_size)``."""
    if n_frames <= 0 or frame_size <= 0:
        raise ValueError(
            f"n_frames and frame_size must be > 0, got {n_frames}, {frame_size}"
        )
    rng = derive_rng(seed, "signal", name)
    real = rng.uniform(-amplitude, amplitude, size=(n_frames, frame_size))
    imag = rng.uniform(-amplitude, amplitude, size=(n_frames, frame_size))
    return real + 1j * imag
