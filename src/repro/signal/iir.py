"""8th-order IIR filter benchmark (``Nv = 5``).

The paper's second benchmark: an 8th-order IIR filter.  We realize it as a
cascade of four second-order sections (biquads) — the standard fixed-point
structure — with five optimizable word-lengths:

* one per biquad accumulator/output register (4 variables),
* one for the final output register (1 variable).

Recursive filters are the interesting stress case for interpolation-based
error evaluation because quantization noise re-circulates through the
feedback path, producing a metric surface that is smooth but decidedly
non-linear in the word-lengths.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import signal as sp_signal

from repro.fixedpoint.noise import noise_power_db
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import quantize
from repro.signal.generators import uniform_signal
from repro.utils.validation import check_integer_vector

__all__ = ["design_butterworth_sos", "IIRBenchmark"]


def design_butterworth_sos(order: int = 8, cutoff: float = 0.1) -> np.ndarray:
    """Design a Butterworth low-pass filter as second-order sections.

    Parameters
    ----------
    order:
        Filter order; must be even so the cascade contains only biquads.
    cutoff:
        Normalized cutoff in ``(0, 0.5)`` (1.0 = sampling rate).

    Returns
    -------
    numpy.ndarray
        ``(order // 2, 6)`` SOS matrix with each section scaled to unity
        peak gain, so internal signals stay inside the fixed-point range.
    """
    if order < 2 or order % 2 != 0:
        raise ValueError(f"order must be a positive even integer, got {order}")
    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5), got {cutoff}")
    sos = sp_signal.butter(order, 2.0 * cutoff, output="sos")
    freqs = np.linspace(0.0, np.pi, 512)
    for section in sos:
        b, a = section[:3], section[3:]
        _, response = sp_signal.freqz(b, a, worN=freqs)
        peak = float(np.max(np.abs(response)))
        if peak > 0:
            section[:3] = b / peak
    return sos


class IIRBenchmark:
    """Fixed-point cascade-of-biquads IIR filter.

    The word-length vector is ``[w_sec0, w_sec1, w_sec2, w_sec3, w_out]``
    where ``w_seck`` is the precision of section ``k``'s output register and
    ``w_out`` the precision of the final output register.

    Coefficients are pre-quantized at a fixed 16-bit precision in both the
    reference and the approximate implementation, so the five optimizable
    registers are the only approximation sources.
    """

    NUM_VARIABLES = 5
    VARIABLE_NAMES = ("sec0_out", "sec1_out", "sec2_out", "sec3_out", "output")

    def __init__(
        self,
        *,
        order: int = 8,
        cutoff: float = 0.1,
        n_samples: int = 2048,
        seed: int = 1,
        coeff_bits: int = 16,
    ) -> None:
        if order != 2 * (order // 2):
            raise ValueError(f"order must be even, got {order}")
        self.order = order
        self.n_sections = order // 2
        if self.n_sections != 4:
            raise ValueError(
                f"IIRBenchmark models the paper's 8th-order filter "
                f"(4 sections), got order {order}"
            )

        sos = design_butterworth_sos(order, cutoff)
        coeff_fmt = QFormat(integer_bits=2, frac_bits=coeff_bits - 3)
        self.sos = quantize(sos, coeff_fmt)
        # Re-impose the exact a0 = 1 after coefficient quantization.
        self.sos[:, 3] = 1.0

        input_fmt = QFormat(integer_bits=0, frac_bits=15)
        self.inputs = quantize(
            uniform_signal(n_samples, seed=seed, amplitude=0.999), input_fmt
        )

        self._reference = self._run(self.inputs, word_lengths=None)
        # Data-driven range analysis: simulate in float, record per-section
        # peaks, derive the integer bits of each optimizable register.
        peaks = self._section_peaks(self.inputs)
        self.integer_bits = [
            max(0, int(math.ceil(math.log2(max(p, 1e-12) + 1e-9))) + 1) for p in peaks
        ]

    def _section_peaks(self, x: np.ndarray) -> list[float]:
        outputs = x
        peaks = []
        for section in self.sos:
            outputs = sp_signal.lfilter(section[:3], section[3:], outputs)
            peaks.append(float(np.max(np.abs(outputs))))
        peaks.append(peaks[-1])  # final output register shares the last range
        return peaks

    def _run(self, x: np.ndarray, word_lengths: np.ndarray | None) -> np.ndarray:
        """Run the cascade; quantize registers when ``word_lengths`` is given."""
        if word_lengths is None:
            outputs = x
            for section in self.sos:
                outputs = sp_signal.lfilter(section[:3], section[3:], outputs)
            return outputs

        steps = []
        bounds = []
        for k in range(self.n_sections + 1):
            int_bits = self.integer_bits[k]
            frac = int(word_lengths[k]) - 1 - int_bits
            step = 2.0**(-frac)
            limit = 2.0**int_bits
            steps.append(step)
            bounds.append((-limit, limit - step))

        b = self.sos[:, :3]
        a = self.sos[:, 4:6]
        x1 = [0.0] * self.n_sections
        x2 = [0.0] * self.n_sections
        y1 = [0.0] * self.n_sections
        y2 = [0.0] * self.n_sections
        out = np.empty_like(x)
        floor = math.floor
        for n, sample in enumerate(x):
            value = float(sample)
            for k in range(self.n_sections):
                acc = (
                    b[k, 0] * value
                    + b[k, 1] * x1[k]
                    + b[k, 2] * x2[k]
                    - a[k, 0] * y1[k]
                    - a[k, 1] * y2[k]
                )
                step = steps[k]
                scaled = acc / step
                code = floor(scaled + 0.5) if scaled >= 0 else -floor(-scaled + 0.5)
                q = code * step
                low, high = bounds[k]
                if q < low:
                    q = low
                elif q > high:
                    q = high
                x2[k] = x1[k]
                x1[k] = value
                y2[k] = y1[k]
                y1[k] = q
                value = q
            step = steps[-1]
            scaled = value / step
            code = floor(scaled + 0.5) if scaled >= 0 else -floor(-scaled + 0.5)
            q = code * step
            low, high = bounds[-1]
            if q < low:
                q = low
            elif q > high:
                q = high
            out[n] = q
        return out

    def reference(self) -> np.ndarray:
        """Double-precision cascade output (the baseline)."""
        return self._reference

    def simulate(self, word_lengths: object) -> np.ndarray:
        """Bit-accurate fixed-point cascade output for the 5-vector ``w``."""
        w = check_integer_vector("word_lengths", word_lengths, minimum=1)
        if w.size != self.NUM_VARIABLES:
            raise ValueError(f"expected {self.NUM_VARIABLES} word-lengths, got {w.size}")
        return self._run(self.inputs, w)

    def noise_power_db(self, word_lengths: object) -> float:
        """Output noise power (dB) — the quality metric of the IIR rows."""
        return noise_power_db(self.simulate(word_lengths), self._reference)
