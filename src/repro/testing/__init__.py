"""Test and drill instrumentation shipped with the package.

Lives under ``src`` (not ``tests/``) because the chaos drill benchmark
(``benchmarks/bench_chaos.py``) and the test suite both need it, and
because injecting faults against *your own* deployment is a supported way
to rehearse failure handling, not a test-only trick.

``faults``
    :class:`~repro.testing.faults.ChaosProxy` — an asyncio TCP proxy that
    injects schedulable faults (latency, resets, blackholes, garbled
    frames, slow-drip writes) between any client and server speaking the
    service protocol.
"""

from repro.testing.faults import Fault, ChaosProxy

__all__ = ["ChaosProxy", "Fault"]
