"""Fault-injecting TCP proxy for chaos tests and drills.

:class:`ChaosProxy` sits between a client and a server (router → worker,
or client → router), forwarding bytes untouched until a :class:`Fault` is
installed.  Faults model the transport failures a real deployment sees:

``latency``
    Every forwarded chunk waits ``latency_ms`` first — a congested or
    distant peer.  Requests still succeed; deadlines and timeouts decide
    whether slowly.
``blackhole``
    Connections stay open and bytes are *read* but never forwarded, in
    either direction — the classic hung-but-alive worker: accepts TCP,
    never replies.  Only deadlines/timeouts get a caller out.
``reset``
    The connection is aborted the moment a chunk arrives — a crashed peer
    or a middlebox sending RST.
``garble``
    Chunk bytes are XOR-scrambled (newlines preserved, so framing stays
    intact but every frame is junk) — a corrupted stream; receivers see
    ``ProtocolError``.
``truncate``
    Half of the chunk is forwarded, then the connection is aborted — a
    peer dying mid-frame.
``drip``
    Chunks are forwarded ``drip_bytes`` at a time with a pause between
    pieces — a slow-loris peer; completion is bounded only by the
    reader's deadline.

Faults are installed and removed *explicitly* (:meth:`ChaosProxy.set_fault`)
— the proxy rolls no dice, so a drill that owns a seeded RNG is exactly
reproducible.  A fault applies to chunks flowing in its ``direction``
(``"to_server"``, ``"to_client"`` or ``"both"``), letting a test break the
request path and the response path independently.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field

__all__ = ["FAULT_KINDS", "ChaosProxy", "Fault"]

FAULT_KINDS = ("latency", "blackhole", "reset", "garble", "truncate", "drip")

#: XOR mask for ``garble`` — maps printable JSON to junk.
_GARBLE_MASK = 0x5A


def _garble(chunk: bytes) -> bytes:
    """Scramble every byte, preserving newlines exactly: real frame
    boundaries stay where they are and none are forged (a scrambled byte
    that would land on ``\\n`` becomes ``\\x00`` instead)."""
    out = bytearray()
    for b in chunk:
        if b == 0x0A:
            out.append(b)
            continue
        g = b ^ _GARBLE_MASK
        out.append(0x00 if g == 0x0A else g)
    return bytes(out)


@dataclass
class Fault:
    """One installed failure mode (see module docstring for the kinds)."""

    kind: str
    direction: str = "both"  # "to_server" | "to_client" | "both"
    latency_ms: float = 50.0
    drip_bytes: int = 16
    drip_interval_ms: float = 20.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.direction not in ("to_server", "to_client", "both"):
            raise ValueError(f"unknown direction {self.direction!r}")

    def applies(self, direction: str) -> bool:
        return self.direction == "both" or self.direction == direction


class _Connection:
    """One proxied client↔server connection (a pump task per direction)."""

    def __init__(
        self,
        proxy: "ChaosProxy",
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        server_reader: asyncio.StreamReader,
        server_writer: asyncio.StreamWriter,
    ) -> None:
        self.proxy = proxy
        self.client_writer = client_writer
        self.server_writer = server_writer
        self.tasks = [
            asyncio.create_task(
                self._pump(client_reader, server_writer, "to_server")
            ),
            asyncio.create_task(
                self._pump(server_reader, client_writer, "to_client")
            ),
        ]

    def abort(self) -> None:
        """Kill both sides abruptly (RST where the OS allows it)."""
        for writer in (self.client_writer, self.server_writer):
            with contextlib.suppress(Exception):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
    ) -> None:
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                fault = self.proxy.fault
                if fault is not None and fault.applies(direction):
                    self.proxy.injected[fault.kind] = (
                        self.proxy.injected.get(fault.kind, 0) + 1
                    )
                    if fault.kind == "latency":
                        await asyncio.sleep(fault.latency_ms / 1000.0)
                    elif fault.kind == "blackhole":
                        continue  # read and discard; never forward
                    elif fault.kind == "reset":
                        self.abort()
                        break
                    elif fault.kind == "garble":
                        chunk = _garble(chunk)
                    elif fault.kind == "truncate":
                        writer.write(chunk[: max(1, len(chunk) // 2)])
                        with contextlib.suppress(Exception):
                            await writer.drain()
                        self.abort()
                        break
                    elif fault.kind == "drip":
                        for start in range(0, len(chunk), fault.drip_bytes):
                            writer.write(chunk[start : start + fault.drip_bytes])
                            await writer.drain()
                            await asyncio.sleep(fault.drip_interval_ms / 1000.0)
                        continue
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def wait_closed(self) -> None:
        for task in self.tasks:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one ``(host, port)`` target.

    Usage::

        proxy = ChaosProxy(worker_host, worker_port)
        await proxy.start()            # binds an ephemeral loopback port
        ... point the client/router at proxy.address ...
        proxy.set_fault(Fault("blackhole"))
        ...
        proxy.set_fault(None)          # heal
        await proxy.stop()

    One fault is active at a time (the drill schedules them one by one);
    installing a fault affects in-flight *and* future connections, and
    :meth:`set_fault` with ``reset``/``truncate`` semantics still only
    fires when bytes flow — use :meth:`abort_connections` to cut every
    live connection immediately.
    """

    def __init__(self, target_host: str, target_port: int, *, host: str = "127.0.0.1") -> None:
        self.target_host = target_host
        self.target_port = int(target_port)
        self.host = host
        self.fault: Fault | None = None
        self.address: tuple[str, int] | None = None
        self.connections_seen = 0
        self.injected: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, 0, limit=2**20
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def set_fault(self, fault: Fault | None) -> None:
        self.fault = fault

    def abort_connections(self) -> None:
        """Abort every live proxied connection right now."""
        for connection in list(self._connections):
            connection.abort()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_seen += 1
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.target_host, self.target_port, limit=2**20
            )
        except OSError:
            with contextlib.suppress(Exception):
                writer.close()
            return
        connection = _Connection(self, reader, writer, server_reader, server_writer)
        self._connections.add(connection)
        try:
            await connection.wait_closed()
        finally:
            self._connections.discard(connection)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections):
            connection.abort()
            for task in connection.tasks:
                task.cancel()
        for connection in list(self._connections):
            await connection.wait_closed()
        self._connections.clear()
