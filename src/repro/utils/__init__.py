"""Shared utilities: deterministic RNG helpers and argument validation."""

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_integer_vector,
    check_positive,
    check_probability,
)

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "check_in_range",
    "check_integer_vector",
    "check_positive",
    "check_probability",
]
