"""Shared utilities: RNG helpers, argument validation, streaming quantiles."""

from repro.utils.quantiles import DEFAULT_PROBS, P2Quantile, QuantileSketch
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_integer_vector,
    check_positive,
    check_probability,
)

__all__ = [
    "DEFAULT_PROBS",
    "P2Quantile",
    "QuantileSketch",
    "derive_rng",
    "spawn_rngs",
    "check_in_range",
    "check_integer_vector",
    "check_positive",
    "check_probability",
]
