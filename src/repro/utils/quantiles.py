"""Streaming quantile estimation (the P² algorithm).

The estimator used to keep the full per-interpolation neighbour-count list
just so the ablation benches could plot its distribution — unbounded memory
for a diagnostic.  This module replaces the list with the P² ("P-square")
single-pass quantile estimator of Jain & Chlamtac (CACM 1985): five markers
per tracked quantile, updated in O(1) per observation, no samples stored.

Accuracy is exact until five observations arrive (the markers *are* the
sorted sample until then) and within a few percent of the true quantile on
the unimodal distributions neighbour counts follow; min/max/mean/count are
always exact.

:class:`P2Quantile` tracks a single probability; :class:`QuantileSketch`
bundles several P² estimators with exact min/max/mean bookkeeping — the
drop-in replacement for a stored distribution.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

__all__ = ["P2Quantile", "QuantileSketch", "DEFAULT_PROBS"]

DEFAULT_PROBS = (0.1, 0.25, 0.5, 0.75, 0.9)
"""Quantile probabilities a default :class:`QuantileSketch` tracks."""


class P2Quantile:
    """Single-quantile streaming estimator (Jain & Chlamtac's P²).

    Five markers track the running minimum, maximum, the target quantile and
    the two midpoints; marker heights are adjusted with a piecewise-parabolic
    (hence "P²") interpolation whenever their positions drift from the ideal
    ones.  Updates are O(1) and nothing is stored beyond the ten floats.

    Parameters
    ----------
    prob:
        The tracked probability ``p`` in (0, 1); ``value`` estimates the
        ``p``-quantile of everything passed to :meth:`update`.
    """

    __slots__ = ("prob", "_n", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, prob: float) -> None:
        if not 0.0 < prob < 1.0:
            raise ValueError(f"prob must be in (0, 1), got {prob}")
        self.prob = float(prob)
        self._n = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * prob, 1.0 + 4.0 * prob, 3.0 + 2.0 * prob, 5.0]
        self._rates = [0.0, prob / 2.0, prob, (1.0 + prob) / 2.0, 1.0]

    def __len__(self) -> int:
        return self._n

    @property
    def n(self) -> int:
        """Number of observations consumed."""
        return self._n

    def update(self, x: float) -> None:
        """Consume one observation."""
        x = float(x)
        if math.isnan(x):
            raise ValueError("cannot update a quantile sketch with NaN")
        self._n += 1
        if self._n <= 5:
            self._heights.append(x)
            self._heights.sort()
            return

        q = self._heights
        # Locate the marker cell containing x, extending the extremes.
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        else:
            cell = 0
            while cell < 3 and x >= q[cell + 1]:
                cell += 1

        for i in range(cell + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rates[i]

        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            n_prev, n_i, n_next = (
                self._positions[i - 1],
                self._positions[i],
                self._positions[i + 1],
            )
            if (d >= 1.0 and n_next - n_i > 1.0) or (d <= -1.0 and n_prev - n_i < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                self._positions[i] = n_i + step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (``nan`` before any observation).

        Exact while fewer than five observations have arrived (computed from
        the sorted sample); the P² marker estimate afterwards.
        """
        if self._n == 0:
            return float("nan")
        if self._n <= 5:
            # Nearest-rank quantile of the exact sorted sample.
            rank = self.prob * (self._n - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, self._n - 1)
            frac = rank - lo
            return self._heights[lo] * (1.0 - frac) + self._heights[hi] * frac
        return self._heights[2]

    def to_state(self) -> dict:
        """JSON-safe marker state (``_rates`` is derived from ``prob``).

        Floats serialize via ``repr`` so a JSON round-trip restores the
        estimator bitwise: feeding both copies the same stream keeps them
        identical forever.
        """
        return {
            "prob": self.prob,
            "n": self._n,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @classmethod
    def from_state(cls, state: dict) -> "P2Quantile":
        """Rebuild an estimator from :meth:`to_state` output."""
        est = cls(float(state["prob"]))
        est._n = int(state["n"])
        est._heights = [float(x) for x in state["heights"]]
        est._positions = [float(x) for x in state["positions"]]
        est._desired = [float(x) for x in state["desired"]]
        return est


class QuantileSketch:
    """A bundle of P² estimators plus exact min/max/mean/count.

    The drop-in replacement for storing a distribution: feeds every
    observation to one :class:`P2Quantile` per tracked probability and keeps
    the exact extremes, sum and count on the side.

    Parameters
    ----------
    probs:
        Probabilities to track (each in (0, 1)), default
        :data:`DEFAULT_PROBS`.
    """

    __slots__ = ("_estimators", "_count", "_sum", "_min", "_max")

    def __init__(self, probs: Iterable[float] = DEFAULT_PROBS) -> None:
        probs = tuple(float(p) for p in probs)
        if not probs:
            raise ValueError("at least one probability is required")
        if len(set(probs)) != len(probs):
            raise ValueError(f"duplicate probabilities in {probs}")
        self._estimators = {p: P2Quantile(p) for p in probs}
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def __len__(self) -> int:
        return self._count

    @property
    def probs(self) -> tuple[float, ...]:
        """Tracked probabilities, in construction order."""
        return tuple(self._estimators)

    @property
    def count(self) -> int:
        """Number of observations consumed (exact)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations (exact)."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of all observations (exact; ``nan`` when empty)."""
        if self._count == 0:
            return float("nan")
        return self._sum / self._count

    @property
    def min(self) -> float:
        """Smallest observation (exact; ``nan`` when empty)."""
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        """Largest observation (exact; ``nan`` when empty)."""
        return self._max if self._count else float("nan")

    def update(self, x: float) -> None:
        """Consume one observation."""
        x = float(x)
        if math.isnan(x):
            raise ValueError("cannot update a quantile sketch with NaN")
        self._count += 1
        self._sum += x
        self._min = min(self._min, x)
        self._max = max(self._max, x)
        for estimator in self._estimators.values():
            estimator.update(x)

    def quantile(self, prob: float) -> float:
        """Estimate of the ``prob``-quantile (must be a tracked probability)."""
        estimator = self._estimators.get(float(prob))
        if estimator is None:
            raise KeyError(
                f"probability {prob} is not tracked; tracked: {self.probs}"
            )
        return estimator.value

    def quantiles(self) -> Mapping[float, float]:
        """All tracked quantile estimates, keyed by probability."""
        return {p: est.value for p, est in self._estimators.items()}

    def to_state(self) -> dict:
        """JSON-safe state: exact side statistics plus per-probability
        :meth:`P2Quantile.to_state` markers."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "estimators": [est.to_state() for est in self._estimators.values()],
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_state` output (bitwise: the
        restored sketch streams on exactly as the original would)."""
        estimators = [P2Quantile.from_state(s) for s in state["estimators"]]
        sketch = cls(probs=[est.prob for est in estimators])
        sketch._estimators = {est.prob: est for est in estimators}
        sketch._count = int(state["count"])
        sketch._sum = float(state["sum"])
        sketch._min = float(state["min"])
        sketch._max = float(state["max"])
        return sketch

    def summary(self) -> dict[str, float]:
        """Plain-dict summary (count, mean, min, max and the quantiles)."""
        out: dict[str, float] = {
            "count": float(self._count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for p, est in self._estimators.items():
            out[f"p{round(100 * p):02d}"] = est.value
        return out
