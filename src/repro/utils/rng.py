"""Deterministic random-number-generator helpers.

Every stochastic component in the library (input-signal generators, synthetic
image datasets, network weights, error injection) takes an explicit seed and
derives independent generators through :func:`derive_rng`.  Reproducing the
paper's tables therefore never depends on global numpy state.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def _seed_from_tokens(*tokens: object) -> int:
    """Hash arbitrary tokens into a stable 64-bit seed.

    The hash is computed with SHA-256 over the ``repr`` of each token so that
    the mapping is stable across processes and Python versions (unlike the
    built-in ``hash``, which is salted for strings).
    """
    digest = hashlib.sha256()
    for token in tokens:
        digest.update(repr(token).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "little")


def derive_rng(seed: int, *tokens: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` derived from ``seed``.

    Parameters
    ----------
    seed:
        Base seed of the experiment.
    tokens:
        Extra tokens (strings, ints, tuples) naming the consumer.  Two
        different token sequences yield statistically independent streams.
    """
    return np.random.default_rng(_seed_from_tokens(seed, *tokens))


def spawn_rngs(seed: int, count: int, *tokens: object) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_rng(seed, *tokens, index) for index in range(count)]
