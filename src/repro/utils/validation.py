"""Argument-validation helpers shared across the library.

The helpers raise ``ValueError``/``TypeError`` with messages that name the
offending argument, so call sites stay one-liners.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_integer_vector",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return float(value)


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    return check_in_range(name, value, 0.0, 1.0)


def check_integer_vector(name: str, vector: object, *, minimum: int | None = None) -> np.ndarray:
    """Validate and convert ``vector`` to a 1-D integer numpy array.

    Parameters
    ----------
    name:
        Argument name used in error messages.
    vector:
        Any sequence convertible to a 1-D integer array.
    minimum:
        If given, every component must be ``>= minimum``.
    """
    array = np.asarray(vector)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.issubdtype(array.dtype, np.integer):
        rounded = np.rint(array)
        if not np.allclose(array, rounded, atol=1e-9):
            raise ValueError(f"{name} must contain integers, got {array!r}")
        array = rounded.astype(np.int64)
    else:
        array = array.astype(np.int64)
    if minimum is not None and np.any(array < minimum):
        raise ValueError(f"all components of {name} must be >= {minimum}, got {array!r}")
    return array
