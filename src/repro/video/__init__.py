"""HEVC motion-compensation benchmark (``Nv = 23``).

The paper's fourth benchmark is the 2-D motion-compensation module of an
HEVC codec: luma fractional-pel interpolation of 8x8 blocks with the
standard 8-tap DCT-IF filters.  This package implements that module from
scratch:

* :mod:`~repro.video.filters` — the HEVC luma interpolation-filter
  coefficients (quarter/half/three-quarter-pel phases);
* :mod:`~repro.video.blocks` — synthetic reference frames and motion-vector
  workloads;
* :mod:`~repro.video.motion_comp` — the separable horizontal/vertical
  interpolation pipeline with 23 fixed-point quantization nodes.
"""

from repro.video.blocks import BlockWorkload, synthetic_frame
from repro.video.filters import (
    HEVC_CHROMA_FILTERS,
    HEVC_LUMA_FILTERS,
    chroma_filter,
    luma_filter,
)
from repro.video.motion_comp import MotionCompensationBenchmark

__all__ = [
    "HEVC_LUMA_FILTERS",
    "HEVC_CHROMA_FILTERS",
    "luma_filter",
    "chroma_filter",
    "synthetic_frame",
    "BlockWorkload",
    "MotionCompensationBenchmark",
]
