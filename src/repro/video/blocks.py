"""Synthetic video frames and motion-compensation workloads.

The paper evaluates the HEVC motion-compensation module on 8x8 pixel blocks
with non-integer motion vectors.  Since the original sequences are not
available, we synthesize frames containing the structures that matter for an
interpolation filter — smooth gradients, directional edges and band-limited
texture — and draw random block positions with random fractional motion
vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng
from repro.video.filters import N_TAPS

__all__ = ["synthetic_frame", "BlockWorkload"]


def synthetic_frame(height: int, width: int, *, seed: int = 0) -> np.ndarray:
    """Generate a synthetic luma frame with values in ``[0, 1)``.

    The frame mixes a low-frequency gradient, a couple of directional
    sinusoidal edges and smoothed noise texture, mimicking natural-video
    statistics well enough to exercise every tap of the DCT-IF filters.
    """
    if height < N_TAPS * 2 or width < N_TAPS * 2:
        raise ValueError(f"frame too small: {height}x{width}")
    rng = derive_rng(seed, "video", "frame")
    y, x = np.mgrid[0:height, 0:width].astype(np.float64)

    gradient = 0.3 * (x / width) + 0.2 * (y / height)
    waves = 0.15 * np.sin(2 * np.pi * (0.043 * x + 0.017 * y))
    waves += 0.1 * np.sin(2 * np.pi * (0.011 * x - 0.036 * y) + 1.3)

    noise = rng.normal(0.0, 1.0, size=(height, width))
    kernel = np.outer(np.hanning(7), np.hanning(7))
    kernel /= kernel.sum()
    from scipy.signal import convolve2d

    texture = 0.08 * convolve2d(noise, kernel, mode="same", boundary="symm")

    frame = 0.45 + gradient + waves + texture
    return np.clip(frame, 0.0, 0.999)


@dataclass(frozen=True)
class BlockWorkload:
    """A set of motion-compensated 8x8 block requests against one frame.

    Attributes
    ----------
    frame:
        Reference luma frame, values in ``[0, 1)``.
    positions:
        ``(n, 2)`` integer array of block top-left corners ``(row, col)``.
    phases:
        ``(n, 2)`` integer array of quarter-pel phases ``(vertical,
        horizontal)``, each in ``{0, 1, 2, 3}`` and never both zero
        (the paper's module is exercised on non-integer motion vectors).
    """

    frame: np.ndarray
    positions: np.ndarray
    phases: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.shape[0] != self.phases.shape[0]:
            raise ValueError("positions and phases must have the same length")
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {self.positions.shape}")
        if self.phases.ndim != 2 or self.phases.shape[1] != 2:
            raise ValueError(f"phases must be (n, 2), got {self.phases.shape}")

    @property
    def n_blocks(self) -> int:
        """Number of block requests."""
        return int(self.positions.shape[0])

    @classmethod
    def generate(
        cls,
        *,
        n_blocks: int = 64,
        block_size: int = 8,
        frame_height: int = 144,
        frame_width: int = 176,
        seed: int = 3,
    ) -> "BlockWorkload":
        """Draw a random workload over a synthetic frame.

        Block corners keep an ``N_TAPS``-pixel margin so the 8-tap filters
        never read outside the frame.
        """
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be > 0, got {n_blocks}")
        frame = synthetic_frame(frame_height, frame_width, seed=seed)
        rng = derive_rng(seed, "video", "workload")
        margin = N_TAPS
        rows = rng.integers(margin, frame_height - block_size - margin, size=n_blocks)
        cols = rng.integers(margin, frame_width - block_size - margin, size=n_blocks)
        phases = rng.integers(0, 4, size=(n_blocks, 2))
        # Re-draw any all-integer motion vector: the module under test is the
        # fractional interpolator.
        zero_rows = (phases[:, 0] == 0) & (phases[:, 1] == 0)
        while np.any(zero_rows):
            phases[zero_rows] = rng.integers(0, 4, size=(int(zero_rows.sum()), 2))
            zero_rows = (phases[:, 0] == 0) & (phases[:, 1] == 0)
        return cls(
            frame=frame,
            positions=np.stack([rows, cols], axis=1).astype(np.int64),
            phases=phases.astype(np.int64),
        )
