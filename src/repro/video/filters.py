"""HEVC interpolation filters (8-tap luma, 4-tap chroma DCT-IF).

Coefficients from the HEVC standard (ITU-T H.265, Tables 8-11 and 8-12),
normalized by 64 so they act on pixel values scaled to ``[0, 1)``.  Luma
phase 0 is the integer position (identity); phases 1-3 are the quarter,
half and three-quarter pel positions.  Chroma motion vectors have eighth-pel
resolution (phases 0-7).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HEVC_LUMA_FILTERS",
    "HEVC_CHROMA_FILTERS",
    "luma_filter",
    "chroma_filter",
    "N_TAPS",
    "N_CHROMA_TAPS",
]

N_TAPS = 8
N_CHROMA_TAPS = 4

_RAW_FILTERS = {
    0: (0, 0, 0, 64, 0, 0, 0, 0),
    1: (-1, 4, -10, 58, 17, -5, 1, 0),
    2: (-1, 4, -11, 40, 40, -11, 4, -1),
    3: (0, 1, -5, 17, 58, -10, 4, -1),
}

_RAW_CHROMA_FILTERS = {
    0: (0, 64, 0, 0),
    1: (-2, 58, 10, -2),
    2: (-4, 54, 16, -2),
    3: (-6, 46, 28, -4),
    4: (-4, 36, 36, -4),
    5: (-4, 28, 46, -6),
    6: (-2, 16, 54, -4),
    7: (-2, 10, 58, -2),
}

HEVC_LUMA_FILTERS: dict[int, np.ndarray] = {
    phase: np.asarray(taps, dtype=np.float64) / 64.0
    for phase, taps in _RAW_FILTERS.items()
}
"""Normalized 8-tap luma filters indexed by quarter-pel phase (0-3)."""

HEVC_CHROMA_FILTERS: dict[int, np.ndarray] = {
    phase: np.asarray(taps, dtype=np.float64) / 64.0
    for phase, taps in _RAW_CHROMA_FILTERS.items()
}
"""Normalized 4-tap chroma filters indexed by eighth-pel phase (0-7)."""


def luma_filter(phase: int) -> np.ndarray:
    """Return the normalized 8-tap luma filter for quarter-pel ``phase`` (0-3)."""
    if phase not in HEVC_LUMA_FILTERS:
        raise ValueError(f"phase must be one of 0, 1, 2, 3, got {phase}")
    return HEVC_LUMA_FILTERS[phase].copy()


def chroma_filter(phase: int) -> np.ndarray:
    """Return the normalized 4-tap chroma filter for eighth-pel ``phase`` (0-7)."""
    if phase not in HEVC_CHROMA_FILTERS:
        raise ValueError(f"phase must be in 0..7, got {phase}")
    return HEVC_CHROMA_FILTERS[phase].copy()
