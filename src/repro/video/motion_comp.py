"""HEVC luma motion-compensation pipeline with 23 fixed-point nodes.

The module interpolates 8x8 blocks at quarter-pel motion-vector positions
with the standard separable 8-tap DCT-IF filters: a horizontal pass over a
``15 x 15`` source region produces a ``15 x 8`` intermediate buffer, and a
vertical pass reduces it to the ``8 x 8`` prediction block.

The 23 optimizable word-length variables (``Nv = 23`` in the paper's Table I)
are the quantization nodes of that pipeline:

====  =======================  ==========================================
idx   name                     role
====  =======================  ==========================================
0     ``input``                pixel read precision
1     ``h_coeff``              horizontal filter coefficients
2-9   ``h_mac0`` … ``h_mac7``  horizontal MAC-chain partial sums
10    ``h_out``                horizontal filter output rounding
11    ``buffer``               intermediate (row buffer) precision
12    ``v_coeff``              vertical filter coefficients
13-20 ``v_mac0`` … ``v_mac7``  vertical MAC-chain partial sums
21    ``v_out``                vertical filter output rounding
22    ``output``               final prediction register
====  =======================  ==========================================
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise import noise_power_db
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import quantize
from repro.utils.validation import check_integer_vector
from repro.video.blocks import BlockWorkload
from repro.video.filters import HEVC_LUMA_FILTERS, N_TAPS

__all__ = ["MotionCompensationBenchmark"]

BLOCK_SIZE = 8
_REGION = BLOCK_SIZE + N_TAPS - 1  # 15: pixels needed per dimension


def _node_names() -> tuple[str, ...]:
    names = ["input", "h_coeff"]
    names += [f"h_mac{k}" for k in range(N_TAPS)]
    names += ["h_out", "buffer", "v_coeff"]
    names += [f"v_mac{k}" for k in range(N_TAPS)]
    names += ["v_out", "output"]
    return tuple(names)


class MotionCompensationBenchmark:
    """Fixed-point HEVC luma interpolator over a block workload.

    Parameters
    ----------
    workload:
        The :class:`~repro.video.blocks.BlockWorkload` to interpolate; a
        default 64-block workload is generated when omitted.
    seed:
        Seed for the default workload.
    """

    NUM_VARIABLES = 23
    VARIABLE_NAMES = _node_names()

    def __init__(self, *, workload: BlockWorkload | None = None, seed: int = 3) -> None:
        self.workload = workload if workload is not None else BlockWorkload.generate(seed=seed)
        self._regions, self._groups = self._gather_regions()
        self._reference = self._run(None)

    # ------------------------------------------------------------------
    # workload preparation
    # ------------------------------------------------------------------
    def _gather_regions(self) -> tuple[np.ndarray, dict[tuple[int, int], np.ndarray]]:
        """Extract the 15x15 source region of every block and group by phase."""
        wl = self.workload
        n = wl.n_blocks
        regions = np.empty((n, _REGION, _REGION))
        offset = N_TAPS // 2 - 1  # 3: taps to the left/top of the sample
        for i in range(n):
            r, c = wl.positions[i]
            regions[i] = wl.frame[
                r - offset : r - offset + _REGION, c - offset : c - offset + _REGION
            ]
        groups: dict[tuple[int, int], np.ndarray] = {}
        for i in range(n):
            key = (int(wl.phases[i, 0]), int(wl.phases[i, 1]))
            groups.setdefault(key, []).append(i)  # type: ignore[arg-type]
        return regions, {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}

    # ------------------------------------------------------------------
    # fixed-point helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _fmt(word_length: int, integer_bits: int, *, signed: bool = True) -> QFormat:
        return QFormat(
            integer_bits=integer_bits,
            frac_bits=int(word_length) - int(signed) - integer_bits,
            signed=signed,
        )

    def _run(self, word_lengths: np.ndarray | None) -> np.ndarray:
        """Interpolate every block; quantize pipeline nodes when ``word_lengths`` given.

        Returns an ``(n_blocks, 8, 8)`` array of prediction blocks.
        """
        exact = word_lengths is None
        if not exact:
            w = {name: int(word_lengths[i]) for i, name in enumerate(self.VARIABLE_NAMES)}
            input_fmt = self._fmt(w["input"], 0, signed=False)
            h_coeff_fmt = self._fmt(w["h_coeff"], 0)
            h_mac_fmts = [self._fmt(w[f"h_mac{k}"], 1) for k in range(N_TAPS)]
            h_out_fmt = self._fmt(w["h_out"], 1)
            buffer_fmt = self._fmt(w["buffer"], 1)
            v_coeff_fmt = self._fmt(w["v_coeff"], 0)
            v_mac_fmts = [self._fmt(w[f"v_mac{k}"], 1) for k in range(N_TAPS)]
            v_out_fmt = self._fmt(w["v_out"], 1)
            output_fmt = self._fmt(w["output"], 0, signed=False)

        n = self.workload.n_blocks
        out = np.empty((n, BLOCK_SIZE, BLOCK_SIZE))
        for (phase_v, phase_h), indices in self._groups.items():
            regions = self._regions[indices]
            if not exact:
                regions = quantize(regions, input_fmt)

            h_taps = HEVC_LUMA_FILTERS[phase_h]
            v_taps = HEVC_LUMA_FILTERS[phase_v]
            if not exact:
                h_taps = quantize(h_taps, h_coeff_fmt)
                v_taps = quantize(v_taps, v_coeff_fmt)

            # Horizontal pass: (g, 15, 15) -> (g, 15, 8).
            windows = np.lib.stride_tricks.sliding_window_view(regions, N_TAPS, axis=2)
            acc = np.zeros(windows.shape[:3])
            for k in range(N_TAPS):
                acc = acc + h_taps[k] * windows[..., k]
                if not exact:
                    acc = quantize(acc, h_mac_fmts[k])
            intermediate = acc if exact else quantize(acc, h_out_fmt)
            if not exact:
                intermediate = quantize(intermediate, buffer_fmt)

            # Vertical pass: (g, 15, 8) -> (g, 8, 8).
            windows = np.lib.stride_tricks.sliding_window_view(intermediate, N_TAPS, axis=1)
            acc = np.zeros(windows.shape[:3])
            for k in range(N_TAPS):
                acc = acc + v_taps[k] * windows[..., k]
                if not exact:
                    acc = quantize(acc, v_mac_fmts[k])
            blocks = acc if exact else quantize(quantize(acc, v_out_fmt), output_fmt)
            out[indices] = np.clip(blocks, 0.0, 1.0)
        return out

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def reference(self) -> np.ndarray:
        """Double-precision prediction blocks (the baseline)."""
        return self._reference

    def simulate(self, word_lengths: object) -> np.ndarray:
        """Bit-accurate fixed-point prediction blocks for the 23-vector ``w``."""
        w = check_integer_vector("word_lengths", word_lengths, minimum=1)
        if w.size != self.NUM_VARIABLES:
            raise ValueError(f"expected {self.NUM_VARIABLES} word-lengths, got {w.size}")
        return self._run(w)

    def noise_power_db(self, word_lengths: object) -> float:
        """Output noise power (dB) — the quality metric of the HEVC rows."""
        return noise_power_db(self.simulate(word_lengths), self._reference)

    def psnr_db(self, word_lengths: object) -> float:
        """PSNR (dB) of the fixed-point predictions against the reference.

        A Quality-of-Service metric in the video-coding sense (peak signal
        1.0 for the normalized pixel range).  Demonstrates the paper's
        metric-genericity claim: the same kriging policy applies to this
        higher-is-better metric unchanged.
        """
        return -noise_power_db(self.simulate(word_lengths), self._reference)
