"""In-process cluster harness for tests.

Runs a real :class:`~repro.cluster.router.ClusterRouter` plus N real
:class:`~repro.service.server.KrigingService` workers on one event loop,
all on ephemeral loopback ports speaking the real wire protocol — so
cluster tests cover framing, routing, admission, migration and failover
end to end without subprocess start-up cost.

Worker "death" is simulated by severing the router→worker connection
(:func:`sever_worker`): health pings then fail exactly as they would for
a killed process, driving the same failover path.  The subprocess
spawn/kill path is exercised by the CLI smoke test and the cluster
benchmark's failover drill.
"""

from __future__ import annotations

import asyncio

from repro.cluster import ClusterRouter, WorkerHandle, WorkerSupervisor
from repro.service.client import AsyncServiceClient
from repro.service.server import KrigingService
from repro.testing import ChaosProxy

NV = 3
SIMULATOR = {"kind": "linear", "coefficients": [1.0, -2.0, 0.5], "offset": -6.0}
SESSION_KWARGS = dict(
    simulator=SIMULATOR, num_variables=NV, distance=4.0, variogram="linear"
)


def run_cluster(
    test_body,
    *,
    tmp_path,
    workers=2,
    supervisor_kwargs=None,
    chaos=False,
    **router_kwargs,
):
    """Run ``await test_body(client, router, services, supervisor)`` against
    a live in-process cluster; returns the body's return value.

    ``supervisor_kwargs``: None attaches no supervisor (tests drive
    failover by hand); a dict attaches one (its loops start with the
    router, so pass short intervals deliberately).

    ``chaos=True`` fronts every worker with a
    :class:`~repro.testing.faults.ChaosProxy` (the router connects through
    it) and passes the proxy list as a fifth argument:
    ``await test_body(client, router, services, supervisor, proxies)``.
    """

    async def main():
        router = ClusterRouter(replica_dir=tmp_path, **router_kwargs)
        supervisor = (
            WorkerSupervisor(router, **supervisor_kwargs)
            if supervisor_kwargs is not None
            else None
        )
        services: list[KrigingService] = []
        proxies: list[ChaosProxy] = []
        tasks: list[asyncio.Task] = []
        for index in range(workers):
            service = KrigingService(snapshot_dir=tmp_path)
            tasks.append(asyncio.create_task(service.serve("127.0.0.1", 0)))
            while service.address is None:
                await asyncio.sleep(0.005)
            address = service.address
            if chaos:
                proxy = ChaosProxy(*service.address)
                address = await proxy.start()
                proxies.append(proxy)
            await router.add_worker(WorkerHandle(f"w{index}", *address))
            services.append(service)
        router_task = asyncio.create_task(router.serve("127.0.0.1", 0))
        try:
            while router.address is None:
                await asyncio.sleep(0.005)
            async with await AsyncServiceClient.connect(*router.address) as client:
                if chaos:
                    return await test_body(
                        client, router, services, supervisor, proxies
                    )
                return await test_body(client, router, services, supervisor)
        finally:
            router.stop()
            # Router teardown asks live workers to shut down; severed ones
            # never saw the request, so stop them directly as well.  Heal
            # the proxies first or the shutdown requests may be eaten.
            for proxy in proxies:
                proxy.set_fault(None)
            await asyncio.wait_for(router_task, 15)
            for proxy in proxies:
                await proxy.stop()
            for service, task in zip(services, tasks):
                if not task.done():
                    service.stop()
                    await asyncio.wait_for(task, 10)

    return asyncio.run(main())


def sever_worker(router: ClusterRouter, worker_id: str) -> None:
    """Cut the router's connection to a worker (simulates abrupt death:
    the next health ping fails just like it would for a SIGKILLed process).

    The handle is also repointed at a port nothing listens on: the router
    reconnects on a broken connection (``ensure_connected``), so merely
    dropping the live connection no longer looks like death — a real dead
    process refuses new connections too.
    """
    handle = router.workers[worker_id]
    handle.client._writer.close()
    handle.port = 1  # reserved port, nothing listens: reconnects are refused


async def detect_death(supervisor: WorkerSupervisor, worker_id: str) -> None:
    """Run health passes until the worker is declared dead (bounded)."""
    handle = supervisor.router.workers[worker_id]
    for _ in range(20):
        if not handle.alive:
            return
        await supervisor.check_health()
        await asyncio.sleep(0.01)
    raise AssertionError(f"worker {worker_id!r} was never declared dead")
