"""Shared fixtures: small-scale benchmark setups (expensive, session-scoped)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.registry import build_benchmark


@pytest.fixture(scope="session")
def fir_setup():
    """Small-scale FIR benchmark setup with its trajectory recorded."""
    setup = build_benchmark("fir", "small")
    setup.record_trajectory()
    return setup


@pytest.fixture(scope="session")
def iir_setup():
    """Small-scale IIR benchmark setup with its trajectory recorded."""
    setup = build_benchmark("iir", "small")
    setup.record_trajectory()
    return setup


@pytest.fixture(scope="session")
def fft_setup():
    """Small-scale FFT benchmark setup with its trajectory recorded."""
    setup = build_benchmark("fft", "small")
    setup.record_trajectory()
    return setup


@pytest.fixture(scope="session")
def rng():
    """Deterministic generator for ad-hoc test data."""
    return np.random.default_rng(1234)
