"""Unit tests for repro.baselines (Sedano-style axis interpolation, analytical model)."""

import numpy as np
import pytest

from repro.baselines.analytical import AnalyticalNoiseModel
from repro.baselines.axis_interpolation import AxisInterpolationEstimator


def plane(config):
    return float(np.asarray(config, dtype=float) @ [2.0, -1.0] + 5.0)


class TestAxisInterpolation:
    def test_on_axis_query_interpolated(self):
        est = AxisInterpolationEstimator(plane, 2)
        est.evaluate([4, 8])
        est.evaluate([8, 8])
        out = est.evaluate([6, 8])  # on the axis-0 line, bracketed
        assert out.interpolated
        assert out.axis == 0
        assert out.value == pytest.approx(plane([6, 8]))

    def test_off_axis_query_simulated(self):
        est = AxisInterpolationEstimator(plane, 2)
        est.evaluate([4, 8])
        est.evaluate([8, 8])
        out = est.evaluate([6, 9])  # differs from samples in both coordinates
        assert not out.interpolated

    def test_bracketing_required_by_default(self):
        est = AxisInterpolationEstimator(plane, 2)
        est.evaluate([4, 8])
        est.evaluate([5, 8])
        out = est.evaluate([7, 8])  # beyond both samples
        assert not out.interpolated

    def test_extrapolation_mode(self):
        est = AxisInterpolationEstimator(plane, 2, require_bracketing=False)
        est.evaluate([4, 8])
        est.evaluate([5, 8])
        out = est.evaluate([7, 8])
        assert out.interpolated
        assert out.value == pytest.approx(plane([7, 8]))  # linear field: exact

    def test_exact_hit(self):
        est = AxisInterpolationEstimator(plane, 2)
        est.evaluate([4, 8])
        out = est.evaluate([4, 8])
        assert out.exact_hit
        assert est.stats.n_exact_hits == 1

    def test_stats(self):
        est = AxisInterpolationEstimator(plane, 2)
        for cfg in ([4, 8], [8, 8], [6, 8], [6, 9]):
            est.evaluate(cfg)
        assert est.stats.n_simulated == 3
        assert est.stats.n_interpolated == 1
        assert est.stats.interpolated_fraction == pytest.approx(0.25)

    def test_kriging_covers_more_than_axis_baseline(self):
        """The paper's motivation: the Nv-dimensional neighbourhood covers
        configurations the per-axis method cannot estimate."""
        from repro.core.estimator import KrigingEstimator

        rng = np.random.default_rng(5)
        queries = rng.integers(4, 9, size=(80, 3))

        def metric(c):
            return float(np.sum(np.asarray(c, dtype=float) ** 1.5))

        axis = AxisInterpolationEstimator(metric, 3)
        krig = KrigingEstimator(metric, 3, distance=4, nn_min=1)
        for q in queries:
            axis.evaluate(q)
            krig.evaluate(q)
        assert krig.stats.interpolated_fraction > axis.stats.interpolated_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            AxisInterpolationEstimator(plane, 0)
        est = AxisInterpolationEstimator(plane, 2)
        with pytest.raises(ValueError, match="shape"):
            est.evaluate([1, 2, 3])


class TestAnalyticalModel:
    def test_single_node_matches_formula(self):
        model = AnalyticalNoiseModel([0])
        # signed, 8 bits, 0 integer bits -> step 2^-7.
        expected = (2.0**-7) ** 2 / 12.0
        assert model.noise_power([8]) == pytest.approx(expected)

    def test_gains_scale_contributions(self):
        base = AnalyticalNoiseModel([0, 0]).noise_power([8, 8])
        scaled = AnalyticalNoiseModel([0, 0], gains=[2.0, 2.0]).noise_power([8, 8])
        assert scaled == pytest.approx(2.0 * base)

    def test_six_db_per_bit(self):
        model = AnalyticalNoiseModel([0, 1])
        delta = model.noise_power_db([8, 20]) - model.noise_power_db([9, 20])
        assert delta == pytest.approx(6.02, abs=0.1)

    def test_calibration_recovers_gains(self):
        truth = AnalyticalNoiseModel([0, 1], gains=[3.0, 0.5])
        rng = np.random.default_rng(0)
        configs = rng.integers(6, 14, size=(30, 2))
        powers = np.array([truth.noise_power(c) for c in configs])
        calibrated = AnalyticalNoiseModel([0, 1]).calibrate(configs, powers)
        np.testing.assert_allclose(calibrated.gains, [3.0, 0.5], rtol=1e-6)

    def test_calibrated_model_tracks_fir(self):
        """Calibrated on a few FIR measurements, the analytical model should
        land within a few dB on the additive region of the surface."""
        from repro.fixedpoint.noise import db_to_power
        from repro.signal import FIRBenchmark

        fir = FIRBenchmark(n_samples=512)
        configs = np.array([[10, 10], [12, 12], [14, 14], [10, 14], [14, 10], [12, 14]])
        powers = np.array([db_to_power(fir.noise_power_db(c)) for c in configs])
        model = AnalyticalNoiseModel([0, 1]).calibrate(configs, powers)
        probe = [11, 12]
        assert model.noise_power_db(probe) == pytest.approx(
            fir.noise_power_db(probe), abs=6.0
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="gains"):
            AnalyticalNoiseModel([0, 0], gains=[1.0])
        with pytest.raises(ValueError, match="non-negative"):
            AnalyticalNoiseModel([0], gains=[-1.0])
        model = AnalyticalNoiseModel([0, 0])
        with pytest.raises(ValueError, match="expected 2"):
            model.noise_power([8])
